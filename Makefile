# Convenience targets for the crossbar reproduction library.

.PHONY: install test test-fast verify bench report examples validate smoke all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# The inner development loop: skip the service daemon, chaos and fuzz
# harnesses and anything marked slow; run few hypothesis examples.
test-fast:
	HYPOTHESIS_PROFILE=dev pytest tests/ -m "not slow and not service and not chaos and not fuzz"

# The differential verification campaign (see docs/testing.md).
verify:
	python -m repro.cli verify --seed 0 --budget 60s

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report --output reproduction-report

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; python $$f || exit 1; \
	done

validate:
	python -m repro validate --n 8 --poisson 0.01 --pascal 0.005:0.2

# Live end-to-end drills: one daemon, then a 4-worker sharded fleet.
smoke:
	timeout 180 python tools/service_smoke.py
	timeout 300 python tools/cluster_smoke.py

all: test bench report
