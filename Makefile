# Convenience targets for the crossbar reproduction library.

.PHONY: install test bench report examples validate all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report --output reproduction-report

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; python $$f || exit 1; \
	done

validate:
	python -m repro validate --n 8 --poisson 0.01 --pascal 0.005:0.2

all: test bench report
