"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts its qualitative shape, and writes the rendered text artifact to
``benchmarks/results/<name>.txt`` so the reproduction output survives
pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table and echo it for ``-s`` runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}\n{text}")
