"""Extension D: multistage networks (the paper's Section 8 future work).

Sweeps the number of tandem stages, comparing the reduced-load fixed
point with exact discrete-event simulation of the simultaneous-holding
circuit, and records the approximation bias (the fixed point assumes
independent stages, so it overstates blocking — increasingly with load
and stage count).
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.traffic import TrafficClass
from repro.multistage import TandemNetwork, analyze_tandem, simulate_tandem
from repro.reporting import format_table

CLASSES = [TrafficClass.poisson(0.02, name="p")]


def test_stage_sweep_analysis(benchmark):
    def run():
        rows = []
        for stages in (1, 2, 3, 4, 6, 8):
            net = TandemNetwork.square(stages, 8)
            result = analyze_tandem(net, CLASSES)
            rows.append(
                [stages, result.stage_blocking[0][0],
                 result.end_to_end_blocking(0), result.iterations]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "multistage_sweep",
        format_table(
            ["stages", "per-stage B", "end-to-end B", "iterations"],
            rows,
            title="Reduced-load fixed point vs stage count (8x8 stages)",
        ),
    )
    blockings = [row[2] for row in rows]
    assert all(b > a for a, b in zip(blockings, blockings[1:]))


def test_analysis_vs_simulation(benchmark):
    def run():
        rows = []
        for stages in (1, 2, 3):
            net = TandemNetwork.square(stages, 6)
            analysis = analyze_tandem(net, CLASSES)
            sim = simulate_tandem(
                net, CLASSES, horizon=4000.0, warmup=400.0,
                replications=4, seed=5,
            )
            rows.append(
                [stages, analysis.end_to_end_acceptance(0),
                 sim.acceptance[0].estimate,
                 sim.acceptance[0].half_width]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "multistage_vs_sim",
        format_table(
            ["stages", "accept (reduced-load)", "accept (sim)", "sim CI±"],
            rows,
            title="Approximation quality of the reduced-load fixed point",
        ),
    )
    for stages, analytical, simulated, _half in rows:
        if stages == 1:
            # single stage: the 'approximation' is exact
            assert simulated == pytest.approx(analytical, rel=0.03)
        else:
            # multi-stage: pessimistic but in the right ballpark
            assert analytical <= simulated + 0.01
            assert simulated - analytical < 0.08
