"""Benchmark the vectorized NumPy kernels against the reference sweeps.

Four legs, written into the ``"kernels"`` section of the shared
``BENCH_engine.json`` report (sibling sections are preserved — see
``bench_engine.py``, which extends the same file):

``single_solve``
    Matched python-vs-numpy single-solve p50 per numeric mode
    (``log``/``scaled``/``float``/``mva``) over the ROADMAP reference
    sweep sizes, plus the *headline* ratio: the old default path
    (``convolution/log``, python) against the fastest vectorized path
    (``convolution/scaled``, numpy).  The full run asserts the
    headline speedup stays >= 10x.

``equivalence``
    The differential-fuzzer campaign from the acceptance criteria:
    >= 2000 seeded sampled configs per numeric mode through
    ``repro.verify.run_differential`` on the (classic, numpy) method
    pair, asserting **zero** disagreements.  ``--quick`` runs a
    bounded smoke of the same campaign.

``service``
    Cold (cache-missing) ``/solve`` calls over a persistent HTTP
    connection with ``method=convolution-scaled-numpy``, p50 per
    request — both the client round trip and the daemon's own
    ``elapsed_ms``.  The full run asserts the service-side p50 stays
    under 1 ms (the pure-python kernel is measured alongside for
    contrast; it does not fit under that line).

``--check-baseline``
    CI regression guard: compare the freshly measured numpy
    single-solve p50s against the committed ``kernels`` section and
    fail (exit 1) if any cell regressed by more than 2x.  Timing
    cells absent from the baseline are reported but never fail.

Run ``python benchmarks/bench_kernels.py --quick`` for the CI-sized
variant; the committed numbers come from the full run.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.convolution import solve_convolution  # noqa: E402
from repro.core.mva import solve_mva  # noqa: E402
from repro.core.state import SwitchDimensions  # noqa: E402
from repro.core.traffic import TrafficClass  # noqa: E402
from repro.verify.differential import run_differential  # noqa: E402
from repro.verify.generators import ConfigSampler  # noqa: E402

#: The ROADMAP reference sweep mix: one Poisson data class, one bursty
#: video class (same shape as bench_engine.SWEEP_CLASSES).
CLASSES = (
    TrafficClass.poisson(0.002, name="data"),
    TrafficClass(alpha=0.001, beta=0.0005, name="video"),
)

#: (classic method name, numpy method name) per numeric mode.
PAIRS = {
    "log": ("convolution", "convolution-numpy"),
    "scaled": ("convolution-scaled", "convolution-scaled-numpy"),
    "float": ("convolution-float", "convolution-float-numpy"),
    "mva": ("mva", "mva-numpy"),
}

#: Regression-guard threshold: fail CI when a numpy single-solve p50
#: grows past this multiple of the committed baseline.
REGRESSION_FACTOR = 2.0


def _solve(mode: str, n: int, kernel: str) -> None:
    dims = SwitchDimensions(n, n)
    if mode == "mva":
        solve_mva(dims, CLASSES, kernel=kernel)
    else:
        solve_convolution(dims, CLASSES, mode=mode, kernel=kernel)


def _p50_ms(fn, repeats: int) -> float:
    """Median latency over ``repeats`` timed calls, in milliseconds."""
    fn()  # warm caches, allocator, import side effects
    samples = []
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - began)
    return statistics.median(samples) * 1e3


def bench_single_solve(sizes: tuple[int, ...], repeats: int) -> dict:
    """Matched python/numpy p50 per (mode, n), plus the headline ratio."""
    cells = {}
    for mode in PAIRS:
        for n in sizes:
            python_ms = _p50_ms(lambda: _solve(mode, n, "python"), repeats)
            numpy_ms = _p50_ms(lambda: _solve(mode, n, "numpy"), repeats)
            cells[f"{mode}-n{n}"] = {
                "mode": mode,
                "n": n,
                "python_p50_ms": python_ms,
                "numpy_p50_ms": numpy_ms,
                "speedup": python_ms / numpy_ms,
            }
    n = max(sizes)
    old_ms = _p50_ms(lambda: _solve("log", n, "python"), repeats)
    new_ms = _p50_ms(lambda: _solve("scaled", n, "numpy"), repeats)
    return {
        "classes": len(CLASSES),
        "repeats": repeats,
        "cells": cells,
        "headline": {
            "n": n,
            "old_default_p50_ms": old_ms,
            "numpy_scaled_p50_ms": new_ms,
            "speedup": old_ms / new_ms,
        },
    }


def bench_equivalence(cases_per_mode: int, seed: int = 2024) -> dict:
    """The acceptance campaign: zero disagreements per mode pair."""
    modes = {}
    began = time.perf_counter()
    for mode, pair in PAIRS.items():
        sampler = ConfigSampler(seed=seed)
        checked = 0
        disagreements = []
        for _ in range(cases_per_mode):
            config = sampler.sample()
            report = run_differential(config, methods=list(pair))
            if len(report.values) == 2:
                checked += 1
            disagreements.extend(
                d.describe() for d in report.disagreements
            )
        modes[mode] = {
            "cases": cases_per_mode,
            "compared": checked,
            "disagreements": disagreements,
        }
    total = sum(len(m["disagreements"]) for m in modes.values())
    return {
        "seed": seed,
        "elapsed_s": time.perf_counter() - began,
        "modes": modes,
        "total_disagreements": total,
    }


def bench_service(n_requests: int) -> dict:
    """Cold ``/solve`` p50 over the wire with the scaled-numpy kernel.

    Every request gets a distinct traffic mix, so each one misses the
    engine cache and pays for a real kernel solve — the number a
    deployer sees on first contact with a new operating point.  Both
    views are recorded: the client round trip over a persistent
    localhost connection, and the service's own ``elapsed_ms``
    (request decode -> batcher -> engine -> encoded reply), which is
    the daemon's latency metric and excludes client-side socket
    scheduling.  The same cold sweep through the pure-python kernel
    is measured for contrast — the vectorized kernel is what moves
    the service-side p50 under the 1 ms line.
    """
    import http.client

    from repro.api import SolveRequest
    from repro.engine import BatchSolver, EngineConfig
    from repro.service import ServiceConfig, start_in_thread

    def request_for(i: int, method: str) -> SolveRequest:
        classes = (
            TrafficClass.poisson(0.002 + 1e-6 * i, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        )
        return SolveRequest.square(16, classes, method=method)

    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=256, batch_window=0.0),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        conn = http.client.HTTPConnection(*handle.address)

        def wire_solve(request: SolveRequest) -> tuple[float, dict]:
            body = json.dumps({"request": request.to_dict()})
            began = time.perf_counter()
            conn.request(
                "POST", "/solve", body,
                {"Content-Type": "application/json"},
            )
            envelope = json.loads(conn.getresponse().read())
            return time.perf_counter() - began, envelope

        def cold_sweep(method: str, offset: int) -> tuple[float, float]:
            wire_solve(request_for(offset - 1, method))  # warm the path
            client, server = [], []
            for i in range(n_requests):
                elapsed, envelope = wire_solve(
                    request_for(offset + i, method)
                )
                assert not envelope["from_cache"], "cold solve hit cache"
                client.append(elapsed)
                server.append(envelope["elapsed_ms"])
            return (
                statistics.median(client) * 1e3,
                statistics.median(server),
            )

        numpy_wire, numpy_service = cold_sweep(
            "convolution-scaled-numpy", 0
        )
        python_wire, python_service = cold_sweep(
            "convolution-scaled", 10**6
        )
        conn.close()
    finally:
        handle.stop()
    return {
        "n": 16,
        "method": "convolution-scaled-numpy",
        "requests": n_requests,
        "p50_ms": numpy_service,
        "wire_p50_ms": numpy_wire,
        "python_p50_ms": python_service,
        "python_wire_p50_ms": python_wire,
    }


def check_baseline(report: dict, baseline_path: Path) -> int:
    """Exit status for the CI guard: 1 if any numpy p50 regressed > 2x."""
    try:
        committed = json.loads(baseline_path.read_text())["kernels"]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"no committed kernels baseline in {baseline_path}: {exc}")
        return 1
    base_cells = committed["single_solve"]["cells"]
    failures = []
    for name, cell in report["single_solve"]["cells"].items():
        base = base_cells.get(name)
        if base is None:
            print(f"{name}: not in baseline (new cell), skipping")
            continue
        ratio = cell["numpy_p50_ms"] / base["numpy_p50_ms"]
        verdict = "FAIL" if ratio > REGRESSION_FACTOR else "ok"
        print(
            f"{name}: {base['numpy_p50_ms']:.3f} ms -> "
            f"{cell['numpy_p50_ms']:.3f} ms ({ratio:.2f}x) {verdict}"
        )
        if ratio > REGRESSION_FACTOR:
            failures.append(name)
    if failures:
        print(f"regressed > {REGRESSION_FACTOR}x: {', '.join(failures)}")
        return 1
    print("kernel benchmark within baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer sizes, repeats, and fuzz cases",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the committed report and exit 1 on a "
        f">{REGRESSION_FACTOR}x numpy p50 regression (implies --quick "
        "timing scope; does not rewrite the report)",
    )
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    quick = args.quick or args.check_baseline
    sizes = (16, 32) if quick else (16, 32, 64)
    repeats = 7 if quick else 15
    cases = 150 if quick else 2000
    service_requests = 50 if quick else 200

    report = {"quick": quick, "single_solve": None}
    print(f"single-solve p50, sizes {sizes}, {repeats} repeats ...")
    report["single_solve"] = bench_single_solve(sizes, repeats)
    headline = report["single_solve"]["headline"]
    print(
        f"  headline (log/python -> scaled/numpy, n={headline['n']}): "
        f"{headline['old_default_p50_ms']:.2f} ms -> "
        f"{headline['numpy_scaled_p50_ms']:.2f} ms "
        f"({headline['speedup']:.1f}x)"
    )

    if args.check_baseline:
        return check_baseline(report, Path(args.output))

    print(f"differential equivalence, {cases} cases x 4 modes ...")
    report["equivalence"] = bench_equivalence(cases)
    total = report["equivalence"]["total_disagreements"]
    print(f"  {total} disagreements")
    assert total == 0, report["equivalence"]

    print(f"service cold-solve leg, {service_requests} requests ...")
    report["service"] = bench_service(service_requests)
    print(
        f"  service p50 {report['service']['p50_ms']:.3f} ms "
        f"(wire {report['service']['wire_p50_ms']:.3f} ms; python "
        f"kernel {report['service']['python_p50_ms']:.3f} ms)"
    )

    if not quick:
        assert headline["speedup"] >= 10.0, headline
        assert report["service"]["p50_ms"] < 1.0, report["service"]

    output = Path(args.output)
    merged = {}
    if output.exists():
        merged = json.loads(output.read_text())
    merged["kernels"] = report
    output.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"wrote kernels section of {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
