"""Ablation B: dynamic scaling (paper Section 6).

Demonstrates *why* the paper needs dynamic scaling: the raw Algorithm 1
recurrence in float64 dies of underflow (``Q ~ 1/(n1! n2!)``) long
before the paper's largest system (``N = 256``), while the scaled and
log modes sail through and agree with the exact rational oracle to
machine precision.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.convolution import solve_convolution
from repro.core.exact import solve_exact
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import OverflowInRecursionError
from repro.reporting import format_table


def _classes(n: int) -> list[TrafficClass]:
    return [TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="p")]


def _float_mode_works(n: int) -> bool:
    try:
        solve_convolution(
            SwitchDimensions.square(n), _classes(n), mode="float"
        )
        return True
    except OverflowInRecursionError:
        return False


def test_unscaled_failure_onset(benchmark):
    """Binary-search the largest N the unscaled recurrence survives."""

    def onset() -> int:
        lo, hi = 8, 512  # works at 8, fails at 512
        assert _float_mode_works(lo)
        assert not _float_mode_works(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if _float_mode_works(mid):
                lo = mid
            else:
                hi = mid
        return hi

    first_failure = benchmark.pedantic(onset, rounds=1, iterations=1)
    write_result(
        "scaling_onset",
        f"unscaled Algorithm 1 first fails at N = {first_failure}\n"
        f"(paper's Table 2 needs N = 256 -> Section 6 scaling is "
        f"mandatory there)",
    )
    # 1/(n!)^2 underflows near n ~ 150; well below the paper's 256.
    assert 100 < first_failure < 256


def test_scaled_accuracy_against_exact(benchmark):
    """Scaled/log modes vs the rational oracle at N = 40."""
    n = 40
    dims = SwitchDimensions.square(n)
    classes = [
        TrafficClass.from_aggregate(0.0024, 0.0, n2=n),
        TrafficClass.from_aggregate(0.0024, 0.0012, n2=n),
    ]
    oracle = solve_exact(dims, classes)

    def run():
        return {
            mode: solve_convolution(dims, classes, mode=mode)
            for mode in ("log", "scaled", "float")
        }

    solutions = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, solution in solutions.items():
        rel = abs(
            solution.non_blocking(0) - oracle.non_blocking(0)
        ) / oracle.non_blocking(0)
        rows.append([mode, solution.non_blocking(0), rel])
        assert rel < 1e-11
    rows.append(["exact", oracle.non_blocking(0), 0.0])
    write_result(
        "scaling_accuracy",
        format_table(
            ["mode", "B_r", "rel error vs exact"],
            rows,
            precision=12,
            title=f"Numeric-mode accuracy at N = {n}",
        ),
    )


def test_log_mode_at_table2_sizes(benchmark):
    """The robust mode must handle the paper's largest system."""
    n = 256
    dims = SwitchDimensions.square(n)
    classes = [
        TrafficClass.from_aggregate(0.0012, 0.0, n2=n),
        TrafficClass.from_aggregate(0.0012, 0.0012, n2=n),
    ]
    solution = benchmark(solve_convolution, dims, classes)
    assert 0.0 < solution.blocking(0) < 0.01
    # log G is far outside what unscaled Q could represent near N=256:
    # Q(256,256) ~ exp(log G - 2 log 256!) ~ exp(-2000).
    assert solution.log_q[n, n] < -1500


def test_scaled_mode_heavy_load_overflow_regime(benchmark):
    """Dynamic scaling also guards the *overflow* direction: at heavy
    load G itself exceeds float64 range."""
    n = 150
    dims = SwitchDimensions.square(n)
    classes = [TrafficClass.poisson(5.0)]

    solution = benchmark(solve_convolution, dims, classes, "scaled")
    assert solution.log_g() > 710  # e^710 overflows float64
    reference = solve_convolution(dims, classes, mode="log")
    assert solution.non_blocking(0) == pytest.approx(
        reference.non_blocking(0), rel=1e-9
    )
