"""Ablation C: discrete-event simulation vs the analytical model.

The paper lists "comparing our analytical results with simulation" as
future work (Section 8); this benchmark does it.  It also exercises the
insensitivity property — the stationary measures must not change when
the exponential holding time is replaced by deterministic or
hyperexponential laws with the same mean.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.reporting import format_table
from repro.sim import (
    Deterministic,
    Exponential,
    HyperExponential,
    run_replications,
)

DIMS = SwitchDimensions(4, 4)
CLASSES = [
    TrafficClass.poisson(0.12, name="poisson"),
    TrafficClass(alpha=0.05, beta=0.3, name="pascal"),
]


def test_simulation_validates_analysis(benchmark):
    solution = solve_convolution(DIMS, CLASSES)

    def run():
        return run_replications(
            DIMS, CLASSES, horizon=3000.0, warmup=300.0,
            replications=5, seed=2024,
        )

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for r, cls in enumerate(CLASSES):
        sim = summary.classes[r]
        ana_acc = solution.call_acceptance(r)
        ana_e = solution.concurrency(r)
        rows.append(
            [cls.name, sim.acceptance.estimate, ana_acc,
             sim.concurrency.estimate, ana_e]
        )
        assert sim.acceptance.estimate == pytest.approx(ana_acc, rel=0.05)
        assert sim.concurrency.estimate == pytest.approx(ana_e, rel=0.08)
    write_result(
        "simulation_vs_analysis",
        format_table(
            ["class", "accept(sim)", "accept(ana)", "E(sim)", "E(ana)"],
            rows,
            title=f"Simulation vs analysis on {DIMS}, 5 replications",
        ),
    )


def test_insensitivity_to_service_distribution(benchmark):
    """Same mean, different law, same blocking (paper Section 2)."""
    solution = solve_convolution(DIMS, CLASSES)
    services = {
        "exponential": [Exponential(1.0), Exponential(1.0)],
        "deterministic": [Deterministic(1.0), Deterministic(1.0)],
        "hyperexponential": [
            HyperExponential(1.0, p=0.15),
            HyperExponential(1.0, p=0.15),
        ],
    }

    def run():
        return {
            name: run_replications(
                DIMS, CLASSES, horizon=2500.0, warmup=250.0,
                replications=4, seed=7, services=svc,
            )
            for name, svc in services.items()
        }

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, summary in summaries.items():
        acc = summary.classes[0].acceptance.estimate
        rows.append([name, acc, solution.call_acceptance(0)])
        assert acc == pytest.approx(
            solution.call_acceptance(0), rel=0.06
        ), f"insensitivity violated for {name}"
    write_result(
        "insensitivity",
        format_table(
            ["service law", "accept(sim)", "accept(analytical)"],
            rows,
            title="Insensitivity: class-0 acceptance under three "
                  "holding-time laws (same mean)",
        ),
    )


def test_simulator_event_throughput(benchmark):
    """Raw engine speed: events processed per second of wall time."""
    from repro.sim import AsynchronousCrossbarSimulator

    def run():
        sim = AsynchronousCrossbarSimulator(DIMS, CLASSES, seed=99)
        return sim.run(horizon=2000.0)

    record = benchmark(run)
    assert record.events > 1000
