"""Ablation E: the large-system approximation and the slotted baseline.

Two comparisons beyond the paper's tables:

1. the O(1) asymptotic fixed point vs the exact ``O(N^2)`` Algorithm 1
   across system sizes — accuracy improves like ``1/N`` while cost
   stays flat, making it the right tool for capacity-planning sweeps
   over very large optical fabrics;
2. the asynchronous circuit-switched crossbar vs the classical
   synchronous slotted (Patel) crossbar the paper contrasts with in
   Section 2, on a shared utilization axis.
"""

from __future__ import annotations

from conftest import write_result

from repro.baselines import saturation_throughput, slotted_acceptance
from repro.core.asymptotic import solve_asymptotic
from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.reporting import format_table


def _mix(n: int) -> list[TrafficClass]:
    return [
        TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="poisson"),
        TrafficClass.from_aggregate(0.0024, 0.0012, n2=n, name="pascal"),
    ]


def test_asymptotic_accuracy_sweep(benchmark):
    def run():
        rows = []
        for n in (8, 16, 32, 64, 128, 256):
            dims = SwitchDimensions.square(n)
            classes = _mix(n)
            exact = solve_convolution(dims, classes).blocking(0)
            approx = solve_asymptotic(dims, classes).blocking(0)
            rows.append([n, exact, approx, abs(approx - exact) / exact])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "asymptotic_accuracy",
        format_table(
            ["N", "blocking (exact)", "blocking (asymptotic)", "rel err"],
            rows,
            precision=5,
            title="Large-system approximation vs Algorithm 1",
        ),
    )
    errors = [row[3] for row in rows]
    assert errors[0] < 0.10
    assert errors[-1] < 0.01
    assert all(a >= b for a, b in zip(errors, errors[1:]))


def test_asymptotic_speed(benchmark):
    """The approximation's cost is independent of N.

    Uses a Poisson-only mix: at fixed ``beta~`` a Pascal class becomes
    supercritical for huge ``N`` (its feedback scales like
    ``beta~ * N``), which is a property of the model, not the solver.
    """
    n = 4096
    dims = SwitchDimensions.square(n)
    classes = [TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="p")]
    solution = benchmark(solve_asymptotic, dims, classes)
    assert 0.0 < solution.blocking(0) < 0.05


def test_async_vs_slotted_baseline(benchmark):
    """Acceptance comparison at matched per-port utilization.

    The asynchronous circuit crossbar blocks a request when its
    specific ports are busy (~``1 - (1-u)^2``); the slotted packet
    crossbar only loses packets to same-slot output collisions.  At
    saturation the slotted fabric still delivers ``1 - 1/e``, while
    the circuit fabric's acceptance vanishes — the disciplines are not
    interchangeable, which is why the paper develops the asynchronous
    analysis separately.
    """

    def run():
        rows = []
        n = 16
        for utilization in (0.1, 0.3, 0.5, 0.8):
            # circuit: pick rho so that carried occupancy ~ u*n
            target = utilization * n
            rho = target / (n * n * (1 - utilization) ** 2)
            dims = SwitchDimensions.square(n)
            circuit = solve_convolution(
                dims, [TrafficClass.poisson(rho)]
            )
            rows.append(
                [
                    utilization,
                    circuit.call_acceptance(0),
                    slotted_acceptance(n, n, utilization),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "async_vs_slotted",
        format_table(
            ["port load", "accept (async circuit)", "accept (slotted packet)"],
            rows,
            precision=4,
            title="Asynchronous circuit vs synchronous slotted crossbar "
                  "(16x16)",
        ),
    )
    for _, circuit_acc, slotted_acc in rows:
        assert circuit_acc < slotted_acc  # circuits hold ports for whole calls
    assert saturation_throughput(16) > 0.6
