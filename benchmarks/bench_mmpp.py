"""Extension H: how good is the BPP approximation for real bursty traffic?

The paper's Section 1 argues (after Wilkinson and Delbrouck) that peaky
traffic is well-approximated by the Pascal branch of the BPP family.
This benchmark tests that premise against genuinely bursty (two-phase
MMPP) arrivals:

* simulate the crossbar under MMPP arrivals (ground truth);
* predict its acceptance with (a) the moment-matched BPP model and
  (b) a Poisson model with the same mean;
* report both errors across modulation speeds.

Expected shape: the BPP surrogate beats the mean-only Poisson model
when the modulation is fast-to-moderate (phase holding ~ call holding),
and both degrade under very slow regime switching — the classical
limitation of two-moment traffic engineering, quantified here.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.reporting import format_table
from repro.sim.mmpp import (
    Mmpp2,
    MmppCrossbarSimulator,
    bpp_surrogate_class,
    infinite_server_moments,
)
from repro.sim.stats import t_confidence_interval

N = 8
DIMS = SwitchDimensions.square(N)


def _simulated_acceptance(mm: Mmpp2, seed: int) -> float:
    ratios = []
    for i in range(5):
        sim = MmppCrossbarSimulator(DIMS, mm, seed=seed + i)
        ratio, _ = sim.run(horizon=3000.0, warmup=300.0)
        ratios.append(ratio.ratio)
    return t_confidence_interval(ratios).estimate


def test_bpp_approximation_quality(benchmark):
    def run():
        rows = []
        for label, switching in (
            ("fast (r=2.0)", 2.0),
            ("moderate (r=0.8)", 0.8),
            ("slow (r=0.2)", 0.2),
            ("very slow (r=0.05)", 0.05),
        ):
            mm = Mmpp2(3.0, 0.5, switching, switching)
            _, z = infinite_server_moments(mm)
            simulated = _simulated_acceptance(mm, seed=700)
            bpp_acc = solve_convolution(
                DIMS, [bpp_surrogate_class(DIMS, mm)]
            ).call_acceptance(0)
            poisson_acc = solve_convolution(
                DIMS, [TrafficClass.poisson(mm.mean_rate / N**2)]
            ).call_acceptance(0)
            rows.append(
                [
                    label, z, simulated, bpp_acc,
                    abs(bpp_acc - simulated),
                    poisson_acc, abs(poisson_acc - simulated),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "mmpp_approximation",
        format_table(
            ["modulation", "offered Z", "accept (sim)", "accept (BPP)",
             "BPP err", "accept (Poisson)", "Poisson err"],
            rows,
            precision=4,
            title=f"BPP vs Poisson surrogates for MMPP traffic on {DIMS}",
        ),
    )
    # Peakedness grows as modulation slows.
    zs = [row[1] for row in rows]
    assert all(b > a for a, b in zip(zs, zs[1:]))
    # In the fast/moderate regimes the two-moment fit wins.
    for row in rows[:2]:
        assert row[4] < row[6], f"BPP worse than Poisson at {row[0]}"
    # Both errors grow as the modulation slows (approximation limit).
    bpp_errors = [row[4] for row in rows]
    assert bpp_errors[-1] > bpp_errors[0]
