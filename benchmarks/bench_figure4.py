"""Figure 4: multi-rate traffic — bandwidth requirement a=1 vs a=2.

Regenerates the paper's Figure 4 using Table 1's exact input loads and
checks the reported shape: at matched total load the ``a = 2`` class
sees far higher blocking than the ``a = 1`` class ("due to the higher
contention of two connection requests per arrival event"), with both
curves falling as the switch grows.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import figure4


def test_figure4(benchmark):
    fig = benchmark.pedantic(figure4, rounds=1, iterations=1)
    write_result("figure4", fig.render(precision=6))

    narrow = fig.curves[0].values
    wide = fig.curves[1].values
    # a=2 blocking dominates a=1 by a large factor at every size.
    for n_val, w_val in zip(narrow, wide):
        assert w_val > 5 * n_val
    # Both fall with system size at these (shrinking per-pair) loads.
    for values in (narrow, wide):
        assert all(a > b for a, b in zip(values, values[1:]))
    # The a=2 advantage of scale is steeper: the ratio narrows... no —
    # verify the contention gap persists even at N = 64.
    assert wide[-1] > 10 * narrow[-1]
