"""Benchmark the batched evaluation engine against point-by-point solves.

Three checks, all asserted (the script exits non-zero on failure) and
all recorded in ``BENCH_engine.json``:

1. **Sweep speedup** — a square size sweep (two BPP classes, Algorithm
   1) through ``BatchSolver.evaluate_many`` must beat solving each size
   independently, with *numerically identical* per-class blocking and
   concurrency.  The batch needs one Q-grid at the largest size; the
   point-by-point loop pays ``O(n^2 R)`` per size.
2. **Robust availability hit-rate** — the availability-weighted
   degraded-mode analysis on a 16-port switch followed by three failure
   masks and a second availability pass must serve more than half of
   its engine lookups from cache (mask cells share degraded shapes).
3. **Second-pass hit-rate** — re-evaluating the sweep batch on the same
   engine must be pure cache hits (nonzero hit-rate, zero solves).

A fourth section (recorded, not asserted — wall-clock ratios are too
noisy for CI gating) measures **resilience overhead**: the same clean
parallel MVA batch run under the default supervisor (retries +
deadline armed) vs the unsupervised fast path (``max_retries=0``),
with both runs' ``BatchMetrics`` dicts included in the JSON.

A fifth section, **service**, drives the solve-serving daemon
(``repro.service``) over its real JSON/HTTP wire at 1, 8 and 64
concurrent clients and records throughput plus p50/p99 latency per
level and the overall coalesce hit-rate (asserted: every sampled wire
result equals the local solve; the timings are recorded for trend
tracking).

A sixth section, **service_cluster**, boots a 4-worker sharded fleet
and drives it with the ``repro.loadgen`` harness (client-side direct
sharding, 256 closed-loop users).  Asserted: byte-identical results
from every worker, best-of-3 throughput at least 3x the single-worker
service section, measured Poisson 503 blocking within 0.13 of the
offered-load-weighted Erlang-B prediction, and bursty traffic
(``burst_mean=3``) blocking strictly above the Poisson run — the
source paper's central claim, re-proved on the serving tier.

A seventh section, **cluster_failover**, measures the self-healing
fleet: kill one worker of a two-shard fleet and record how long its
keyspace spends failing over (recovery time, failover count, the
share of failover replies served from the shared cache — the
cache-locality cost of the detour), then hold one worker of a
4-shard fleet dead and offer open-loop Poisson traffic through the
router.  Asserted: the measured fleet blocking lands within 0.1 of
the availability-weighted Erlang-B prediction
(``B(c, (rate/(W-d)) * H)`` — the paper's loss model applied to the
shrunken fleet).

Run ``python benchmarks/bench_engine.py --quick`` for the CI-sized
variant.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import SolveRequest
from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig, set_default_engine
from repro.robust import FailureMask, availability_weighted_measures, solve_degraded

#: Two size-independent per-pair BPP classes (Poisson + peaky Pascal),
#: light enough to be admissible on every sweep size.
SWEEP_CLASSES = (
    TrafficClass.poisson(0.002, name="data"),
    TrafficClass(alpha=0.001, beta=0.0005, name="video"),
)


def bench_sweep(n_lo: int, n_hi: int, min_speedup: float) -> dict:
    """Batched vs point-by-point size sweep; asserts identity + speedup."""
    sizes = list(range(n_lo, n_hi + 1))
    requests = [SolveRequest.square(n, SWEEP_CLASSES) for n in sizes]

    began = time.perf_counter()
    baseline = [
        solve_convolution(SwitchDimensions.square(n), SWEEP_CLASSES)
        for n in sizes
    ]
    baseline_elapsed = time.perf_counter() - began

    engine = BatchSolver(EngineConfig())
    began = time.perf_counter()
    results = engine.evaluate_many(requests)
    batch_elapsed = time.perf_counter() - began

    for n, result, direct in zip(sizes, results, baseline):
        expect_b = tuple(direct.blocking(r) for r in range(len(SWEEP_CLASSES)))
        expect_e = tuple(
            direct.concurrency(r) for r in range(len(SWEEP_CLASSES))
        )
        assert result.blocking == expect_b, (
            f"N={n}: batched blocking {result.blocking} != point solve "
            f"{expect_b}"
        )
        assert result.concurrency == expect_e, (
            f"N={n}: batched concurrency {result.concurrency} != point "
            f"solve {expect_e}"
        )

    speedup = baseline_elapsed / batch_elapsed if batch_elapsed > 0 else float("inf")
    assert speedup >= min_speedup, (
        f"sweep speedup {speedup:.2f}x below the {min_speedup:g}x floor "
        f"(baseline {baseline_elapsed:.4f}s, batch {batch_elapsed:.4f}s)"
    )

    # Second pass on the same engine: everything must come from cache.
    second = engine.evaluate_many(requests)
    metrics = engine.last_metrics
    assert metrics is not None
    assert metrics.hit_rate > 0.0, "second pass recorded no cache hits"
    assert metrics.solved == 0, "second pass re-solved cached requests"
    assert [s.blocking for s in second] == [r.blocking for r in results]

    return {
        "sizes": [n_lo, n_hi],
        "points": len(sizes),
        "baseline_seconds": baseline_elapsed,
        "batch_seconds": batch_elapsed,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "identical": True,
        "first_pass": engine_first_pass_metrics(results),
        "second_pass": metrics.to_dict(),
    }


def engine_first_pass_metrics(results) -> dict:
    return {
        "from_cache": sum(r.from_cache for r in results),
        "total": len(results),
    }


def bench_robust_availability() -> dict:
    """Availability-weighted + 3-mask scenario on 16 ports; >50% hits."""
    dims = SwitchDimensions.square(16)
    classes = (
        TrafficClass.poisson(0.01, name="data"),
        TrafficClass(alpha=0.004, beta=0.002, name="video"),
    )
    masks = (
        FailureMask.from_ports([0], []),
        FailureMask.from_ports([0, 5], [3]),
        FailureMask.from_ports([], [1, 9]),
    )

    engine = BatchSolver(EngineConfig())
    previous = set_default_engine(engine)
    try:
        began = time.perf_counter()
        availability_weighted_measures(dims, classes, 0.98, routing="reroute")
        for mask in masks:
            solve_degraded(dims, classes, mask, routing="reroute")
        availability_weighted_measures(dims, classes, 0.98, routing="reroute")
        elapsed = time.perf_counter() - began
    finally:
        set_default_engine(previous)

    stats = engine.stats.snapshot()
    assert stats["hit_rate"] > 0.5, (
        f"availability-weighted cache hit-rate {stats['hit_rate']:.3f} "
        "did not exceed 50%"
    )
    return {
        "dims": [dims.n1, dims.n2],
        "masks": len(masks),
        "elapsed_seconds": elapsed,
        **stats,
    }


def bench_resilience_overhead(n_points: int) -> dict:
    """Supervision on vs off over one clean parallel MVA batch.

    MVA requests are never grid-grouped, so every point is a real pool
    task — the comparison isolates the supervisor's bookkeeping (
    per-task futures + deadline/hedge polling vs one chunked ``map``).
    Results must be identical; the timing ratio is recorded for trend
    tracking, not asserted.
    """
    from repro.methods import SolveMethod

    requests = [
        SolveRequest.square(n, SWEEP_CLASSES, method=SolveMethod.MVA)
        for n in range(3, 3 + n_points)
    ]

    plain = BatchSolver(EngineConfig(max_retries=0))
    assert not plain.config.supervised
    began = time.perf_counter()
    plain_results = plain.evaluate_many(requests, parallel=True)
    plain_elapsed = time.perf_counter() - began

    supervised = BatchSolver(EngineConfig(task_deadline=60.0))
    assert supervised.config.supervised
    began = time.perf_counter()
    supervised_results = supervised.evaluate_many(requests, parallel=True)
    supervised_elapsed = time.perf_counter() - began

    assert supervised_results == plain_results, (
        "supervised batch changed the numbers"
    )
    clean_metrics = supervised.last_metrics
    assert clean_metrics.retries == 0 and clean_metrics.failed == 0, (
        "clean run recorded spurious retries/failures"
    )

    return {
        "points": n_points,
        "plain_seconds": plain_elapsed,
        "supervised_seconds": supervised_elapsed,
        "overhead_ratio": (
            supervised_elapsed / plain_elapsed
            if plain_elapsed > 0 else float("inf")
        ),
        "identical": True,
        "plain_metrics": plain.last_metrics.to_dict(),
        "supervised_metrics": clean_metrics.to_dict(),
    }


def bench_service(n_requests: int) -> dict:
    """The daemon under 1/8/64 concurrent clients, real wire included.

    Requests rotate over four distinct warmed models, so the numbers
    measure the service path (framing, gate, coalescing, batching)
    rather than solve time — which is exactly the overhead a deployer
    wants to know.  Byte identity with local solves is asserted;
    throughput and latency are recorded.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.api import solve
    from repro.service import ServiceClient, ServiceConfig, start_in_thread

    pool_requests = [
        SolveRequest.square(n, SWEEP_CLASSES) for n in (4, 6, 8, 10)
    ]
    local = {r.cache_key: solve(r) for r in pool_requests}

    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=256, batch_window=0.001),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        for request in pool_requests:  # warm the daemon's engine
            result = client.solve(request)
            assert result == local[request.cache_key], (
                f"wire result diverged from local solve for {request.dims}"
            )

        def one_call(index: int) -> float:
            request = pool_requests[index % len(pool_requests)]
            began = time.perf_counter()
            result = client.solve(request)
            elapsed = time.perf_counter() - began
            assert result == local[request.cache_key]
            return elapsed

        def percentile(sorted_values: list[float], q: float) -> float:
            index = min(len(sorted_values) - 1,
                        int(q * (len(sorted_values) - 1) + 0.5))
            return sorted_values[index]

        levels = {}
        for clients in (1, 8, 64):
            with ThreadPoolExecutor(max_workers=clients) as executor:
                began = time.perf_counter()
                latencies = sorted(
                    executor.map(one_call, range(n_requests))
                )
                elapsed = time.perf_counter() - began
            levels[str(clients)] = {
                "clients": clients,
                "requests": n_requests,
                "throughput_rps": n_requests / elapsed,
                "p50_ms": percentile(latencies, 0.50) * 1e3,
                "p99_ms": percentile(latencies, 0.99) * 1e3,
            }

        flights = handle.service.flights
        attempts = flights.hits + flights.leaders
        coalesce_hit_rate = flights.hits / attempts if attempts else 0.0
        gate = handle.service.gate.snapshot()
        assert gate.rejected == 0, "benchmark gate unexpectedly rejected"
    finally:
        handle.stop()

    return {
        "models": len(pool_requests),
        "levels": levels,
        "coalesce_hits": flights.hits,
        "coalesce_leaders": flights.leaders,
        "coalesce_hit_rate": coalesce_hit_rate,
        "identical": True,
    }


def bench_service_cluster(single_worker_rps: float) -> dict:
    """The 4-worker sharded fleet vs one daemon, plus the loss-system leg.

    Throughput: 256 closed-loop users from one generator process drive
    the workers directly (client-side hash sharding); best of three
    4-second trials, each preceded by a 2-second settle so teardown
    work from the previous trial cannot bleed in.  The floor is 3x the
    single-worker service section's 64-client figure.

    Blocking: a second fleet is squeezed into a real loss system
    (2 admission tokens, 50 ms minimum hold) and offered open-loop
    traffic.  Pure Poisson arrivals must land within 0.13 of the
    per-shard Erlang-B prediction; geometric batches of mean 3 must
    block strictly more — the paper's bursty-traffic effect, measured
    on the serving tier instead of the crossbar.
    """
    import http.client
    import tempfile

    from repro.api import solve
    from repro.loadgen import LoadSpec, expected_fleet_blocking, run_load
    from repro.service import (
        ClusterConfig,
        ServiceConfig,
        start_cluster_in_thread,
    )
    from repro.service.protocol import decode_result

    pool_requests = [
        SolveRequest.square(n, SWEEP_CLASSES) for n in (4, 6, 8, 10)
    ]
    local = {r.cache_key: solve(r) for r in pool_requests}
    workers = 4

    def wire_result(address: tuple[str, int], request) -> tuple[str, object]:
        """(canonical solution bytes, decoded result) from one worker.

        ``from_cache`` is provenance (warmed owner vs cold peer), not
        part of the answer, so it is stripped before comparing bytes.
        """
        connection = http.client.HTTPConnection(*address, timeout=30.0)
        try:
            connection.request(
                "POST", "/solve",
                body=json.dumps({"request": request.to_dict()}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            envelope = json.loads(response.read().decode())
            assert response.status == 200, envelope
        finally:
            connection.close()
        fragment = dict(envelope["result"])
        fragment.pop("from_cache", None)
        return (
            json.dumps(fragment, sort_keys=True),
            decode_result(envelope["result"]),
        )

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as cache_dir:
        config = ServiceConfig(
            port=0, gate_capacity=256, batch_window=0.001,
            cluster=ClusterConfig(workers=workers, cache_dir=cache_dir),
        )
        with start_cluster_in_thread(config) as handle:
            from repro.service import ServiceClient

            chart = ServiceClient(*handle.address).cluster_map()
            assert chart is not None and chart["workers"] == workers
            addresses = [
                (entry["host"], entry["port"])
                for entry in chart["shards"]
            ]

            # Byte identity across the whole fleet (also warms every
            # worker's cache for every key in the mix).
            for request in pool_requests:
                fragments = set()
                for address in addresses:
                    payload, decoded = wire_result(address, request)
                    fragments.add(payload)
                    assert decoded == local[request.cache_key], (
                        f"worker {address} diverged from the local solve"
                    )
                assert len(fragments) == 1, (
                    f"workers disagreed on result bytes for {request.dims}"
                )

            spec = LoadSpec(
                generators=1, connections=256, duration=4.0,
                mode="closed", sizes=(4, 6, 8, 10), warmup=2,
            )
            trials = []
            best = None
            for _ in range(3):
                time.sleep(2.0)  # let the previous trial's teardown drain
                report = run_load(spec, *handle.address)
                assert report.errors == 0 and report.completed > 0
                trials.append(report.throughput_rps)
                if best is None or report.throughput_rps > best.throughput_rps:
                    best = report

    speedup = (
        best.throughput_rps / single_worker_rps
        if single_worker_rps > 0 else float("inf")
    )
    assert speedup >= 3.0, (
        f"4-worker fleet at {best.throughput_rps:.0f} req/s is only "
        f"{speedup:.2f}x the single worker ({single_worker_rps:.0f} "
        "req/s); the floor is 3x"
    )

    # -- the loss-system leg: Erlang-B fidelity, then burstiness ------
    servers, hold = 2, 0.05
    loss_config = ServiceConfig(
        port=0, gate_capacity=servers, point_weight=1.0,
        min_hold=hold, batch_window=0.001,
        cluster=ClusterConfig(workers=workers),
    )
    loss_spec = LoadSpec(
        generators=2, connections=256, duration=10.0, mode="open",
        rate=160.0, sizes=tuple(range(3, 15)), warmup=2,
    )
    blocking = {}
    for burst_mean in (1.0, 3.0):
        with start_cluster_in_thread(loss_config) as handle:
            import dataclasses

            report = run_load(
                dataclasses.replace(loss_spec, burst_mean=burst_mean),
                *handle.address,
            )
        assert report.errors == 0
        blocking[burst_mean] = {
            "burst_mean": burst_mean,
            "offered": report.offered,
            "measured": report.blocking_measured,
            "expected_erlang_b": expected_fleet_blocking(
                report, servers=servers, hold_s=hold
            ),
        }

    tolerance = 0.13
    poisson = blocking[1.0]
    delta = abs(poisson["measured"] - poisson["expected_erlang_b"])
    assert delta <= tolerance, (
        f"Poisson fleet blocking {poisson['measured']:.3f} is "
        f"{delta:.3f} from the Erlang-B prediction "
        f"{poisson['expected_erlang_b']:.3f} (tolerance {tolerance})"
    )
    bursty = blocking[3.0]
    assert bursty["measured"] > poisson["measured"], (
        f"bursty blocking {bursty['measured']:.3f} did not exceed the "
        f"Poisson run's {poisson['measured']:.3f} — the paper's effect "
        "should survive the serving tier"
    )

    return {
        "workers": workers,
        "throughput": {
            "connections": spec.connections,
            "trial_rps": trials,
            "best_rps": best.throughput_rps,
            "single_worker_rps": single_worker_rps,
            "speedup": speedup,
            "min_speedup": 3.0,
            "p50_ms": best.latency_ms(0.50),
            "p99_ms": best.latency_ms(0.99),
            "per_shard": {
                str(shard): dict(counts)
                for shard, counts in sorted(best.per_shard.items())
            },
        },
        "blocking": {
            "servers_per_shard": servers,
            "hold_s": hold,
            "tolerance": tolerance,
            "poisson": {**poisson, "delta": delta},
            "bursty": bursty,
            "bursty_exceeds_poisson": True,
        },
        "identical": True,
    }


def bench_cluster_failover(quick: bool) -> dict:
    """Self-healing fleet: recovery time, failover cost, degraded loss.

    **Recovery leg** — on a two-shard fleet, SIGKILL the worker owning
    a warmed key and probe that key continuously: every probe must
    answer 200 (failing over to the peer while the slot respawns), and
    the leg records how long the keyspace spent detoured, how many
    replies failed over, and what fraction of them the peer served
    from the shared disk cache (the cache-locality cost of failover —
    a shared store keeps it near zero).

    **Degraded-blocking leg** — the acceptance check: a 4-worker loss
    fleet (2 tokens, 50 ms hold per shard, brownout off for clean
    math) with one worker held dead (``respawn=False``) is offered
    open-loop Poisson traffic through the router.  Failover
    concentrates the stream on the 3 survivors, so measured blocking
    must land within 0.1 of ``B(2, (rate/3) * H)`` — the
    availability-weighted Erlang-B prediction.
    """
    import http.client
    import tempfile

    from repro.loadgen import (
        LoadSpec,
        availability_weighted_blocking,
        run_load,
    )
    from repro.service import (
        BrownoutConfig,
        ClusterConfig,
        ServiceClient,
        ServiceConfig,
        start_cluster_in_thread,
    )
    from repro.service.sharding import HashRing

    request = SolveRequest.square(6, SWEEP_CLASSES)

    def probe(address: tuple[str, int]) -> tuple[int, int | None,
                                                 int | None, bool]:
        connection = http.client.HTTPConnection(*address, timeout=30.0)
        try:
            connection.request(
                "POST", "/solve",
                body=json.dumps({"request": request.to_dict()}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            envelope = json.loads(response.read().decode())
            shard = response.getheader("X-Shard")
            failover = response.getheader("X-Shard-Failover")
            return (
                response.status,
                int(shard) if shard is not None else None,
                int(failover) if failover is not None else None,
                bool(envelope.get("result", {}).get("from_cache")),
            )
        finally:
            connection.close()

    # -- recovery leg -------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="bench-failover-") as cache:
        config = ServiceConfig(
            port=0, batch_window=0.001,
            cluster=ClusterConfig(
                workers=2, cache_dir=cache, health_interval=0.05,
                respawn_backoff_base=0.1,
            ),
        )
        with start_cluster_in_thread(config) as handle:
            client = ServiceClient(*handle.address)
            chart = client.cluster_map()
            ring = HashRing(chart["workers"], chart["hash_replicas"])
            owner = ring.shard_for(request.cache_key)
            status, shard, _, _ = probe(handle.address)
            assert (status, shard) == (200, owner)

            killed_at = time.monotonic()
            assert handle.kill_shard(owner)
            probes = 0
            failovers = 0
            failover_hits = 0
            recovery_s = None
            deadline = killed_at + 60.0
            while time.monotonic() < deadline:
                status, shard, failover, from_cache = probe(
                    handle.address
                )
                probes += 1
                assert status == 200, (
                    f"probe {probes} got {status} during failover"
                )
                if failover is not None:
                    failovers += 1
                    failover_hits += 1 if from_cache else 0
                elif shard == owner:
                    recovery_s = time.monotonic() - killed_at
                    break
                time.sleep(0.02)
            assert recovery_s is not None, "owner never recovered"
            assert failovers >= 1, "the kill was never observed"

    recovery = {
        "workers": 2,
        "recovery_s": recovery_s,
        "probes": probes,
        "failover_replies": failovers,
        "failover_cache_hit_rate": (
            failover_hits / failovers if failovers else 0.0
        ),
    }

    # -- degraded-blocking leg (the acceptance criterion) -------------
    workers, dead, servers, hold = 4, 1, 2, 0.05
    tolerance = 0.10
    config = ServiceConfig(
        port=0, gate_capacity=servers, point_weight=1.0,
        min_hold=hold, batch_window=0.001,
        brownout=BrownoutConfig(enabled=False),
        cluster=ClusterConfig(
            workers=workers, health_interval=0.05, respawn=False,
        ),
    )
    spec = LoadSpec(
        generators=2, connections=256, duration=6.0 if quick else 10.0,
        mode="open", rate=160.0, sizes=tuple(range(3, 15)), warmup=2,
        shard_direct=False,  # through the router: failover must engage
    )
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        chart = client.cluster_map()
        victim = chart["shards"][0]["shard"]
        assert handle.kill_shard(victim)
        deadline = time.monotonic() + 30.0
        while True:  # hold the shard dead before offering load
            chart = client.cluster_map(refresh=True)
            entry = next(
                e for e in chart["shards"] if e["shard"] == victim
            )
            if entry["dead"]:
                break
            assert time.monotonic() < deadline, "death never declared"
            time.sleep(0.05)
        report = run_load(spec, *handle.address)

    assert report.errors == 0, (
        f"{report.errors} transport errors through a failing-over "
        f"router ({report.connect_refused} refused, "
        f"{report.read_errors} read)"
    )
    offered_rate = report.offered / report.duration
    predicted = availability_weighted_blocking(
        workers, dead, servers, offered_rate, hold
    )
    measured = report.blocking_measured
    delta = abs(measured - predicted)
    assert delta <= tolerance, (
        f"fleet blocking with {dead}/{workers} workers dead measured "
        f"{measured:.3f} but the availability-weighted Erlang-B "
        f"prediction is {predicted:.3f} (|delta| {delta:.3f} > "
        f"{tolerance})"
    )

    return {
        "recovery": recovery,
        "degraded_blocking": {
            "workers": workers,
            "dead": dead,
            "servers_per_shard": servers,
            "hold_s": hold,
            "offered": report.offered,
            "offered_rate": offered_rate,
            "measured": measured,
            "predicted_availability_weighted": predicted,
            "delta": delta,
            "tolerance": tolerance,
            "healthy_prediction": availability_weighted_blocking(
                workers, 0, servers, offered_rate, hold
            ),
            "no_failover_prediction": availability_weighted_blocking(
                workers, dead, servers, offered_rate, hold,
                failover=False,
            ),
        },
    }


def bench_service_degraded(n_requests: int) -> dict:
    """The daemon at every brownout stage: what degrading actually buys.

    The ladder is forced stage by stage (normal -> admission-shrink ->
    cheap-method -> stale-cache -> fast-503) while a single-threaded
    client replays a mix of warmed models, cold models, and a few
    1 ms-budget requests.  Per stage the section records throughput,
    p50/p99 latency, and the outcome rates — ok / degraded-hit / 503 /
    504 — so a deployer can read off what each shed stage costs and
    what it protects.
    """
    import threading

    from repro.api import solve
    from repro.service import (
        AdmissionRejectedError,
        DeadlineExceededError,
        ServiceClient,
        ServiceConfig,
        start_in_thread,
    )
    from repro.service.brownout import STAGE_NAMES, BrownoutConfig

    warmed = [SolveRequest.square(n, SWEEP_CLASSES) for n in (4, 6, 8)]
    local = {r.cache_key: solve(r) for r in warmed}

    handle = start_in_thread(
        ServiceConfig(
            port=0, gate_capacity=64, batch_window=0.001,
            brownout=BrownoutConfig(enabled=True, interval=60.0),
        ),
        engine=BatchSolver(EngineConfig()),
    )

    def force_stage(stage: int) -> None:
        done = threading.Event()

        def _apply() -> None:
            handle.service.brownout.force_stage(stage)
            done.set()

        handle.loop.call_soon_threadsafe(_apply)
        assert done.wait(10.0), "brownout controller did not respond"

    def percentile(sorted_values: list[float], q: float) -> float:
        index = min(len(sorted_values) - 1,
                    int(q * (len(sorted_values) - 1) + 0.5))
        return sorted_values[index]

    tiny_budget = max(2, n_requests // 8)
    stages = {}
    try:
        client = ServiceClient(*handle.address)
        for request in warmed:  # prime the cache at stage 0
            result = client.solve(request)
            assert result == local[request.cache_key]

        cold_n = 12  # distinct cold model per request, never reused
        for stage, stage_name in enumerate(STAGE_NAMES):
            force_stage(stage)
            counts = {"ok": 0, "degraded": 0, "503": 0, "504": 0}
            latencies: list[float] = []
            began_stage = time.perf_counter()
            for index in range(n_requests):
                if index < tiny_budget:
                    request = SolveRequest.square(cold_n, SWEEP_CLASSES)
                    cold_n += 1
                    budget = 1.0  # ms; blown by design
                else:
                    request = warmed[index % len(warmed)]
                    budget = None
                began = time.perf_counter()
                try:
                    envelope = client.solve_raw(
                        request, deadline_ms=budget
                    )
                except AdmissionRejectedError:
                    counts["503"] += 1
                except DeadlineExceededError:
                    counts["504"] += 1
                else:
                    if envelope.get("degraded"):
                        counts["degraded"] += 1
                    else:
                        counts["ok"] += 1
                latencies.append(time.perf_counter() - began)
            elapsed = time.perf_counter() - began_stage
            latencies.sort()
            stages[stage_name] = {
                "stage": stage,
                "requests": n_requests,
                "throughput_rps": n_requests / elapsed,
                "p50_ms": percentile(latencies, 0.50) * 1e3,
                "p99_ms": percentile(latencies, 0.99) * 1e3,
                "gate_limit": handle.service.gate.limit,
                "rate_ok": counts["ok"] / n_requests,
                "rate_degraded": counts["degraded"] / n_requests,
                "rate_503": counts["503"] / n_requests,
                "rate_504": counts["504"] / n_requests,
            }

        # The ladder's contract, as rates: full service at stage 0 (the
        # only sheds are the by-design 1 ms budgets), conversion not
        # rejection at stage 2, cache-only service at stage 3, and a
        # total fast-503 clear at stage 4.
        assert stages["normal"]["rate_ok"] > 0.0
        assert stages["normal"]["rate_degraded"] == 0.0
        assert stages["normal"]["rate_503"] == 0.0
        assert stages["normal"]["rate_504"] > 0.0  # the 1 ms budgets
        assert stages["cheap-method"]["rate_degraded"] > 0.0
        assert stages["stale-cache"]["rate_degraded"] > 0.0  # warm hits
        assert stages["stale-cache"]["rate_503"] > 0.0       # cold sheds
        assert stages["fast-503"]["rate_503"] == 1.0
        transitions = handle.service.brownout.transitions
        assert transitions >= len(STAGE_NAMES) - 1
    finally:
        handle.stop()

    return {
        "stages": stages,
        "tiny_budget_requests": tiny_budget,
        "brownout_transitions": transitions,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: smaller sweep, relaxed speedup floor",
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="where to write the JSON report (default: ./BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sweep = bench_sweep(4, 32, min_speedup=2.0)
    else:
        sweep = bench_sweep(4, 64, min_speedup=5.0)
    robust = bench_robust_availability()
    resilience = bench_resilience_overhead(16 if args.quick else 50)
    service = bench_service(128 if args.quick else 512)
    service_cluster = bench_service_cluster(
        service["levels"]["64"]["throughput_rps"]
    )
    service_degraded = bench_service_degraded(32 if args.quick else 96)
    cluster_failover = bench_cluster_failover(args.quick)

    report = {
        "benchmark": "engine",
        "quick": args.quick,
        "sweep": sweep,
        "robust_availability": robust,
        "resilience_overhead": resilience,
        "service": service,
        "service_cluster": service_cluster,
        "service_degraded": service_degraded,
        "cluster_failover": cluster_failover,
    }
    # Sections written by sibling benchmarks (e.g. bench_kernels.py's
    # "kernels") live in the same file; preserve them on rewrite.
    output = Path(args.output)
    if output.exists():
        try:
            previous = json.loads(output.read_text())
        except (OSError, ValueError):
            previous = {}
        for key, value in previous.items():
            report.setdefault(key, value)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(
        f"\nsweep speedup {sweep['speedup']:.1f}x "
        f"(floor {sweep['min_speedup']:g}x); "
        f"second-pass hit-rate {sweep['second_pass']['hit_rate']:.0%}; "
        f"availability hit-rate {robust['hit_rate']:.1%}; "
        f"supervision overhead {resilience['overhead_ratio']:.2f}x; "
        f"service {service['levels']['64']['throughput_rps']:.0f} req/s "
        f"@64 clients (p99 {service['levels']['64']['p99_ms']:.1f}ms, "
        f"coalesce {service['coalesce_hit_rate']:.0%}); "
        f"cluster x{service_cluster['workers']} "
        f"{service_cluster['throughput']['best_rps']:.0f} req/s "
        f"({service_cluster['throughput']['speedup']:.1f}x, "
        f"Erlang-B delta "
        f"{service_cluster['blocking']['poisson']['delta']:.3f}); "
        f"brownout fast-503 clears at "
        f"{service_degraded['stages']['fast-503']['throughput_rps']:.0f}"
        f" req/s; "
        f"failover recovery "
        f"{cluster_failover['recovery']['recovery_s']:.2f}s, "
        f"degraded-blocking delta "
        f"{cluster_failover['degraded_blocking']['delta']:.3f} "
        f"-> {args.output}"
    )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"BENCH FAILURE: {exc}", file=sys.stderr)
        sys.exit(1)
