"""Figure 2: peaky (Pascal) arrival traffic vs system size.

Regenerates the paper's Figure 2 and checks the reported shape: peaky
traffic "has a dramatic impact on blocking probability" — the Pascal
curves lie above the Poisson baseline by far more than the smooth
family of Figure 1 lies below it, and the gap widens with both
``beta~`` and ``N``.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import figure1, figure2


def test_figure2(benchmark):
    fig = benchmark.pedantic(figure2, rounds=1, iterations=1)
    write_result("figure2", fig.render(precision=6))

    poisson = fig.curve("poisson").values
    for curve in fig.curves[1:]:
        assert all(
            b >= p - 1e-15 for p, b in zip(poisson, curve.values)
        )
    # Gap grows with beta~ at the largest size.
    gaps = [c.values[-1] - poisson[-1] for c in fig.curves[1:]]
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    # "Dramatic" relative to Figure 1's smooth family: at N = 128 the
    # most peaky increment dwarfs the smooth decrement.
    smooth = figure1(sizes=(128,))
    smooth_gap = (
        smooth.curve("poisson").values[0] - smooth.curves[-1].values[0]
    )
    assert gaps[-1] > 20 * smooth_gap
