"""Figure 3: Poisson + peaky mix versus the peaky class alone.

Regenerates the paper's Figure 3 and checks its two observations:
adding the ``R1`` (Poisson) class merely shifts the operating point of
the crossbar upward, and a given ``beta~`` causes a similar *relative*
change in blocking at either operating point.
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import figure3


def test_figure3(benchmark):
    fig = benchmark.pedantic(figure3, rounds=1, iterations=1)
    write_result("figure3", fig.render(precision=6))

    for beta in ("0.0012", "0.0024"):
        alone = fig.curve(f"R2 only, beta~={beta}").values
        mixed = fig.curve(f"R1+R2, beta~={beta}").values
        # The mix carries twice the load: strictly higher blocking.
        assert all(m > a for a, m in zip(alone[1:], mixed[1:]))

    # Similar relative beta~ effect at both operating points (checked
    # at the largest size, to within 50% of each other).
    idx = -1
    alone_low = fig.curve("R2 only, beta~=0.0012").values[idx]
    alone_high = fig.curve("R2 only, beta~=0.0024").values[idx]
    mixed_low = fig.curve("R1+R2, beta~=0.0012").values[idx]
    mixed_high = fig.curve("R1+R2, beta~=0.0024").values[idx]
    rel_alone = (alone_high - alone_low) / alone_low
    rel_mixed = (mixed_high - mixed_low) / mixed_low
    assert 0.5 < rel_mixed / rel_alone < 2.0
