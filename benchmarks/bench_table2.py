"""Table 2: revenue-oriented analysis, all three parameter sets.

Regenerates every row of the paper's Table 2 (``N`` from 1 to 256) —
``dW/d rho_1``, ``dW/d (beta_2/mu_2)`` (forward differences, as in the
paper), the blocking probability and the total revenue ``W(N)`` — and
prints them side by side with the paper's values.

Reproduction criteria (see EXPERIMENTS.md for the full accounting):

* all Poisson-governed quantities match the printed digits
  (``dW/d rho_1`` to ~1%, ``W`` to ~0.1%, blocking at ``N <= 8`` to
  <1%);
* the bursty-load gradient is negative beyond small ``N`` and its
  magnitude explodes with ``N`` — the paper's headline finding that
  increasing the peakedness of cheap traffic loses revenue;
* the exact bursty blocking exceeds the printed values by a factor
  that grows with ``N`` and ``beta~`` — the documented first-order
  defect in the paper's own computation (its eq. 19 is inconsistent
  with its eq. 17; our values are verified five independent ways).
"""

from __future__ import annotations

from conftest import write_result

from repro.reporting import format_table
from repro.workloads import table2_rows


def _render(set_index: int, rows: list[dict]) -> str:
    return format_table(
        ["N", "dW/drho1", "paper", "dW/d(b2/mu2)", "paper",
         "blocking", "paper", "W(N)", "paper"],
        [
            [
                r["N"], r["dW_drho1"], r["paper_dW_drho1"],
                r["dW_dburstiness2"], r["paper_dW_dburstiness2"],
                r["blocking"], r["paper_blocking"],
                r["revenue"], r["paper_revenue"],
            ]
            for r in rows
        ],
        title=f"Table 2, parameter set {set_index} (computed vs paper)",
    )


def _check(rows: list[dict]) -> None:
    for row in rows:
        n = row["N"]
        # Poisson-governed columns: tight.
        assert abs(row["dW_drho1"] - row["paper_dW_drho1"]) <= 0.015 * abs(
            row["paper_dW_drho1"]
        )
        assert abs(row["revenue"] - row["paper_revenue"]) <= 0.02 * abs(
            row["paper_revenue"]
        )
        if n <= 8:
            assert abs(
                row["blocking"] - row["paper_blocking"]
            ) <= 0.01 * abs(row["paper_blocking"])
        # Shape of the bursty gradient.
        if n >= 4:
            assert row["dW_dburstiness2"] < 0
            assert row["paper_dW_dburstiness2"] < 0
        if n >= 4:
            assert row["blocking"] >= row["paper_blocking"] - 1e-9
    magnitudes = [
        abs(r["dW_dburstiness2"]) for r in rows if r["N"] >= 4
    ]
    assert all(b > a for a, b in zip(magnitudes, magnitudes[1:]))


def test_table2_set0(benchmark):
    rows = benchmark.pedantic(
        table2_rows, args=(0,), rounds=1, iterations=1
    )
    write_result("table2_set0", _render(0, rows))
    _check(rows)


def test_table2_set1(benchmark):
    rows = benchmark.pedantic(
        table2_rows, args=(1,), rounds=1, iterations=1
    )
    write_result("table2_set1", _render(1, rows))
    _check(rows)


def test_table2_set2(benchmark):
    rows = benchmark.pedantic(
        table2_rows, args=(2,), rounds=1, iterations=1
    )
    write_result("table2_set2", _render(2, rows))
    _check(rows)
