"""Figure 1: smooth (Bernoulli) arrival traffic vs system size.

Regenerates the paper's Figure 1 — blocking probability for
``N1 = N2 = N`` up to 128, one smooth class (``R1 = 0, R2 = 1``,
``a = 1``), ``alpha~ = .0024``, ``beta~`` from 0 to ``-4e-6`` — and
checks the reported shape: the Poisson curve is an upper bound and the
whole family stays within ~0.1% of it ("relatively insensitive").
"""

from __future__ import annotations

from conftest import write_result

from repro.workloads import figure1


def test_figure1(benchmark):
    fig = benchmark.pedantic(figure1, rounds=1, iterations=1)
    write_result("figure1", fig.render(precision=6))

    poisson = fig.curve("poisson").values
    # Poisson upper-bounds every smooth curve, pointwise.
    for curve in fig.curves[1:]:
        assert all(
            b <= p + 1e-15 for p, b in zip(poisson, curve.values)
        ), f"curve {curve.label} exceeds the Poisson bound"
    # Monotone ordering in |beta~|.
    for first, second in zip(fig.curves, fig.curves[1:]):
        assert all(
            b <= a + 1e-15
            for a, b in zip(first.values[2:], second.values[2:])
        )
    # The smooth family is a small perturbation (paper: ~0.1%).
    smoothest = fig.curves[-1].values[-1]
    assert abs(poisson[-1] - smoothest) / poisson[-1] < 0.005
    # Operating point ~0.5% blocking, as designed.
    assert 0.002 < poisson[-1] < 0.008
