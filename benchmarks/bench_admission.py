"""Extension F: admission control closes the revenue gap of Table 2.

Sweeps the reservation threshold of a cheap class sharing the switch
with a valuable class, verifying that (a) the unrestricted operating
point is revenue-suboptimal — the quantitative counterpart of the
paper's negative shadow values — and (b) the exact chain solution and
the policy-aware simulator agree.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.extensions import (
    OccupancyThresholdPolicy,
    policy_call_acceptance,
    solve_with_admission,
    sweep_threshold,
)
from repro.reporting import format_table
from repro.sim import run_replications

DIMS = SwitchDimensions(5, 5)
CLASSES = [
    TrafficClass.poisson(0.2, weight=5.0, name="gold"),
    TrafficClass(alpha=0.1, beta=0.2, weight=0.05, name="bronze"),
]


def test_reservation_sweep(benchmark):
    records = benchmark.pedantic(
        sweep_threshold, args=(DIMS, CLASSES, 1), rounds=1, iterations=1
    )
    rows = [
        [rec["threshold"], rec["revenue"],
         rec["concurrencies"][0], rec["concurrencies"][1]]
        for rec in records
    ]
    write_result(
        "admission_sweep",
        format_table(
            ["bronze cap", "W", "E[gold]", "E[bronze]"],
            rows,
            precision=5,
            title="Revenue vs reservation threshold (bursty bronze class)",
        ),
    )
    unrestricted = records[-1]["revenue"]
    best = max(rec["revenue"] for rec in records)
    assert best > unrestricted  # reservation recovers revenue
    # gold concurrency is monotone non-increasing in the bronze cap
    golds = [rec["concurrencies"][0] for rec in records]
    assert all(a >= b - 1e-12 for a, b in zip(golds, golds[1:]))


def test_policy_simulation_agreement(benchmark):
    policy = OccupancyThresholdPolicy((5, 2))
    dist = solve_with_admission(DIMS, CLASSES, policy)

    def run():
        return run_replications(
            DIMS, CLASSES, horizon=3000.0, warmup=300.0,
            replications=5, seed=31,
            admission_thresholds=policy.thresholds,
        )

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    for r in range(2):
        assert summary.classes[r].acceptance.estimate == pytest.approx(
            policy_call_acceptance(dist, policy, r), rel=0.06
        )
