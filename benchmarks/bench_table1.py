"""Table 1: the input loads behind Figure 4.

Regenerates the table and verifies the printed values against the
reconstruction ``rho~_r = tau_r / C(N, a_r)`` (with ``tau_1 = .0024``,
``tau_2 = .0048`` — the factor-2 inconsistency in the text's single
``tau_r = .0048`` is documented in DESIGN.md).
"""

from __future__ import annotations

from conftest import write_result

from repro.reporting import format_table
from repro.workloads import table1_rows


def test_table1(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    text = format_table(
        ["N", "rho~1 paper", "rho~1 formula", "rho~2 paper",
         "rho~2 formula"],
        rows,
        title="Table 1: Figure 4 input parameters (printed vs formula)",
    )
    write_result("table1", text)

    for n, printed1, formula1, printed2, formula2 in rows:
        assert abs(printed1 - formula1) / printed1 < 5e-3
        assert abs(printed2 - formula2) / printed2 < 5e-3
