"""Ablation A: the solution methods against each other.

Times Algorithm 1 (three numeric modes), Algorithm 2, the exact
rational oracle, brute-force enumeration and the raw CTMC solve on a
shared configuration, and asserts they agree.  This substantiates the
paper's complexity discussion in Section 5: both fast algorithms scale
as ``O(N1 N2 R)`` while enumeration-based methods blow up with the
state space.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.convolution import solve_convolution
from repro.core.exact import solve_exact
from repro.core.mva import solve_mva
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc import solve_ctmc
from repro.reporting import format_table


def _classes(n: int) -> list[TrafficClass]:
    return [
        TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="poisson"),
        TrafficClass.from_aggregate(0.0024, 0.0012, n2=n, name="pascal"),
    ]


REFERENCE_N = 20
REFERENCE = solve_convolution(
    SwitchDimensions.square(REFERENCE_N), _classes(REFERENCE_N)
)


def _assert_matches(non_blocking: float) -> None:
    assert non_blocking == pytest.approx(
        REFERENCE.non_blocking(0), rel=1e-8
    )


@pytest.mark.parametrize("mode", ["log", "scaled", "float"])
def test_algorithm1_modes(benchmark, mode):
    dims = SwitchDimensions.square(REFERENCE_N)
    solution = benchmark(
        solve_convolution, dims, _classes(REFERENCE_N), mode
    )
    _assert_matches(solution.non_blocking(0))


def test_algorithm2_mva(benchmark):
    dims = SwitchDimensions.square(REFERENCE_N)
    solution = benchmark(solve_mva, dims, _classes(REFERENCE_N))
    _assert_matches(solution.non_blocking(0))


def test_series_solver(benchmark):
    from repro.core.series_solver import solve_series

    dims = SwitchDimensions.square(REFERENCE_N)
    solution = benchmark(solve_series, dims, _classes(REFERENCE_N))
    _assert_matches(solution.non_blocking(0))


def test_exact_rational(benchmark):
    dims = SwitchDimensions.square(REFERENCE_N)
    solution = benchmark.pedantic(
        solve_exact, args=(dims, _classes(REFERENCE_N)),
        rounds=1, iterations=1,
    )
    _assert_matches(solution.non_blocking(0))


def test_brute_force_enumeration(benchmark):
    dims = SwitchDimensions.square(REFERENCE_N)
    dist = benchmark.pedantic(
        solve_brute_force, args=(dims, _classes(REFERENCE_N)),
        rounds=1, iterations=1,
    )
    _assert_matches(dist.non_blocking_probability(0))


def test_ctmc_direct(benchmark):
    dims = SwitchDimensions.square(REFERENCE_N)
    dist = benchmark.pedantic(
        solve_ctmc, args=(dims, _classes(REFERENCE_N)),
        rounds=1, iterations=1,
    )
    _assert_matches(dist.non_blocking_probability(0))


def test_scaling_with_system_size(benchmark):
    """O(N^2) growth of Algorithm 1 — the Section 5 complexity claim.

    Fits the runtime ratio between N = 128 and N = 32: for an
    O(N^2 R) algorithm the work ratio is 16; allow generous slack for
    constant overheads.
    """
    import time

    def measure(n: int) -> float:
        dims = SwitchDimensions.square(n)
        classes = _classes(n)
        start = time.perf_counter()
        for _ in range(3):
            solve_convolution(dims, classes)
        return (time.perf_counter() - start) / 3

    def run():
        return measure(32), measure(128)

    t32, t128 = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = t128 / t32
    write_result(
        "algorithm_scaling",
        format_table(
            ["N", "seconds/solve"],
            [[32, t32], [128, t128], ["ratio", ratio]],
            title="Algorithm 1 runtime scaling (expect ~16x for O(N^2))",
        ),
    )
    assert ratio < 64.0  # far below the O(N^4) that enumeration costs
