"""Extension G: hot-spot traffic — exact chain vs simulation.

Reproduces the setting of the paper's companion analysis (Pinsky &
Stirpe, ICPP 1991, ref. [28]): one output attracts a multiple of the
other outputs' traffic.  The exactly-lumped two-dimensional chain of
``repro.extensions.hotspot_analysis`` sweeps the skew factor and is
validated against the hot-spot simulator; the uniform case (factor 1)
is anchored to the paper's product-form model.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.extensions import solve_hot_spot
from repro.reporting import format_table
from repro.sim import run_hot_spot

DIMS = SwitchDimensions.square(8)
CLS = TrafficClass.poisson(0.05, name="p")


def test_hot_spot_factor_sweep(benchmark):
    def run():
        rows = []
        for factor in (1.0, 2.0, 4.0, 8.0, 16.0):
            solution = solve_hot_spot(DIMS, CLS, factor=factor)
            rows.append(
                [
                    factor,
                    solution.blocking(),
                    solution.hot_request_blocking(),
                    solution.cold_request_blocking(),
                    solution.hot_output_utilization(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "hotspot_sweep",
        format_table(
            ["factor", "blocking", "hot-request B", "cold-request B",
             "hot-output util"],
            rows,
            precision=5,
            title=f"Hot-spot degradation on {DIMS} (exact chain)",
        ),
    )
    # uniform case anchors to the paper's model
    uniform = solve_convolution(DIMS, [CLS]).blocking(0)
    assert rows[0][1] == pytest.approx(uniform, rel=1e-9)
    # overall blocking and hot-request blocking grow with the skew
    blockings = [r[1] for r in rows]
    assert all(b >= a - 1e-12 for a, b in zip(blockings, blockings[1:]))
    hot_blockings = [r[2] for r in rows]
    assert all(
        b >= a - 1e-12 for a, b in zip(hot_blockings, hot_blockings[1:])
    )


def test_hot_spot_chain_vs_simulation(benchmark):
    factor = 6.0
    analysis = solve_hot_spot(DIMS, CLS, factor=factor)

    def run():
        return run_hot_spot(
            DIMS, [CLS], factor=factor, horizon=3000.0, warmup=300.0,
            replications=4, seed=41,
        )

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    sim_acc = summary.classes[0].acceptance.estimate
    write_result(
        "hotspot_vs_sim",
        f"factor {factor}: chain acceptance "
        f"{analysis.call_acceptance():.5f}, simulated {sim_acc:.5f} "
        f"± {summary.classes[0].acceptance.half_width:.5f}",
    )
    assert sim_acc == pytest.approx(analysis.call_acceptance(), rel=0.04)
