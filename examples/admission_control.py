"""Protecting revenue with admission control (trunk reservation).

The paper's Table 2 shows cheap bursty traffic eroding total revenue by
displacing valuable connections (negative shadow value).  The classic
operational remedy is to *reserve headroom*: reject cheap requests
whenever accepting one would push the total occupancy above a
threshold, keeping those pairs available for the valuable class.

Thresholded admission breaks the product form, so this example solves
the modified Markov chain exactly (``repro.extensions.admission``) and
cross-checks one point with the discrete-event simulator.  It then
sweeps the threshold to find the revenue-optimal reservation level.

Run:  python examples/admission_control.py
"""

from __future__ import annotations

from repro import TrafficClass
from repro.core.state import SwitchDimensions
from repro.extensions import (
    OccupancyThresholdPolicy,
    policy_call_acceptance,
    solve_with_admission,
    sweep_threshold,
)
from repro.reporting import format_table
from repro.sim import run_replications

DIMS = SwitchDimensions(4, 4)
CLASSES = [
    TrafficClass.poisson(0.25, weight=5.0, name="gold"),
    TrafficClass.poisson(0.25, weight=0.1, name="bronze"),
]


def main() -> None:
    records = sweep_threshold(DIMS, CLASSES, restricted=1)
    rows = [
        [
            rec["threshold"],
            rec["revenue"],
            rec["concurrencies"][0],
            rec["concurrencies"][1],
            rec["acceptance_restricted"],
        ]
        for rec in records
    ]
    print(
        format_table(
            ["bronze cap", "W", "E[gold]", "E[bronze]",
             "bronze acceptance"],
            rows,
            precision=5,
            title=f"Reservation sweep on {DIMS} "
                  "(gold w=5.0, bronze w=0.1, equal loads)",
        )
    )
    best = max(records, key=lambda rec: rec["revenue"])
    unrestricted = records[-1]
    gain = best["revenue"] / unrestricted["revenue"] - 1.0
    print(
        f"\noptimal bronze cap = {best['threshold']} pairs: revenue "
        f"{best['revenue']:.5f} vs {unrestricted['revenue']:.5f} "
        f"unrestricted ({gain:+.2%})."
    )

    # Cross-check the optimal point against the simulator.
    thresholds = [DIMS.capacity, best["threshold"]]
    policy = OccupancyThresholdPolicy(tuple(thresholds))
    dist = solve_with_admission(DIMS, CLASSES, policy)
    summary = run_replications(
        DIMS, CLASSES, horizon=3000.0, warmup=300.0, replications=4,
        seed=11, admission_thresholds=thresholds,
    )
    print("\nsimulation cross-check at the optimum:")
    for r, cls in enumerate(CLASSES):
        print(
            f"  {cls.name:>6}: acceptance sim="
            f"{summary.classes[r].acceptance.estimate:.4f} vs "
            f"chain={policy_call_acceptance(dist, policy, r):.4f}; "
            f"E sim={summary.classes[r].concurrency.estimate:.4f} vs "
            f"chain={dist.concurrency(r):.4f}"
        )
    print(
        "\ntrunk reservation converts the paper's negative shadow value "
        "into recovered revenue — the policy extension its Section 4 "
        "economics point toward."
    )


if __name__ == "__main__":
    main()
