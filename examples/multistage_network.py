"""Multistage all-optical networks: the paper's Section 8 extension.

Chains several asynchronous crossbars in tandem (an all-optical circuit
holds one input/output pair at *every* stage for its duration, since
light cannot be buffered between stages) and compares:

* the **reduced-load fixed point** (Erlang fixed point, Kelly-style) —
  each stage solved exactly with the paper's Algorithm 1 under loads
  thinned by the other stages' blocking;
* **exact discrete-event simulation** of the simultaneous-holding
  circuit.

The gap between them is the independence approximation's bias: with
simultaneous holding, stage occupancies are perfectly correlated, so
assuming independence *overstates* end-to-end blocking — increasingly
with load and stage count.

Run:  python examples/multistage_network.py
"""

from __future__ import annotations

from repro import TrafficClass
from repro.multistage import TandemNetwork, analyze_tandem, simulate_tandem
from repro.reporting import format_table

STAGE_SIZE = 6
CLASSES = [TrafficClass.poisson(0.02, name="circuit")]


def main() -> None:
    rows = []
    for stages in (1, 2, 3, 4):
        network = TandemNetwork.square(stages, STAGE_SIZE)
        analysis = analyze_tandem(network, CLASSES)
        sim = simulate_tandem(
            network, CLASSES, horizon=3000.0, warmup=300.0,
            replications=4, seed=17,
        )
        rows.append(
            [
                stages,
                analysis.stage_blocking[0][0],
                analysis.end_to_end_blocking(0),
                1.0 - sim.acceptance[0].estimate,
                sim.acceptance[0].half_width,
                analysis.iterations,
            ]
        )
    print(
        format_table(
            ["stages", "per-stage B (fixed pt)", "end-to-end B (fixed pt)",
             "end-to-end B (sim)", "sim CI±", "iterations"],
            rows,
            precision=4,
            title=f"Tandem of {STAGE_SIZE}x{STAGE_SIZE} asynchronous "
                  f"crossbars",
        )
    )
    print(
        "\nsingle stage: fixed point == exact model (sanity anchor)."
        "\nmore stages: the reduced-load approximation is pessimistic —"
        "\nsimultaneous holding correlates the stages, so a circuit that"
        "\nclears stage 1 has better-than-independent odds downstream."
    )


if __name__ == "__main__":
    main()
