"""Dimensioning an optical crossbar for a blocking target.

The design question behind the paper's Figure 4: how large must the
switch be to carry a given community of traffic at, say, 1% blocking —
and how much more fabric does *wide* (``a = 2``) traffic cost than
narrow traffic at the same total load?

This example:

1. binary-searches the smallest ``N`` meeting a blocking target for a
   fixed total offered load spread over the fabric;
2. repeats for an ``a = 2`` class at matched load, quantifying the
   multi-rate penalty;
3. shows the Figure 4 effect directly: at equal ``N`` and total load,
   the wide class blocks an order of magnitude more.

Run:  python examples/switch_dimensioning.py
"""

from __future__ import annotations

import math

from repro import CrossbarModel, TrafficClass, solve_convolution
from repro.core.state import SwitchDimensions
from repro.reporting import format_table
from repro.workloads import find_size_for_blocking

TOTAL_LOAD = 0.5  # offered connection-holding load (erlangs), fabric-wide
TARGET = 0.01


def narrow_classes(n: int) -> list[TrafficClass]:
    """Total load spread uniformly over the n^2 pairs, a = 1."""
    return [TrafficClass.poisson(TOTAL_LOAD / n**2, name="narrow")]


def wide_classes(n: int) -> list[TrafficClass]:
    """Same holding load carried by a = 2 connections.

    Each wide connection occupies two pairs, so half as many
    connections carry the same pair-load; requests address ordered
    pairs of inputs/outputs, P(n,2)^2 combinations.
    """
    per_tuple = (TOTAL_LOAD / 2.0) / (math.perm(n, 2) ** 2)
    return [TrafficClass.poisson(per_tuple, a=2, name="wide")]


def main() -> None:
    n_narrow = find_size_for_blocking(narrow_classes, TARGET, n_max=256)
    n_wide = find_size_for_blocking(wide_classes, TARGET, n_max=256)

    rows = []
    for label, n, builder in (
        ("a=1", n_narrow, narrow_classes),
        ("a=2", n_wide, wide_classes),
    ):
        dims = SwitchDimensions.square(n)
        solution = solve_convolution(dims, builder(n))
        rows.append(
            [label, n, n * n, solution.blocking(0), solution.utilization()]
        )
    print(
        format_table(
            ["class", "N needed", "crosspoints", "blocking", "utilization"],
            rows,
            precision=4,
            title=f"Smallest NxN for <= {TARGET:.0%} blocking at "
                  f"{TOTAL_LOAD} erlangs total",
        )
    )
    extra = rows[1][2] / rows[0][2]
    print(
        f"\nwide (a=2) traffic needs {extra:.2f}x the crosspoints of "
        f"narrow traffic at the same load and target — the contention "
        f"cost the paper's Figure 4 quantifies.\n"
    )

    # Figure-4 style comparison at fixed N:
    n = max(n_narrow, 8)
    comparison = []
    for label, builder in (("a=1", narrow_classes), ("a=2", wide_classes)):
        model = CrossbarModel.square(n, builder(n))
        comparison.append([label, model.solve().blocking(0)])
    print(
        format_table(
            ["class", f"blocking at N={n}"],
            comparison,
            precision=4,
            title="Same fabric, same total load: the multi-rate penalty",
        )
    )


if __name__ == "__main__":
    main()
