"""Transient behaviour: how fast does the switch reach steady state?

The paper analyzes steady state only; the CTMC substrate adds transient
analysis by uniformization.  This example starts from an empty crossbar
(e.g. right after (re)configuration of an optical interconnect) and
tracks the blocking probability over time until it converges to the
product-form stationary value — answering "how long after a traffic
change are the steady-state formulas valid?", which also calibrates the
simulator's warm-up period.

Run:  python examples/transient_warmup.py
"""

from __future__ import annotations

import math

from repro import TrafficClass, solve_convolution
from repro.core.state import SwitchDimensions, permutation
from repro.ctmc import time_to_stationarity, transient_distribution
from repro.reporting import format_table

DIMS = SwitchDimensions(5, 5)
CLASSES = [
    TrafficClass.poisson(0.15, name="data"),
    TrafficClass(alpha=0.05, beta=0.25, name="video"),
]


def blocking_at(t: float) -> float:
    """Time-t probability that a specific input/output pair is busy."""
    dist = transient_distribution(DIMS, CLASSES, t=t)
    full = permutation(DIMS.n1, 1) * permutation(DIMS.n2, 1)
    acceptance = 0.0
    for state, p in dist.items():
        used = sum(k * c.a for k, c in zip(state, CLASSES))
        acceptance += (
            p
            * permutation(DIMS.n1 - used, 1)
            * permutation(DIMS.n2 - used, 1)
            / full
        )
    return 1.0 - acceptance


def main() -> None:
    stationary = solve_convolution(DIMS, CLASSES).blocking(0)
    rows = []
    for t in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        b = blocking_at(t)
        rows.append([t, b, b / stationary if stationary else math.nan])
    print(
        format_table(
            ["t (holding times)", "blocking(t)", "fraction of stationary"],
            rows,
            precision=4,
            title=f"Transient blocking from an empty {DIMS} crossbar "
                  f"(stationary = {stationary:.5f})",
        )
    )
    t_eps = time_to_stationarity(DIMS, CLASSES, epsilon=1e-4, horizon=200.0)
    print(
        f"\n||pi(t) - pi||_1 < 1e-4 after t = {t_eps:.2f} mean holding "
        f"times: steady-state formulas apply within a few call "
        f"durations, and simulator warm-ups beyond ~{math.ceil(t_eps)} "
        f"holding times are safe."
    )

    traffic_surge()


def traffic_surge() -> None:
    """A light -> surge -> light profile via piecewise analysis."""
    from repro.ctmc import TrafficSchedule, blocking_profile

    light = (TrafficClass.poisson(0.05, name="light"),)
    surge = (TrafficClass.poisson(0.5, name="surge"),)
    schedule = TrafficSchedule.build(
        [(20.0, light), (20.0, surge), (20.0, light)]
    )
    profile = blocking_profile(
        DIMS, schedule, checkpoints_per_segment=4
    )
    print("\ntraffic surge profile (blocking over time):")
    print(
        format_table(
            ["t", "blocking"],
            [[t, b] for t, b in profile],
            precision=4,
        )
    )
    print(
        "blocking tracks the surge with a lag of a few holding times "
        "and relaxes back symmetrically — the transient counterpart of "
        "the paper's stationary analysis."
    )


if __name__ == "__main__":
    main()
