"""Is BPP a good stand-in for real bursty traffic?  (Paper §1 premise.)

The paper models burstiness with the Bernoulli-Poisson-Pascal family,
citing the classical result that peaky traffic is well-approximated by
matching its first two moments (Wilkinson, Delbrouck).  This example
puts that premise under test:

1. generate *genuinely* bursty traffic — a two-phase Markov-modulated
   Poisson process (MMPP) whose rate flips between a high and a low
   level;
2. drive the simulated crossbar with it (ground truth);
3. predict the acceptance with (a) the paper's analytical model fed by
   the moment-matched BPP surrogate, and (b) a Poisson model that only
   matches the mean;
4. repeat while slowing the modulation, which raises the peakedness.

Run:  python examples/bursty_traffic_fidelity.py
"""

from __future__ import annotations

from repro import TrafficClass, solve_convolution
from repro.core.state import SwitchDimensions
from repro.reporting import format_table
from repro.sim.mmpp import (
    Mmpp2,
    MmppCrossbarSimulator,
    bpp_surrogate_class,
    infinite_server_moments,
)
from repro.sim.stats import t_confidence_interval

N = 8
DIMS = SwitchDimensions.square(N)


def simulated_acceptance(mm: Mmpp2, seed: int = 300) -> tuple[float, float]:
    ratios = []
    for i in range(5):
        sim = MmppCrossbarSimulator(DIMS, mm, seed=seed + i)
        ratio, _ = sim.run(horizon=2500.0, warmup=250.0)
        ratios.append(ratio.ratio)
    ci = t_confidence_interval(ratios)
    return ci.estimate, ci.half_width


def main() -> None:
    rows = []
    for label, switching in (
        ("fast", 2.0), ("moderate", 0.8), ("slow", 0.2),
    ):
        mm = Mmpp2(rate1=3.0, rate2=0.5, r12=switching, r21=switching)
        mean, z = infinite_server_moments(mm)
        simulated, half = simulated_acceptance(mm)
        bpp = solve_convolution(
            DIMS, [bpp_surrogate_class(DIMS, mm)]
        ).call_acceptance(0)
        poisson = solve_convolution(
            DIMS, [TrafficClass.poisson(mm.mean_rate / N**2)]
        ).call_acceptance(0)
        rows.append(
            [label, round(z, 3), f"{simulated:.4f}±{half:.4f}",
             bpp, abs(bpp - simulated),
             poisson, abs(poisson - simulated)]
        )
    print(
        format_table(
            ["modulation", "Z", "accept (MMPP sim)", "BPP model",
             "BPP err", "Poisson model", "Poisson err"],
            rows,
            precision=4,
            title=f"Two-moment (BPP) vs one-moment (Poisson) surrogates, "
                  f"{DIMS} crossbar",
        )
    )
    print(
        "\nthe BPP surrogate tracks the bursty ground truth better than "
        "the mean-only model at every modulation speed — the premise "
        "behind the paper's traffic family — while both drift as phases "
        "become long compared to holding times (two-moment matching "
        "cannot see the correlation time)."
    )


if __name__ == "__main__":
    main()
