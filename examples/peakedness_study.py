"""How burstiness and hot spots degrade an optical crossbar.

Two studies beyond the paper's figures:

1. **Peakedness sweep** — hold the mean offered occupancy constant and
   sweep the Z-factor from smooth (0.5) through Poisson (1.0) to very
   peaky (4.0), watching blocking climb.  This isolates *variance* as
   the cause of the Figure 2 effect: same mean, different burstiness.
2. **Hot-spot simulation** — skew the output-selection distribution so
   one output draws an increasing multiple of the others' traffic (the
   companion model of Pinsky & Stirpe [28]), and measure the blocking
   penalty by simulation.

Run:  python examples/peakedness_study.py
"""

from __future__ import annotations

from repro import TrafficClass, solve_convolution
from repro.core.state import SwitchDimensions
from repro.reporting import format_table
from repro.sim import run_hot_spot

N = 16
MEAN_OCCUPANCY = 0.4  # per-pair infinite-server mean, held constant


def peakedness_sweep() -> None:
    rows = []
    # Smooth Z values are chosen so the implied Bernoulli source count
    # M/(1-Z) is an integer (0.8 -> 2 sources, 0.9 -> 4 sources).
    for z in (0.8, 0.9, 1.0, 1.5, 2.0, 3.0, 4.0):
        cls = TrafficClass.from_moments(
            MEAN_OCCUPANCY, peakedness=z, mu=1.0, name=f"z={z}"
        )
        dims = SwitchDimensions.square(N)
        solution = solve_convolution(dims, [cls])
        rows.append(
            [z, cls.kind, solution.blocking(0),
             solution.call_congestion(0), solution.utilization()]
        )
    print(
        format_table(
            ["Z-factor", "kind", "blocking", "call congestion",
             "utilization"],
            rows,
            precision=5,
            title=f"Same mean load ({MEAN_OCCUPANCY}/pair), varying "
                  f"peakedness, {N}x{N} crossbar",
        )
    )
    blockings = [row[2] for row in rows]
    assert all(b >= a - 1e-12 for a, b in zip(blockings, blockings[1:]))
    print(
        "\nblocking is monotone in the Z-factor at constant mean: "
        "variance alone drives the Figure 2 degradation.\n"
    )


def hot_spot_sweep() -> None:
    from repro.extensions import solve_hot_spot

    dims = SwitchDimensions.square(8)
    classes = [TrafficClass.poisson(0.02, name="p")]
    rows = []
    for factor in (1.0, 2.0, 4.0, 8.0):
        chain = solve_hot_spot(dims, classes[0], factor=factor)
        summary = run_hot_spot(
            dims, classes, factor=factor, horizon=2500.0, warmup=250.0,
            replications=4, seed=3,
        )
        acc = summary.classes[0].acceptance
        rows.append(
            [factor, chain.blocking(), 1.0 - acc.estimate,
             acc.half_width, chain.hot_request_blocking(),
             chain.cold_request_blocking()]
        )
    uniform = solve_convolution(dims, classes).blocking(0)
    print(
        format_table(
            ["factor", "blocking (chain)", "blocking (sim)", "CI±",
             "hot-request B", "cold-request B"],
            rows,
            precision=4,
            title="Hot-spot degradation: exact lumped chain vs "
                  "simulation (factor 1 = the paper's uniform model)",
        )
    )
    print(
        f"\nuniform product-form blocking for reference: {uniform:.4f}"
    )
    print(
        "a single popular output concentrates contention on one column "
        "of the crossbar; the exact chain (companion analysis [28]) "
        "quantifies it per request type, and the simulator confirms it."
    )


def main() -> None:
    peakedness_sweep()
    hot_spot_sweep()


if __name__ == "__main__":
    main()
