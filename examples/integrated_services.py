"""Integrated multi-rate services and revenue planning (paper §1, §4).

The paper's motivating scenario: a future all-optical switch carrying
voice, interactive data, and video, each with different bandwidth
requirements (``a_r`` input/output pairs per connection), burstiness
and value.  This example answers the operator's question: *which class
should we grow, and what does bursty low-value traffic cost us?*

It reproduces Section 4's economics on a concrete mix:

* shadow cost ``Delta W`` of each class (revenue displaced per accept),
* marginal value ``w_r - Delta W`` (grow the class iff positive),
* the gradients ``dW/d rho_r`` and ``dW/d (beta_r/mu_r)``.

Run:  python examples/integrated_services.py
"""

from __future__ import annotations

from repro import (
    CrossbarModel,
    TrafficClass,
    gradient_burstiness,
    gradient_rho,
    marginal_value,
    shadow_cost,
)
from repro.reporting import format_table

N = 24


def build_mix() -> list[TrafficClass]:
    # voice: smooth (finite sources), cheap, one pair per call
    voice = TrafficClass.bernoulli(
        sources=40, per_source_rate=0.0004, mu=1.0, weight=0.3,
        name="voice",
    )
    # data: Poisson, moderate value
    data = TrafficClass.poisson(0.012, mu=2.0, weight=1.0, name="data")
    # video: peaky and wide — two pairs per connection, high value,
    # long holding times.  Note the per-tuple rates are tiny: an a=2
    # class is offered over P(N,2)^2 ordered port tuples.
    video = TrafficClass(
        alpha=1.2e-6, beta=1e-6, mu=0.25, a=2, weight=8.0, name="video"
    )
    return [voice, data, video]


def main() -> None:
    classes = build_mix()
    model = CrossbarModel.square(N, classes)
    solution = model.solve()

    print(solution.summary())
    print()

    rows = []
    for r, cls in enumerate(classes):
        grad_rho = gradient_rho(model.dims, classes, r, step=1e-7)
        grad_beta = (
            gradient_burstiness(model.dims, classes, r, step=1e-7)
            if cls.is_bursty
            else None
        )
        rows.append(
            [
                cls.name,
                cls.kind,
                cls.a,
                solution.blocking(r),
                shadow_cost(solution, r),
                marginal_value(solution, r),
                grad_rho,
                grad_beta,
            ]
        )
    print(
        format_table(
            ["class", "kind", "a", "blocking", "shadow cost",
             "marginal value", "dW/drho", "dW/d(beta/mu)"],
            rows,
            precision=4,
            title=f"Revenue economics on a {N}x{N} crossbar "
                  f"(W = {solution.revenue():.4f})",
        )
    )

    print()
    best = max(
        range(len(classes)), key=lambda r: marginal_value(solution, r)
    )
    worst = min(
        range(len(classes)), key=lambda r: marginal_value(solution, r)
    )
    best_value = marginal_value(solution, best)
    if best_value > 0:
        print(
            f"grow '{classes[best].name}' first: each accepted "
            f"connection nets {best_value:+.4f} in revenue."
        )
    else:
        print(
            f"no class is worth growing at this operating point — the "
            f"switch is saturated with value; even the best candidate "
            f"('{classes[best].name}') nets {best_value:+.4f} per accept."
        )
    if marginal_value(solution, worst) < 0:
        print(
            f"'{classes[worst].name}' is revenue-negative at this load "
            f"({marginal_value(solution, worst):+.4f} per accept): it "
            f"displaces more valuable traffic — the paper's shadow-cost "
            f"interpretation in action."
        )


if __name__ == "__main__":
    main()
