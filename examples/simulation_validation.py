"""Validating the analytical model by discrete-event simulation.

The paper's Section 8 lists "comparing our analytical results with
simulation" as future work — this example is that comparison.  It runs
replicated simulations of a crossbar under a Poisson + Pascal mix and
checks three things:

1. simulated acceptance ratios match the analytical *call* acceptance
   (which for bursty classes differs from the time-average ratio
   ``B_r`` — arrivals are state-correlated);
2. simulated concurrencies match ``E_r``;
3. **insensitivity**: replacing the exponential holding time with
   deterministic or hyperexponential laws of the same mean leaves the
   measures unchanged (Section 2's claim, via Burman/Lehoczky/Lim).

Run:  python examples/simulation_validation.py
"""

from __future__ import annotations

from repro import TrafficClass, solve_convolution
from repro.core.state import SwitchDimensions
from repro.reporting import format_table
from repro.sim import (
    Deterministic,
    Exponential,
    HyperExponential,
    compare_with_analysis,
    run_replications,
)

DIMS = SwitchDimensions(6, 6)
CLASSES = [
    TrafficClass.poisson(0.10, name="poisson"),
    TrafficClass(alpha=0.03, beta=0.25, name="pascal"),
]


def main() -> None:
    solution = solve_convolution(DIMS, CLASSES)
    summary = run_replications(
        DIMS, CLASSES, horizon=4000.0, warmup=400.0,
        replications=6, seed=7,
    )
    report = compare_with_analysis(summary, CLASSES, solution)

    rows = []
    for entry in report["classes"]:
        rows.append(
            [
                entry["name"],
                f"{entry['acceptance_sim'].estimate:.5f} "
                f"±{entry['acceptance_sim'].half_width:.5f}",
                f"{entry['acceptance_analytical']:.5f}",
                "yes" if entry["acceptance_covered"] else "NO",
                f"{entry['concurrency_sim'].estimate:.4f}",
                f"{entry['concurrency_analytical']:.4f}",
            ]
        )
    print(
        format_table(
            ["class", "accept (sim, 95% CI)", "accept (analysis)",
             "covered", "E (sim)", "E (analysis)"],
            rows,
            title=f"Simulation vs analysis, {DIMS}, "
                  f"{summary.replications} replications",
        )
    )
    print(
        f"\noccupancy: sim {report['occupancy_sim'].estimate:.4f} "
        f"±{report['occupancy_sim'].half_width:.4f}  vs  analytical "
        f"{report['occupancy_analytical']:.4f}"
    )

    # --- insensitivity ------------------------------------------------
    print("\ninsensitivity check (class 'poisson' acceptance):")
    laws = {
        "exponential": [Exponential(1.0), Exponential(1.0)],
        "deterministic": [Deterministic(1.0), Deterministic(1.0)],
        "hyperexp (SCV~5)": [
            HyperExponential(1.0, p=0.1),
            HyperExponential(1.0, p=0.1),
        ],
    }
    rows = []
    for name, services in laws.items():
        s = run_replications(
            DIMS, CLASSES, horizon=3000.0, warmup=300.0,
            replications=4, seed=11, services=services,
        )
        rows.append(
            [name, s.classes[0].acceptance.estimate,
             solution.call_acceptance(0)]
        )
    print(
        format_table(
            ["holding-time law", "accept (sim)", "accept (analysis)"],
            rows,
            precision=5,
        )
    )
    print(
        "\nall laws land on the same acceptance: the stationary "
        "distribution depends on the holding time only through its "
        "mean, exactly as the paper asserts."
    )


if __name__ == "__main__":
    main()
