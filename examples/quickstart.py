"""Quickstart: model an optical crossbar and read off its performance.

Builds a 32x32 asynchronous crossbar carrying two traffic classes —
smooth interactive data and peaky video — solves it exactly with
Algorithm 1, and prints every headline measure of the paper: blocking
probability, concurrency, throughput, utilization and revenue.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CrossbarModel, TrafficClass


def main() -> None:
    # Traffic is specified per (input, output) pair; `from_moments`
    # picks the BPP (alpha, beta) matching a target mean occupancy and
    # peakedness (Z-factor): Z < 1 smooth, Z = 1 Poisson, Z > 1 peaky.
    # Z = 0.75 with mean 0.5 implies a 2-source Bernoulli class
    # (smooth traffic needs an integer source count).
    data = TrafficClass.from_moments(
        mean=0.5, peakedness=0.75, mu=1.0, name="data"
    )
    # Wide (a = 2) classes are offered one stream per ordered tuple of
    # 2 inputs x 2 outputs (~1M tuples on a 32x32 switch), so per-tuple
    # rates are tiny; this choice carries ~2.5 concurrent video calls.
    video = TrafficClass(
        alpha=5e-7, beta=2e-8, mu=0.2, a=2, weight=5.0, name="video"
    )

    model = CrossbarModel.square(32, [data, video])
    print(f"switch: {model.dims}, state space: {model.state_space_size} states")
    for cls in model.classes:
        print(f"  {cls.describe()}")

    solution = model.solve()  # Algorithm 1, log domain
    print()
    print(solution.summary())

    print()
    print("per-class detail:")
    for r, cls in enumerate(model.classes):
        print(
            f"  {cls.name:>6}: blocking={solution.blocking(r):.6f}  "
            f"call congestion={solution.call_congestion(r):.6f}  "
            f"E[{cls.name} connections]={solution.concurrency(r):.4f}"
        )

    # Cross-check against exact rational arithmetic (zero rounding
    # error) — every solver in the library agrees:
    exact = model.solve(method="exact")
    drift = abs(exact.blocking(0) - solution.blocking(0))
    print(f"\nAlgorithm 1 vs exact-rational blocking difference: {drift:.2e}")

    # Algorithm 2 (mean value analysis) matches too, but its D-chain is
    # numerically unstable for strongly *smooth* traffic on large
    # switches — the library detects that and says so:
    from repro import ComputationError

    try:
        model.solve(method="mva")
    except ComputationError as exc:
        print(f"\nAlgorithm 2 declined (as designed): {exc}")


if __name__ == "__main__":
    main()
