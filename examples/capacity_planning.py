"""Capacity planning for very large optical fabrics.

The exact algorithms cost O(N^2); for planning sweeps over fabrics with
thousands of ports the library provides an O(1) large-system fixed
point (`repro.core.asymptotic`).  This example:

1. sweeps switch sizes from 64 to 4096 ports, comparing the asymptotic
   blocking against the exact value where the exact solve is still
   cheap — the error shrinks like 1/N;
2. uses the second-moment machinery (`repro.core.moments`) to report
   not just the mean occupancy but its variance and the carried
   peakedness of a bursty class — what a dimensioning engineer needs
   for headroom decisions.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import TrafficClass, solve_asymptotic, solve_convolution
from repro.core.moments import (
    carried_peakedness,
    concurrency_variance,
    occupancy_variance,
)
from repro.core.state import SwitchDimensions
from repro.reporting import format_table

ALPHA_TILDE = 0.0024  # the paper's ~0.5%-blocking operating point
BETA_TILDE = 0.0006


def classes_for(n: int) -> list[TrafficClass]:
    return [
        TrafficClass.from_aggregate(ALPHA_TILDE, 0.0, n2=n, name="data"),
        TrafficClass.from_aggregate(
            ALPHA_TILDE, BETA_TILDE, n2=n, name="video"
        ),
    ]


def size_sweep() -> None:
    rows = []
    for n in (64, 128, 256, 512, 1024, 2048, 4096):
        dims = SwitchDimensions.square(n)
        classes = classes_for(n)
        approx = solve_asymptotic(dims, classes)
        if n <= 512:
            exact = solve_convolution(dims, classes).blocking(0)
        else:
            exact = None  # O(N^2) left to the approximation's regime
        rows.append(
            [n, exact, approx.blocking(0), approx.utilization(),
             approx.iterations]
        )
    print(
        format_table(
            ["N", "blocking (exact)", "blocking (O(1) approx)",
             "utilization", "bisection steps"],
            rows,
            precision=5,
            title="Size sweep at the paper's operating point "
                  f"(alpha~={ALPHA_TILDE}, beta~={BETA_TILDE})",
        )
    )
    print(
        "\nthe asymptotic fixed point tracks the exact solver to <1% "
        "beyond N=128 at constant cost — use it for fleet-level sweeps, "
        "the exact algorithms for the final design point.\n"
    )


def headroom_report(n: int = 128) -> None:
    dims = SwitchDimensions.square(n)
    classes = classes_for(n)
    solution = solve_convolution(dims, classes)
    rows = []
    for r, cls in enumerate(classes):
        mean = solution.concurrency(r)
        var = concurrency_variance(dims, classes, r)
        rows.append(
            [cls.name, mean, var, var**0.5,
             carried_peakedness(dims, classes, r)]
        )
    print(
        format_table(
            ["class", "E[k]", "Var(k)", "std", "carried Z"],
            rows,
            precision=4,
            title=f"Occupancy headroom on {dims} "
                  f"(occupancy Var={occupancy_variance(dims, classes):.4f})",
        )
    )
    print(
        "\ncarried peakedness stays near the offered Z at this light "
        "blocking: provision headroom for bursty classes using the "
        "variance, not just the mean."
    )


def main() -> None:
    size_sweep()
    headroom_report()


if __name__ == "__main__":
    main()
