"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` requires bdist_wheel; on a machine without wheel,
run `python setup.py develop` instead.  All metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
