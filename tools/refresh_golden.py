"""Regenerate (or drift-check) the golden snapshots under tests/golden/.

Refresh ONLY after a deliberate scenario change, then review the diff:

    python tools/refresh_golden.py

To see what *would* change without touching the corpus (exit 1 on
drift, with the worst offender per curve located):

    python tools/refresh_golden.py --check
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.verify.corpus import GoldenCorpus, figure_record
from repro.workloads import figure1, figure2, figure3, figure4
from repro.workloads.kernel_edges import kernel_edges_record

DEFAULT_ROOT = Path(__file__).parent.parent / "tests" / "golden"

#: Builders return either a FigureSeries (wrapped by figure_record) or
#: a ready corpus record dict (the kernel-edge cases).
BUILDERS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "kernel_edges": kernel_edges_record,
}


def build_record(builder) -> dict:
    built = builder()
    return built if isinstance(built, dict) else figure_record(built)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="report drift against the stored corpus instead of rewriting",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=DEFAULT_ROOT,
        help=f"corpus directory (default: {DEFAULT_ROOT})",
    )
    args = parser.parse_args(argv)

    corpus = GoldenCorpus(args.root)
    drifted = False
    for name, builder in BUILDERS.items():
        record = build_record(builder)
        if args.check:
            drifts = corpus.diff(name, record)
            if drifts:
                drifted = True
                for drift in drifts:
                    print(drift.describe())
            else:
                print(f"{name}: no drift")
        else:
            path = corpus.store(
                name, record, generator=f"tools/refresh_golden.py::{name}"
            )
            print(f"refreshed {path}")
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main())
