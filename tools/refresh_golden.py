"""Regenerate the golden figure snapshots under tests/golden/.

Run ONLY after a deliberate scenario change, then review the diff:

    python tools/refresh_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workloads import figure1, figure2, figure3, figure4

GOLDEN_DIR = Path(__file__).parent.parent / "tests" / "golden"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    builders = {
        "figure1": figure1,
        "figure2": figure2,
        "figure3": figure3,
        "figure4": figure4,
    }
    for name, builder in builders.items():
        figure = builder()
        record = {
            "x": list(figure.x_values),
            "curves": {c.label: list(c.values) for c in figure.curves},
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(record, indent=1) + "\n")
        print(f"refreshed {path}")


if __name__ == "__main__":
    main()
