#!/usr/bin/env python3
"""End-to-end smoke drill for the sharded multi-worker cluster.

Boots a 4-worker fleet in-process (fork-per-worker supervisor, shared
disk cache, hash sharding), exercises it over the real wire, and
asserts:

* **Fleet map** — `/cluster` shows 4 live workers on distinct pids
  and ports.
* **Shard routing** — every request lands on the shard its canonical
  cache key hashes to (`X-Shard` header vs a client-side ring), and
  repeats stay there.
* **Byte identity** — every worker answers every request with the
  same solution bytes (provenance stripped), equal to the local
  ``repro.api.solve`` answer.
* **Respawn** — a SIGKILLed worker is respawned into the same shard
  slot and keeps answering its keys identically.
* **Load harness** — a short closed-loop ``repro.loadgen`` run with
  client-side direct sharding completes with zero transport errors
  and touches only real shards.
* **Metrics federation** — the router's `/metrics` carries samples
  labeled for every shard.
* **Clean shutdown** — the supervisor drains and joins.

With ``--chaos`` the drill instead boots a 3-worker fleet and runs a
seeded :class:`repro.engine.chaos.ClusterFaultPlan` (every worker
SIGKILLed twice at seed-drawn instants, plus a stall and a shared-
cache corruption) while client threads hammer the router, asserting:
no dropped or hung client calls, only 200/503 on the wire with a
bounded 503 fraction, byte-identical successes, full fleet recovery,
and zero leaked admission tokens afterwards.

Exit code 0 on success, 1 on any violation.  CI runs this under
``timeout`` so a hang fails the job instead of stalling the runner.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import SolveRequest, solve  # noqa: E402
from repro.core.traffic import TrafficClass  # noqa: E402
from repro.loadgen import UNSHARDED, LoadSpec, run_load  # noqa: E402
from repro.service import (  # noqa: E402
    ClusterConfig,
    ServiceClient,
    ServiceConfig,
    start_cluster_in_thread,
)
from repro.service.protocol import (  # noqa: E402
    decode_result,
    encode_result,
)
from repro.service.sharding import HashRing  # noqa: E402

WORKERS = 4


def point_request(n: int) -> SolveRequest:
    return SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        ],
    )


REQUESTS = [point_request(n) for n in (4, 5, 6, 8, 10, 12)]


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    if not condition:
        failures.append(label)


def solution_bytes(fragment: dict) -> str:
    """Encoded result minus provenance (``from_cache`` differs between
    a warmed owner and a cold peer; the answer must not)."""
    record = dict(fragment)
    record.pop("from_cache", None)
    return json.dumps(record, sort_keys=True)


def wire_solve(host: str, port: int, request: SolveRequest,
               timeout: float = 30.0):
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST", "/solve",
            body=json.dumps({"request": request.to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        raw = response.read()
        shard = response.getheader("X-Shard")
        return (
            response.status,
            int(shard) if shard is not None else None,
            json.loads(raw.decode()),
        )
    finally:
        connection.close()


def chaos_main() -> int:
    """The ``--chaos`` drill: a seeded fault storm against 3 workers."""
    from repro.engine.chaos import ClusterFaultInjector, ClusterFaultPlan

    failures: list[str] = []
    workers = 3
    requests = REQUESTS[:4]
    local = {
        r.cache_key: solution_bytes(encode_result(solve(r)))
        for r in requests
    }
    plan = ClusterFaultPlan.from_seed(
        42, workers, kills_per_shard=2, stalls=1, corruptions=1,
        horizon=5.0, stall_duration=0.4,
    )
    print(
        f"chaos plan: {len(plan.faults)} faults over "
        f"{plan.horizon:.1f}s, kills {plan.kills_per_shard()}"
    )

    with tempfile.TemporaryDirectory(prefix="cluster-chaos-") as cache:
        config = ServiceConfig(
            port=0,
            cluster=ClusterConfig(
                workers=workers, cache_dir=cache,
                health_interval=0.05,
                respawn_backoff_base=0.05, respawn_backoff_cap=0.3,
                flap_window=0.3, flap_threshold=3, flap_cooldown=0.4,
                proxy_timeout=5.0, max_respawns=10,
            ),
        )
        with start_cluster_in_thread(config) as handle:
            client = ServiceClient(*handle.address)
            for request in requests:  # warm every path first
                status, _, _ = wire_solve(*handle.address, request)
                if status != 200:
                    failures.append("warmup solve failed")

            print("storm")
            injector = ClusterFaultInjector(plan)
            storm = threading.Thread(
                target=injector.run, args=(handle,), name="chaos-storm"
            )
            outcomes: list[tuple[str, int, str | None]] = []
            dropped: list[str] = []
            lock = threading.Lock()
            stop = threading.Event()

            def hammer(offset: int) -> None:
                i = offset
                while not stop.is_set():
                    request = requests[i % len(requests)]
                    i += 1
                    try:
                        status, _, envelope = wire_solve(
                            *handle.address, request, timeout=20.0
                        )
                    except Exception as exc:  # noqa: BLE001
                        with lock:
                            dropped.append(type(exc).__name__)
                        continue
                    body = (
                        solution_bytes(envelope["result"])
                        if status == 200 else None
                    )
                    with lock:
                        outcomes.append((request.cache_key, status, body))

            threads = [
                threading.Thread(target=hammer, args=(n,), daemon=True)
                for n in range(4)
            ]
            storm.start()
            for thread in threads:
                thread.start()
            storm.join(plan.horizon + 60.0)
            check(not storm.is_alive(), "injector completed", failures)
            time.sleep(0.5)
            stop.set()
            hung = 0
            for thread in threads:
                thread.join(30.0)
                hung += 1 if thread.is_alive() else 0

            check(
                len(injector.fired) == len(plan.faults),
                f"all {len(plan.faults)} faults fired", failures,
            )
            check(hung == 0, "zero hung client threads", failures)
            check(
                not dropped,
                f"zero dropped connections (saw {dropped[:5]})",
                failures,
            )
            statuses = {status for _, status, _ in outcomes}
            check(
                statuses <= {200, 503},
                f"only 200/503 on the wire (saw {sorted(statuses)})",
                failures,
            )
            total = len(outcomes)
            rejected = sum(1 for _, s, _ in outcomes if s == 503)
            check(total > 0, "traffic flowed during the storm", failures)
            check(
                total > 0 and rejected / total < 0.2,
                f"503 fraction bounded ({rejected}/{total})", failures,
            )
            identical = all(
                body == local[key]
                for key, status, body in outcomes
                if status == 200
            )
            check(identical, "successes byte-identical", failures)

            print("recovery")
            deadline = time.monotonic() + 60.0
            healed = False
            chart: dict = {}
            while time.monotonic() < deadline:
                chart = client.cluster_map(refresh=True)
                if all(
                    e["state"] == "live" for e in chart["shards"]
                ):
                    healed = True
                    break
                time.sleep(0.1)
            check(healed, "fleet fully recovered", failures)
            check(
                not chart.get("dead_shards"),
                "no shard declared dead", failures,
            )
            respawns = {
                e["shard"]: e["respawns"] for e in chart["shards"]
            }
            check(
                all(count >= 1 for count in respawns.values()),
                f"every shard respawned ({respawns})", failures,
            )
            leaked = 0.0
            for shard in range(workers):
                leaked += client.metric_value(
                    "repro_service_gate_tokens",
                    shard=str(shard), state="in_use",
                )
            check(
                leaked == 0.0,
                "zero leaked admission tokens", failures,
            )
            after_ok = all(
                wire_solve(*handle.address, request)[0] == 200
                for request in requests
            )
            check(after_ok, "fleet serves after the storm", failures)

    if failures:
        print(f"\nFAILED ({len(failures)}): " + "; ".join(failures))
        return 1
    print("\nall cluster chaos checks passed")
    return 0


def main() -> int:
    failures: list[str] = []
    local = {r.cache_key: solve(r) for r in REQUESTS}

    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as cache:
        config = ServiceConfig(
            port=0,
            cluster=ClusterConfig(
                workers=WORKERS, cache_dir=cache, health_interval=0.2
            ),
        )
        with start_cluster_in_thread(config) as handle:
            client = ServiceClient(*handle.address)

            print("fleet map")
            chart = client.cluster_map()
            check(chart is not None, "router serves /cluster", failures)
            check(
                chart["workers"] == WORKERS
                and len(chart["shards"]) == WORKERS,
                f"{WORKERS} shards in the map", failures,
            )
            check(
                all(entry["alive"] for entry in chart["shards"]),
                "every worker alive", failures,
            )
            check(
                len({e["pid"] for e in chart["shards"]}) == WORKERS
                and len({e["port"] for e in chart["shards"]}) == WORKERS,
                "distinct pids and ports", failures,
            )

            print("shard routing + byte identity")
            ring = HashRing(chart["workers"], chart["hash_replicas"])
            addresses = [
                (e["host"], e["port"]) for e in chart["shards"]
            ]
            routed_ok = identical = True
            for request in REQUESTS:
                status, shard, _ = wire_solve(*handle.address, request)
                routed_ok &= status == 200
                routed_ok &= shard == ring.shard_for(request.cache_key)
                _, again, _ = wire_solve(*handle.address, request)
                routed_ok &= again == shard
                fragments = set()
                for address in addresses:
                    status, _, envelope = wire_solve(*address, request)
                    identical &= status == 200
                    fragments.add(solution_bytes(envelope["result"]))
                    identical &= (
                        decode_result(envelope["result"])
                        == local[request.cache_key]
                    )
                identical &= len(fragments) == 1
            check(routed_ok, "keys route to their ring shard", failures)
            check(
                identical,
                "all workers byte-identical to the local solve",
                failures,
            )

            print("respawn inherits the shard")
            victim_request = REQUESTS[0]
            owner = ring.shard_for(victim_request.cache_key)
            _, _, envelope = wire_solve(*handle.address, victim_request)
            expected = solution_bytes(envelope["result"])
            victim = next(
                e for e in chart["shards"] if e["shard"] == owner
            )
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            respawned = False
            while time.monotonic() < deadline:
                chart = client.cluster_map(refresh=True)
                entry = next(
                    e for e in chart["shards"] if e["shard"] == owner
                )
                if (
                    entry["alive"]
                    and entry["pid"] != victim["pid"]
                    and entry["port"]
                ):
                    respawned = True
                    break
                time.sleep(0.1)
            check(respawned, "dead worker respawned", failures)
            status, shard, envelope = wire_solve(
                *handle.address, victim_request
            )
            check(
                (status, shard) == (200, owner),
                "respawned worker owns the same keys", failures,
            )
            check(
                solution_bytes(envelope["result"]) == expected,
                "respawned worker answers identically", failures,
            )

            print("load harness (direct sharding)")
            spec = LoadSpec(
                generators=1, connections=16, duration=1.5,
                mode="closed", warmup=1, timeout=15.0,
            )
            report = run_load(spec, *handle.address)
            check(report.errors == 0, "zero transport errors", failures)
            check(report.completed > 0, "requests completed", failures)
            check(
                report.per_shard
                and UNSHARDED not in report.per_shard,
                "every reply tagged with a real shard", failures,
            )

            print("metrics federation")
            page = client.metrics()
            check(
                all(
                    f'shard="{i}"' in page for i in range(WORKERS)
                ),
                "every shard labeled on /metrics", failures,
            )
            check(
                "repro_cluster_proxied_total" in page
                and "repro_service_requests_total" in page,
                "router + worker series federated", failures,
            )

        print("clean shutdown")
        check(True, "supervisor drained and joined", failures)

    if failures:
        print(f"\nFAILED ({len(failures)}): " + "; ".join(failures))
        return 1
    print("\nall cluster smoke checks passed")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the seeded fleet-level fault storm instead of the "
             "routing/identity drill",
    )
    arguments = parser.parse_args()
    sys.exit(chaos_main() if arguments.chaos else main())
