#!/usr/bin/env python3
"""End-to-end smoke drill for the sharded multi-worker cluster.

Boots a 4-worker fleet in-process (fork-per-worker supervisor, shared
disk cache, hash sharding), exercises it over the real wire, and
asserts:

* **Fleet map** — `/cluster` shows 4 live workers on distinct pids
  and ports.
* **Shard routing** — every request lands on the shard its canonical
  cache key hashes to (`X-Shard` header vs a client-side ring), and
  repeats stay there.
* **Byte identity** — every worker answers every request with the
  same solution bytes (provenance stripped), equal to the local
  ``repro.api.solve`` answer.
* **Respawn** — a SIGKILLed worker is respawned into the same shard
  slot and keeps answering its keys identically.
* **Load harness** — a short closed-loop ``repro.loadgen`` run with
  client-side direct sharding completes with zero transport errors
  and touches only real shards.
* **Metrics federation** — the router's `/metrics` carries samples
  labeled for every shard.
* **Clean shutdown** — the supervisor drains and joins.

Exit code 0 on success, 1 on any violation.  CI runs this under
``timeout`` so a hang fails the job instead of stalling the runner.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import time
from http.client import HTTPConnection
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import SolveRequest, solve  # noqa: E402
from repro.core.traffic import TrafficClass  # noqa: E402
from repro.loadgen import UNSHARDED, LoadSpec, run_load  # noqa: E402
from repro.service import (  # noqa: E402
    ClusterConfig,
    ServiceClient,
    ServiceConfig,
    start_cluster_in_thread,
)
from repro.service.protocol import decode_result  # noqa: E402
from repro.service.sharding import HashRing  # noqa: E402

WORKERS = 4


def point_request(n: int) -> SolveRequest:
    return SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        ],
    )


REQUESTS = [point_request(n) for n in (4, 5, 6, 8, 10, 12)]


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    if not condition:
        failures.append(label)


def solution_bytes(fragment: dict) -> str:
    """Encoded result minus provenance (``from_cache`` differs between
    a warmed owner and a cold peer; the answer must not)."""
    record = dict(fragment)
    record.pop("from_cache", None)
    return json.dumps(record, sort_keys=True)


def wire_solve(host: str, port: int, request: SolveRequest):
    connection = HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST", "/solve",
            body=json.dumps({"request": request.to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        raw = response.read()
        shard = response.getheader("X-Shard")
        return (
            response.status,
            int(shard) if shard is not None else None,
            json.loads(raw.decode()),
        )
    finally:
        connection.close()


def main() -> int:
    failures: list[str] = []
    local = {r.cache_key: solve(r) for r in REQUESTS}

    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as cache:
        config = ServiceConfig(
            port=0,
            cluster=ClusterConfig(
                workers=WORKERS, cache_dir=cache, health_interval=0.2
            ),
        )
        with start_cluster_in_thread(config) as handle:
            client = ServiceClient(*handle.address)

            print("fleet map")
            chart = client.cluster_map()
            check(chart is not None, "router serves /cluster", failures)
            check(
                chart["workers"] == WORKERS
                and len(chart["shards"]) == WORKERS,
                f"{WORKERS} shards in the map", failures,
            )
            check(
                all(entry["alive"] for entry in chart["shards"]),
                "every worker alive", failures,
            )
            check(
                len({e["pid"] for e in chart["shards"]}) == WORKERS
                and len({e["port"] for e in chart["shards"]}) == WORKERS,
                "distinct pids and ports", failures,
            )

            print("shard routing + byte identity")
            ring = HashRing(chart["workers"], chart["hash_replicas"])
            addresses = [
                (e["host"], e["port"]) for e in chart["shards"]
            ]
            routed_ok = identical = True
            for request in REQUESTS:
                status, shard, _ = wire_solve(*handle.address, request)
                routed_ok &= status == 200
                routed_ok &= shard == ring.shard_for(request.cache_key)
                _, again, _ = wire_solve(*handle.address, request)
                routed_ok &= again == shard
                fragments = set()
                for address in addresses:
                    status, _, envelope = wire_solve(*address, request)
                    identical &= status == 200
                    fragments.add(solution_bytes(envelope["result"]))
                    identical &= (
                        decode_result(envelope["result"])
                        == local[request.cache_key]
                    )
                identical &= len(fragments) == 1
            check(routed_ok, "keys route to their ring shard", failures)
            check(
                identical,
                "all workers byte-identical to the local solve",
                failures,
            )

            print("respawn inherits the shard")
            victim_request = REQUESTS[0]
            owner = ring.shard_for(victim_request.cache_key)
            _, _, envelope = wire_solve(*handle.address, victim_request)
            expected = solution_bytes(envelope["result"])
            victim = next(
                e for e in chart["shards"] if e["shard"] == owner
            )
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            respawned = False
            while time.monotonic() < deadline:
                chart = client.cluster_map(refresh=True)
                entry = next(
                    e for e in chart["shards"] if e["shard"] == owner
                )
                if (
                    entry["alive"]
                    and entry["pid"] != victim["pid"]
                    and entry["port"]
                ):
                    respawned = True
                    break
                time.sleep(0.1)
            check(respawned, "dead worker respawned", failures)
            status, shard, envelope = wire_solve(
                *handle.address, victim_request
            )
            check(
                (status, shard) == (200, owner),
                "respawned worker owns the same keys", failures,
            )
            check(
                solution_bytes(envelope["result"]) == expected,
                "respawned worker answers identically", failures,
            )

            print("load harness (direct sharding)")
            spec = LoadSpec(
                generators=1, connections=16, duration=1.5,
                mode="closed", warmup=1, timeout=15.0,
            )
            report = run_load(spec, *handle.address)
            check(report.errors == 0, "zero transport errors", failures)
            check(report.completed > 0, "requests completed", failures)
            check(
                report.per_shard
                and UNSHARDED not in report.per_shard,
                "every reply tagged with a real shard", failures,
            )

            print("metrics federation")
            page = client.metrics()
            check(
                all(
                    f'shard="{i}"' in page for i in range(WORKERS)
                ),
                "every shard labeled on /metrics", failures,
            )
            check(
                "repro_cluster_proxied_total" in page
                and "repro_service_requests_total" in page,
                "router + worker series federated", failures,
            )

        print("clean shutdown")
        check(True, "supervisor drained and joined", failures)

    if failures:
        print(f"\nFAILED ({len(failures)}): " + "; ".join(failures))
        return 1
    print("\nall cluster smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
