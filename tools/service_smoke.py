#!/usr/bin/env python3
"""End-to-end smoke drill for the solve-serving daemon.

Starts a daemon in-process, fires ~200 concurrent mixed requests at
it from a thread pool (point solves, repeats that must coalesce or
hit cache, `/batch` sweeps, a deliberate overload burst against a
second small-gate daemon), and asserts:

* **Determinism** — every response for a given request is byte-equal
  (``float.hex``) to the local ``repro.api.solve`` answer: zero
  non-deterministic results across all concurrency.
* **Coalescing happened** — nonzero coalesce hits (the workload
  guarantees racing identical requests).
* **Admission held** — the overload drill never exceeds its gate
  bound, clears the excess with structured 503s, and the metrics
  ratio equals the observed count exactly.
* **Clean shutdown** — both daemons stop and join; the process exits.

Exit code 0 on success, 1 on any violation.  CI runs this under
``timeout`` so a hang fails the job instead of stalling the runner.
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import SolveRequest, solve  # noqa: E402
from repro.core.traffic import TrafficClass  # noqa: E402
from repro.engine import BatchSolver, EngineConfig  # noqa: E402
from repro.service import (  # noqa: E402
    AdmissionRejectedError,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)

POINT_SIZES = (4, 5, 6, 8, 10, 12)
REPEAT_FANOUT = 10  # concurrent callers per hot request


def point_request(n: int) -> SolveRequest:
    return SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.002, mu=1.0, a=2,
                         name="burst"),
        ],
    )


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    if not condition:
        failures.append(label)


def main() -> int:
    failures: list[str] = []
    locals_by_key = {
        r.cache_key: solve(r) for r in map(point_request, POINT_SIZES)
    }

    print("service smoke: main daemon (gate 256)")
    # Gate sized above the drill's worst-case concurrent weight (the
    # overload behaviour has its own dedicated daemon below).
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=256, batch_window=0.02),
        engine=BatchSolver(EngineConfig()),
    )
    client = ServiceClient(*handle.address)
    mismatches = []

    def one_point(n: int) -> None:
        request = point_request(n)
        result = client.solve(request)
        if result != locals_by_key[request.cache_key]:
            mismatches.append(f"point n={n}")

    def one_sweep(_index: int) -> None:
        requests = [point_request(n) for n in POINT_SIZES[:4]]
        for request, result in zip(requests,
                                   client.solve_many(requests)):
            if result != locals_by_key[request.cache_key]:
                mismatches.append(f"sweep member {request.dims}")

    # ~200 requests: 6 sizes x 10 racing repeats (guaranteed identical
    # concurrent requests), 20 sweeps of 4 members, 60 mixed repeats.
    with ThreadPoolExecutor(max_workers=32) as pool:
        futures = []
        for n in POINT_SIZES:
            futures += [pool.submit(one_point, n)
                        for _ in range(REPEAT_FANOUT)]
        futures += [pool.submit(one_sweep, i) for i in range(20)]
        futures += [pool.submit(one_point, POINT_SIZES[i % 6])
                    for i in range(60)]
        for future in futures:
            future.result()

    total = 6 * REPEAT_FANOUT + 20 * 4 + 60
    print(f"  drove {total} requests over "
          f"{len(POINT_SIZES)} distinct models")
    check(not mismatches,
          f"zero non-deterministic results ({len(mismatches)} mismatches)",
          failures)
    hits = handle.service.flights.hits
    check(hits > 0, f"nonzero coalesce hits ({hits})", failures)
    check(handle.service.gate.in_use == 0,
          "all gate tokens released", failures)
    page = client.metrics()
    check("repro_service_requests_total" in page
          and "repro_engine_breaker_state" in page,
          "metrics page renders", failures)
    handle.stop()
    check(not handle.thread.is_alive(), "clean shutdown (main)", failures)

    print("service smoke: overload daemon (gate 2, 60ms holds)")
    small = start_in_thread(
        ServiceConfig(port=0, gate_capacity=2, batch_window=0.001,
                      min_hold=0.06),
        engine=BatchSolver(EngineConfig()),
    )
    small_client = ServiceClient(*small.address)
    hot = point_request(4)
    small_client.solve(hot)  # warm: holds become ~min_hold
    admitted = rejected = 0

    def overload_call(_index: int) -> None:
        nonlocal admitted, rejected
        try:
            result = small_client.solve(hot)
        except AdmissionRejectedError as exc:
            rejected += 1
            assert exc.retry_after > 0.0
        else:
            admitted += 1
            if result != locals_by_key[hot.cache_key]:
                mismatches.append("overload result")

    with ThreadPoolExecutor(max_workers=16) as pool:
        list(pool.map(overload_call, range(16)))
    check(admitted + rejected == 16 and rejected > 0,
          f"overload cleared with 503s ({admitted} admitted, "
          f"{rejected} rejected)", failures)
    gate = small.service.gate
    check(gate.peak_in_use <= 2,
          f"admission bound held (peak {gate.peak_in_use} <= 2)",
          failures)
    ratio = small_client.metric_value(
        "repro_service_admission_blocking_ratio"
    )
    check(ratio == gate.rejected / gate.offered,
          "metrics blocking ratio exact", failures)
    check(not mismatches, "overload results deterministic", failures)
    small.stop()
    check(not small.thread.is_alive(), "clean shutdown (overload)",
          failures)

    if failures:
        print(f"service smoke: FAILED ({len(failures)} checks)")
        return 1
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
