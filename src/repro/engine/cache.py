"""Solve caches: a thread-safe LRU plus an optional on-disk JSON store.

The memory cache is a plain LRU over canonical request keys.  The disk
cache stores one JSON file per key under a directory, making cached
sweeps survive process restarts and shareable between machines.  Disk
entries are self-describing — each records the schema version and the
full (un-hashed) key it was stored under — so corruption and staleness
are *detectable*, not silent:

* an unparseable or structurally wrong file raises
  :class:`CacheCorruptionError` in strict mode (default: the entry is
  quarantined — deleted — and treated as a miss);
* a version bump or a key mismatch (e.g. a digest collision, or a file
  copied from an incompatible cache) raises :class:`StaleCacheKeyError`
  in strict mode (default: miss + quarantine).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from ..exceptions import ComputationError
from ..logging import get_logger, kv
from .keys import key_digest

__all__ = [
    "CacheCorruptionError",
    "StaleCacheKeyError",
    "LRUCache",
    "DiskCache",
]

logger = get_logger("engine.cache")

#: Version of the on-disk entry envelope; bump to invalidate old caches.
DISK_CACHE_VERSION = 1


class CacheCorruptionError(ComputationError):
    """An on-disk cache entry could not be parsed or is malformed."""


class StaleCacheKeyError(ComputationError):
    """An on-disk cache entry exists but belongs to a different key or
    an incompatible cache version."""


class LRUCache:
    """A small thread-safe least-recently-used mapping."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ComputationError(f"LRU maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data


class DiskCache:
    """One-JSON-file-per-key persistent store for solve results.

    Values are stored and returned as JSON-compatible dicts; the engine
    owns the conversion to/from :class:`~repro.api.SolveResult`.
    """

    def __init__(self, directory: str | Path, strict: bool = False) -> None:
        self.directory = Path(directory)
        self.strict = strict
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key_digest(key)}.json"

    # ------------------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None on a miss.

        Raise/quarantine behavior for bad entries follows ``strict``
        (see the module docstring).
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            return self._reject(
                path,
                CacheCorruptionError(
                    f"cache entry {path.name} unreadable: {exc}"
                ),
            )
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            return self._reject(
                path,
                CacheCorruptionError(
                    f"cache entry {path.name} is not valid JSON: {exc}"
                ),
            )
        if not isinstance(envelope, dict) or "payload" not in envelope:
            return self._reject(
                path,
                CacheCorruptionError(
                    f"cache entry {path.name} has no payload envelope"
                ),
            )
        if envelope.get("version") != DISK_CACHE_VERSION:
            return self._reject(
                path,
                StaleCacheKeyError(
                    f"cache entry {path.name} has version "
                    f"{envelope.get('version')!r}, expected "
                    f"{DISK_CACHE_VERSION}"
                ),
            )
        if envelope.get("key") != key:
            return self._reject(
                path,
                StaleCacheKeyError(
                    f"cache entry {path.name} was stored for a different "
                    f"key (digest collision or copied cache)"
                ),
            )
        return envelope["payload"]

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        envelope = {
            "version": DISK_CACHE_VERSION,
            "key": key,
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(envelope))
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleters
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    # ------------------------------------------------------------------

    def _reject(self, path: Path, error: ComputationError) -> None:
        """Raise in strict mode; otherwise quarantine and miss."""
        if self.strict:
            raise error
        logger.warning(
            "quarantining bad cache entry %s",
            kv(path=str(path), reason=type(error).__name__),
        )
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
        return None


def load_or_compute(
    disk: DiskCache | None,
    key: str,
    compute: Callable[[], dict],
) -> tuple[dict, bool]:
    """Convenience: disk lookup falling back to ``compute`` + store.

    Returns ``(payload, was_hit)``.
    """
    if disk is not None:
        payload = disk.load(key)
        if payload is not None:
            return payload, True
    payload = compute()
    if disk is not None:
        disk.store(key, payload)
    return payload, False
