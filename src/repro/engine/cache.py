"""Solve caches: a thread-safe LRU plus an optional on-disk JSON store.

The memory cache is a plain LRU over canonical request keys.  The disk
cache stores one JSON file per key under a directory, making cached
sweeps survive process restarts and shareable between machines.  Disk
entries are self-describing — each records the schema version and the
full (un-hashed) key it was stored under — so corruption and staleness
are *detectable*, not silent:

* an unparseable or structurally wrong file raises
  :class:`CacheCorruptionError` in strict mode (default: the entry is
  quarantined — deleted — and treated as a miss);
* a version bump or a key mismatch (e.g. a digest collision, or a file
  copied from an incompatible cache) raises :class:`StaleCacheKeyError`
  in strict mode (default: miss + quarantine).

I/O failures are a different animal from corruption: a full disk or a
yanked mount is *transient infrastructure*, not bad data.  The disk
cache therefore distinguishes the two: ``OSError`` during a read or
write is counted against an optional
:class:`~repro.engine.breaker.CircuitBreaker` (after enough
consecutive failures the cache goes memory-only, with half-open
probes) and the entry is *not* quarantined; a failed write is logged
and swallowed — persistence is an optimization, never a correctness
requirement.

Writes are atomic (``tmp`` file + ``rename``), but a worker dying
mid-write can orphan its ``<digest>.tmp-<pid>`` file; stale tmp files
older than ``stale_tmp_age`` seconds are swept when the cache opens.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from ..exceptions import ComputationError
from ..logging import get_logger, kv
from .keys import key_digest

if TYPE_CHECKING:  # pragma: no cover
    from .breaker import CircuitBreaker

__all__ = [
    "CacheCorruptionError",
    "StaleCacheKeyError",
    "LRUCache",
    "DiskCache",
]

logger = get_logger("engine.cache")

#: Version of the on-disk entry envelope; bump to invalidate old caches.
DISK_CACHE_VERSION = 1

#: Default age (seconds) after which an orphaned ``.tmp-<pid>`` file —
#: left behind by a writer that died mid-store — is swept at cache
#: open.  Generous enough that no live writer's tmp file is ever this
#: old (writes are sub-second).
STALE_TMP_AGE = 600.0


class CacheCorruptionError(ComputationError):
    """An on-disk cache entry could not be parsed or is malformed."""


class StaleCacheKeyError(ComputationError):
    """An on-disk cache entry exists but belongs to a different key or
    an incompatible cache version."""


class LRUCache:
    """A small thread-safe least-recently-used mapping."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ComputationError(f"LRU maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data


class DiskCache:
    """One-JSON-file-per-key persistent store for solve results.

    Values are stored and returned as JSON-compatible dicts; the engine
    owns the conversion to/from :class:`~repro.api.SolveResult`.

    Parameters
    ----------
    directory, strict:
        As before: where entries live, and whether corrupt/stale
        entries raise instead of being quarantined.
    breaker:
        Optional :class:`~repro.engine.breaker.CircuitBreaker`; when
        given, ``OSError`` during reads/writes counts against it and an
        open breaker short-circuits all disk I/O (every lookup is a
        miss, every store a no-op) until a half-open probe succeeds.
    fault_hook:
        Optional chaos hook called as ``fault_hook(op, key, path)``
        before each ``"load"``/``"store"``; it may raise ``OSError``
        (denied I/O) or corrupt the entry file.  See
        :mod:`repro.engine.chaos`.
    stale_tmp_age:
        Orphaned ``.tmp-<pid>`` files older than this many seconds are
        deleted when the cache opens.
    """

    def __init__(
        self,
        directory: str | Path,
        strict: bool = False,
        breaker: "CircuitBreaker | None" = None,
        fault_hook: Callable[[str, str, Path], None] | None = None,
        stale_tmp_age: float = STALE_TMP_AGE,
    ) -> None:
        self.directory = Path(directory)
        self.strict = strict
        self.breaker = breaker
        self.fault_hook = fault_hook
        self.stale_tmp_age = stale_tmp_age
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_tmp()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key_digest(key)}.json"

    # ------------------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None on a miss.

        Raise/quarantine behavior for bad entries follows ``strict``
        (see the module docstring).  With an open circuit breaker the
        call is a miss without touching the disk at all.
        """
        if self.breaker is not None and not self.breaker.allow():
            return None
        path = self.path_for(key)
        try:
            if self.fault_hook is not None:
                self.fault_hook("load", key, path)
            text = path.read_text()
        except FileNotFoundError:
            self._io_ok()
            return None
        except OSError as exc:
            return self._io_failure("load", key, exc)
        self._io_ok()
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            return self._reject(
                path,
                CacheCorruptionError(
                    f"cache entry {path.name} is not valid JSON: {exc}"
                ),
            )
        if not isinstance(envelope, dict) or "payload" not in envelope:
            return self._reject(
                path,
                CacheCorruptionError(
                    f"cache entry {path.name} has no payload envelope"
                ),
            )
        if envelope.get("version") != DISK_CACHE_VERSION:
            return self._reject(
                path,
                StaleCacheKeyError(
                    f"cache entry {path.name} has version "
                    f"{envelope.get('version')!r}, expected "
                    f"{DISK_CACHE_VERSION}"
                ),
            )
        if envelope.get("key") != key:
            return self._reject(
                path,
                StaleCacheKeyError(
                    f"cache entry {path.name} was stored for a different "
                    f"key (digest collision or copied cache)"
                ),
            )
        return envelope["payload"]

    def store(self, key: str, payload: dict) -> bool:
        """Atomically persist ``payload`` under ``key``.

        Returns True when the entry hit the disk.  An ``OSError``
        (including a chaos denial) is counted against the breaker,
        logged, and swallowed — the engine keeps serving from memory.
        An open breaker skips the write outright.
        """
        if self.breaker is not None and not self.breaker.allow():
            return False
        path = self.path_for(key)
        envelope = {
            "version": DISK_CACHE_VERSION,
            "key": key,
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            if self.fault_hook is not None:
                self.fault_hook("store", key, path)
            tmp.write_text(json.dumps(envelope))
            tmp.replace(path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            self._io_failure("store", key, exc)
            return False
        self._io_ok()
        return True

    def sweep_stale_tmp(self) -> int:
        """Delete orphaned ``.tmp-<pid>`` files; returns the count.

        A worker that dies between ``tmp.write_text`` and the atomic
        rename leaves its tmp file behind forever.  Only files older
        than ``stale_tmp_age`` are touched, so a concurrent live
        writer's in-flight tmp file is never yanked out from under it.
        """
        cutoff = time.time() - self.stale_tmp_age
        removed = 0
        for tmp in self.directory.glob("*.tmp-*"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - racing sweepers
                pass
        if removed:
            logger.info(
                "swept stale cache tmp files %s",
                kv(directory=str(self.directory), removed=removed),
            )
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleters
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    # ------------------------------------------------------------------

    def _io_ok(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _io_failure(self, op: str, key: str, exc: OSError) -> None:
        """Count a transient I/O failure; miss (load) / no-op (store)."""
        if self.breaker is not None:
            self.breaker.record_failure(f"{op}: {type(exc).__name__}")
        logger.warning(
            "disk cache %s failed %s",
            op,
            kv(key=key[:60], error=f"{type(exc).__name__}: {exc}"),
        )
        return None

    def _reject(self, path: Path, error: ComputationError) -> None:
        """Raise in strict mode; otherwise quarantine and miss."""
        if self.strict:
            raise error
        logger.warning(
            "quarantining bad cache entry %s",
            kv(path=str(path), reason=type(error).__name__),
        )
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
        return None


def load_or_compute(
    disk: DiskCache | None,
    key: str,
    compute: Callable[[], dict],
) -> tuple[dict, bool]:
    """Convenience: disk lookup falling back to ``compute`` + store.

    Returns ``(payload, was_hit)``.
    """
    if disk is not None:
        payload = disk.load(key)
        if payload is not None:
            return payload, True
    payload = compute()
    if disk is not None:
        disk.store(key, payload)
    return payload, False
