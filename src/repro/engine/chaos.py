"""Deterministic, seed-driven fault injection for the batch engine.

The resilience claims of :mod:`repro.engine.batch` — worker-crash
recovery, per-task deadlines, retry, the cache circuit breaker — are
only trustworthy if they can be *exercised on demand*.  This module is
the chaos harness: a :class:`FaultPlan` describes exactly which task
(or cache operation) fails, how, and on which attempt, and the batch
and cache layers consult it through two hooks:

* ``EngineConfig.chaos`` — the plan rides into pool workers (it is a
  small frozen, picklable dataclass) and
  :meth:`FaultPlan.apply_task` fires task faults;
* ``DiskCache.fault_hook`` — a :class:`CacheFaultInjector` built from
  the same plan fires cache faults (deny = transient ``OSError``,
  corrupt = scribble over the entry before the read).

Fault kinds
-----------
``kill-worker``
    The worker process exits hard (``os._exit``) mid-task, breaking
    the process pool; applied in-process (serial batches) it raises
    :class:`WorkerKilledError` instead, so the supervisor sees the
    same retryable failure without killing the interpreter.
``delay``
    The task sleeps ``duration`` seconds before solving — long enough
    to blow a per-task deadline or trigger a hedge.
``transient-error``
    The task raises ``OSError`` (retryable) on the targeted attempt.
``cache-deny``
    The next ``count`` matching cache operations raise ``OSError``
    (this is what trips the circuit breaker).
``cache-corrupt``
    The entry file is overwritten with garbage just before the cache
    touches it; the normal corruption path (quarantine/strict raise)
    takes over from there.

Plans are deterministic: :meth:`FaultPlan.from_seed` derives victims
from a seed via :class:`random.Random`, and everything else is data.
Because every solve is a pure function of its request, a recovered run
is *byte-identical* to a fault-free run — the property the chaos tests
assert.

Two sibling harnesses share the same determinism contract:
:class:`ServiceFaultPlan` fires wire-level faults against one serving
daemon (stalled sockets, mid-request disconnects, killed flushes), and
:class:`ClusterFaultPlan` fires fleet-level faults against a whole
worker cluster (SIGKILL mid-request, SIGSTOP stalls, refused
connections, shared-cache corruption, crash-looping slots).
"""

from __future__ import annotations

import os
import random
import signal as signal_mod
import socket
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..exceptions import ConfigurationError

__all__ = [
    "ALL_ATTEMPTS",
    "CacheFaultInjector",
    "ChaosFault",
    "ClusterFault",
    "ClusterFaultInjector",
    "ClusterFaultPlan",
    "FaultPlan",
    "ServiceFault",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "WorkerKilledError",
    "corrupt_entry",
    "corrupt_shared_cache",
    "KIND_KILL",
    "KIND_DELAY",
    "KIND_ERROR",
    "KIND_CACHE_DENY",
    "KIND_CACHE_CORRUPT",
    "KIND_CLIENT_STALL",
    "KIND_CLIENT_DISCONNECT",
    "KIND_ENGINE_DELAY",
    "KIND_ENGINE_ERROR",
    "KIND_BREAKER_OPEN",
    "KIND_WORKER_KILL",
    "KIND_WORKER_STALL",
    "KIND_WORKER_REFUSE",
    "KIND_SHARED_CACHE_CORRUPT",
    "KIND_CRASH_LOOP",
]

KIND_KILL = "kill-worker"
KIND_DELAY = "delay"
KIND_ERROR = "transient-error"
KIND_CACHE_DENY = "cache-deny"
KIND_CACHE_CORRUPT = "cache-corrupt"

_TASK_KINDS = (KIND_KILL, KIND_DELAY, KIND_ERROR)
_CACHE_KINDS = (KIND_CACHE_DENY, KIND_CACHE_CORRUPT)

#: Sentinel attempt number meaning "fire on every attempt" (a
#: permanently failing task, not a transient hiccup).
ALL_ATTEMPTS = -1

#: Exit status of a chaos-killed pool worker (visible in core dumps /
#: process tables; any nonzero value breaks the pool identically).
KILL_EXIT_STATUS = 77

GARBAGE = "{chaos corrupted this entry"


class WorkerKilledError(OSError):
    """In-process stand-in for a hard worker death (serial batches)."""


@dataclass(frozen=True)
class ChaosFault:
    """One planned fault.

    Task faults (``kill-worker``/``delay``/``transient-error``) target
    a batch ``task`` index and an ``attempt`` number
    (:data:`ALL_ATTEMPTS` = every attempt).  Cache faults
    (``cache-deny``/``cache-corrupt``) target an operation (``"load"``,
    ``"store"``, or ``""`` for both) and optionally a specific ``key``
    (``""`` = any key), firing at most ``count`` times.
    """

    kind: str
    task: int = -1
    attempt: int = 0
    duration: float = 0.0
    op: str = ""
    key: str = ""
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _TASK_KINDS + _CACHE_KINDS:
            raise ConfigurationError(
                f"unknown chaos fault kind {self.kind!r}; expected one of "
                f"{_TASK_KINDS + _CACHE_KINDS}"
            )

    def matches_task(self, task: int, attempt: int) -> bool:
        return (
            self.kind in _TASK_KINDS
            and self.task == task
            and (self.attempt == ALL_ATTEMPTS or self.attempt == attempt)
        )

    def matches_cache(self, op: str, key: str) -> bool:
        return (
            self.kind in _CACHE_KINDS
            and (not self.op or self.op == op)
            and (not self.key or self.key == key)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults for one (or more) batch runs."""

    faults: tuple[ChaosFault, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def task_faults(self) -> tuple[ChaosFault, ...]:
        return tuple(f for f in self.faults if f.kind in _TASK_KINDS)

    @property
    def cache_faults(self) -> tuple[ChaosFault, ...]:
        return tuple(f for f in self.faults if f.kind in _CACHE_KINDS)

    def task_fault(self, task: int, attempt: int) -> ChaosFault | None:
        """The first fault targeting (task, attempt), or None."""
        for fault in self.faults:
            if fault.matches_task(task, attempt):
                return fault
        return None

    def apply_task(self, task: int, attempt: int, in_worker: bool) -> None:
        """Fire the planned fault for this (task, attempt), if any.

        Called at the top of every task attempt — inside the pool
        worker for parallel batches (``in_worker=True``), in the engine
        process for serial ones.  ``kill-worker`` hard-exits a real
        worker but raises :class:`WorkerKilledError` in-process so a
        serial batch survives to supervise it.
        """
        fault = self.task_fault(task, attempt)
        if fault is None:
            return
        if fault.kind == KIND_DELAY:
            time.sleep(fault.duration)
            return
        if fault.kind == KIND_ERROR:
            raise OSError(
                f"chaos: transient error (task {task}, attempt {attempt})"
            )
        # kill-worker
        if in_worker:
            os._exit(KILL_EXIT_STATUS)
        raise WorkerKilledError(
            f"chaos: worker killed (task {task}, attempt {attempt}; "
            "simulated in-process)"
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        tasks: int,
        kills: int = 1,
        delays: int = 0,
        errors: int = 0,
        delay_duration: float = 1.0,
        cache_denies: int = 0,
        attempt: int = 0,
    ) -> "FaultPlan":
        """Derive a plan from a seed: distinct victims, fixed kinds.

        Victim task indices are drawn without replacement by
        ``random.Random(seed)``, so the same seed always produces the
        same plan — the chaos tests' reproducibility contract.
        """
        wanted = kills + delays + errors
        if wanted > tasks:
            raise ConfigurationError(
                f"cannot pick {wanted} distinct victims from {tasks} tasks"
            )
        rng = random.Random(seed)
        victims = rng.sample(range(tasks), k=wanted)
        faults: list[ChaosFault] = []
        cursor = 0
        for kind, n in (
            (KIND_KILL, kills), (KIND_DELAY, delays), (KIND_ERROR, errors)
        ):
            for _ in range(n):
                faults.append(
                    ChaosFault(
                        kind=kind,
                        task=victims[cursor],
                        attempt=attempt,
                        duration=(
                            delay_duration if kind == KIND_DELAY else 0.0
                        ),
                    )
                )
                cursor += 1
        if cache_denies:
            faults.append(
                ChaosFault(kind=KIND_CACHE_DENY, count=cache_denies)
            )
        return cls(faults=tuple(faults), seed=seed)


class CacheFaultInjector:
    """Stateful hook wired into :class:`~repro.engine.cache.DiskCache`.

    Called as ``injector(op, key, path)`` before each disk-cache
    operation; counts down each cache fault's ``count`` budget and
    fires it (deny raises ``OSError``, corrupt scribbles over the
    entry file).  Lives in the engine process only — pool workers never
    touch the parent's disk cache.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining = {
            i: fault.count
            for i, fault in enumerate(plan.faults)
            if fault.kind in _CACHE_KINDS
        }
        #: Faults actually fired, for test assertions.
        self.fired: list[tuple[str, str, str]] = []

    def __call__(self, op: str, key: str, path: Path) -> None:
        for i, fault in enumerate(self.plan.faults):
            if self._remaining.get(i, 0) <= 0:
                continue
            if not fault.matches_cache(op, key):
                continue
            self._remaining[i] -= 1
            self.fired.append((fault.kind, op, key))
            if fault.kind == KIND_CACHE_DENY:
                raise OSError(
                    f"chaos: cache {op} denied (key {key[:40]!r})"
                )
            corrupt_path(path)
            return


def corrupt_path(path: Path) -> None:
    """Overwrite a cache entry file with unparseable garbage."""
    path.write_text(GARBAGE)


def corrupt_entry(disk, key: str) -> Path:
    """Corrupt the on-disk entry for ``key``; returns the file path.

    The file must exist (corrupting a miss would silently test
    nothing).
    """
    path = disk.path_for(key)
    if not path.exists():
        raise ConfigurationError(
            f"no cache entry to corrupt for key {key[:60]!r}"
        )
    corrupt_path(path)
    return path


# ----------------------------------------------------------------------
# Wire-level chaos: faults against the serving daemon
# ----------------------------------------------------------------------

KIND_CLIENT_STALL = "client-stall"
KIND_CLIENT_DISCONNECT = "client-disconnect"
KIND_ENGINE_DELAY = "engine-delay"
KIND_ENGINE_ERROR = "engine-error"
KIND_BREAKER_OPEN = "breaker-open"

_SERVICE_CLIENT_KINDS = (KIND_CLIENT_STALL, KIND_CLIENT_DISCONNECT)
_SERVICE_ENGINE_KINDS = (KIND_ENGINE_DELAY, KIND_ENGINE_ERROR)
_SERVICE_KINDS = (
    _SERVICE_CLIENT_KINDS + _SERVICE_ENGINE_KINDS + (KIND_BREAKER_OPEN,)
)


@dataclass(frozen=True)
class ServiceFault:
    """One planned wire-level fault.

    Engine faults (``engine-delay``/``engine-error``) target a batcher
    ``flush`` index (the n-th flush the daemon runs while the injector
    is wrapped in); client faults (``client-stall``/
    ``client-disconnect``) and ``breaker-open`` are fired explicitly by
    the test driving the injector's socket/breaker helpers.
    """

    kind: str
    flush: int = -1
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _SERVICE_KINDS:
            raise ConfigurationError(
                f"unknown service fault kind {self.kind!r}; expected one "
                f"of {_SERVICE_KINDS}"
            )


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A deterministic set of wire-level faults for one serving run."""

    faults: tuple[ServiceFault, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def engine_fault(self, flush: int) -> ServiceFault | None:
        """The first engine fault targeting this flush index, or None."""
        for fault in self.faults:
            if fault.kind in _SERVICE_ENGINE_KINDS and fault.flush == flush:
                return fault
        return None

    @property
    def client_faults(self) -> tuple[ServiceFault, ...]:
        return tuple(
            f for f in self.faults if f.kind in _SERVICE_CLIENT_KINDS
        )

    @property
    def wants_breaker_open(self) -> bool:
        return any(f.kind == KIND_BREAKER_OPEN for f in self.faults)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        stalls: int = 0,
        disconnects: int = 0,
        engine_delays: int = 0,
        engine_errors: int = 0,
        flushes: int = 8,
        breaker_open: bool = False,
        delay_duration: float = 0.3,
    ) -> "ServiceFaultPlan":
        """Derive a plan from a seed (same contract as ``FaultPlan``).

        Victim flush indices for the engine faults are drawn without
        replacement from ``range(flushes)`` by ``random.Random(seed)``;
        client faults are counts (the test fires them explicitly, one
        socket each).
        """
        wanted = engine_delays + engine_errors
        if wanted > flushes:
            raise ConfigurationError(
                f"cannot pick {wanted} distinct flushes from {flushes}"
            )
        rng = random.Random(seed)
        victims = rng.sample(range(flushes), k=wanted)
        faults: list[ServiceFault] = []
        cursor = 0
        for kind, n in (
            (KIND_ENGINE_DELAY, engine_delays),
            (KIND_ENGINE_ERROR, engine_errors),
        ):
            for _ in range(n):
                faults.append(
                    ServiceFault(
                        kind=kind,
                        flush=victims[cursor],
                        duration=(
                            delay_duration
                            if kind == KIND_ENGINE_DELAY else 0.0
                        ),
                    )
                )
                cursor += 1
        faults.extend(
            ServiceFault(kind=KIND_CLIENT_STALL) for _ in range(stalls)
        )
        faults.extend(
            ServiceFault(kind=KIND_CLIENT_DISCONNECT)
            for _ in range(disconnects)
        )
        if breaker_open:
            faults.append(ServiceFault(kind=KIND_BREAKER_OPEN))
        return cls(faults=tuple(faults), seed=seed)


class ServiceFaultInjector:
    """Drives a :class:`ServiceFaultPlan` against a live daemon.

    Three fault surfaces:

    * **engine** — :meth:`wrap_runner` wraps the daemon's micro-batch
      runner; targeted flushes sleep (``engine-delay``) or die with an
      ``OSError`` (``engine-error``, exercising the batcher's
      respawn-and-requeue supervision) before the real engine runs.
    * **clients** — :meth:`stalled_socket` opens a connection that
      trickles a partial request head and then goes silent (the slow
      loris); :meth:`disconnect_mid_request` sends a complete request
      and slams the connection shut without reading the reply (the
      daemon must still release every admission token).
    * **breaker** — :meth:`force_breaker_open` records failures until
      the disk-cache circuit breaker opens.

    Everything fired is recorded on :attr:`fired` for assertions.
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self._flush_index = 0
        #: ``(kind, detail)`` tuples, in firing order.
        self.fired: list[tuple[str, Any]] = []

    # -- engine surface -------------------------------------------------

    def wrap_runner(
        self, runner: Callable[..., list]
    ) -> Callable[[list, Any], list]:
        """Wrap the daemon's flush runner with the plan's engine faults.

        The wrapper keeps the two-argument ``(requests, task_deadline)``
        shape the micro-batcher probes for.  Flush indices count every
        invocation, including the batcher's supervised requeue — a plan
        targeting consecutive indices therefore kills the retry too.
        """

        def wrapped(requests: list, task_deadline: Any = None) -> list:
            index = self._flush_index
            self._flush_index += 1
            fault = self.plan.engine_fault(index)
            if fault is not None:
                self.fired.append((fault.kind, index))
                if fault.kind == KIND_ENGINE_DELAY:
                    time.sleep(fault.duration)
                else:
                    raise OSError(
                        f"chaos: engine runner killed (flush {index})"
                    )
            return runner(requests, task_deadline)

        return wrapped

    # -- client surface -------------------------------------------------

    def stalled_socket(
        self, host: str, port: int, partial: bytes = b"POST /solve HTTP/1.1\r\n"
    ) -> socket.socket:
        """A slow-loris connection: partial head, then silence.

        Returns the open socket; the caller closes it (or lets the
        daemon's read timeout do so first, which is the point).
        """
        sock = socket.create_connection((host, port), timeout=30.0)
        sock.sendall(partial)
        self.fired.append((KIND_CLIENT_STALL, len(partial)))
        return sock

    def disconnect_mid_request(
        self, host: str, port: int, body: bytes,
        path: str = "/solve",
    ) -> None:
        """Send a full request, then vanish without reading the reply.

        The daemon will finish the solve and fail the write — every
        admission token it granted must still come back.
        """
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        sock = socket.create_connection((host, port), timeout=30.0)
        try:
            sock.sendall(head + body)
            # Hard reset (RST) rather than FIN: the worst-behaved exit.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        finally:
            sock.close()
        self.fired.append((KIND_CLIENT_DISCONNECT, path))

    # -- breaker surface ------------------------------------------------

    def force_breaker_open(self, breaker: Any) -> None:
        """Record failures until the circuit breaker reports open."""
        for _ in range(1000):
            if breaker.state == "open":
                self.fired.append((KIND_BREAKER_OPEN, breaker.state))
                return
            breaker.record_failure("chaos: forced open")
        raise ConfigurationError(
            "breaker did not open after 1000 recorded failures"
        )


# ----------------------------------------------------------------------
# Cluster-level chaos: faults against a whole worker fleet
# ----------------------------------------------------------------------

KIND_WORKER_KILL = "worker-kill"
KIND_WORKER_STALL = "worker-stall"
KIND_WORKER_REFUSE = "worker-refuse"
KIND_SHARED_CACHE_CORRUPT = "shared-cache-corrupt"
KIND_CRASH_LOOP = "crash-loop"

_CLUSTER_KINDS = (
    KIND_WORKER_KILL,
    KIND_WORKER_STALL,
    KIND_WORKER_REFUSE,
    KIND_SHARED_CACHE_CORRUPT,
    KIND_CRASH_LOOP,
)


@dataclass(frozen=True)
class ClusterFault:
    """One planned fleet-level fault.

    ``at`` is the offset (seconds) into the injector run at which the
    fault fires.  ``duration`` is the stall length (``worker-stall``),
    the respawn hold (``worker-refuse``), or the per-respawn wait
    budget (``crash-loop``); ``count`` is the number of consecutive
    kills a ``crash-loop`` lands on the slot.
    """

    kind: str
    shard: int = 0
    at: float = 0.0
    duration: float = 0.5
    count: int = 3

    def __post_init__(self) -> None:
        if self.kind not in _CLUSTER_KINDS:
            raise ConfigurationError(
                f"unknown cluster fault kind {self.kind!r}; expected one "
                f"of {_CLUSTER_KINDS}"
            )
        if self.shard < 0 or self.at < 0 or self.duration < 0 \
                or self.count < 1:
            raise ConfigurationError(
                "cluster fault needs shard/at/duration >= 0 and count >= 1"
            )


@dataclass(frozen=True)
class ClusterFaultPlan:
    """A deterministic storm of fleet-level faults.

    Same contract as the other plans: :meth:`from_seed` derives every
    victim and firing time from one seed, so a chaos run is exactly
    reproducible — and the supervisor's deterministic respawn jitter
    keeps the *recovery* timeline reproducible too.
    """

    faults: tuple[ClusterFault, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "faults",
            tuple(sorted(self.faults, key=lambda f: f.at)),
        )

    @property
    def horizon(self) -> float:
        """Seconds from start until the last fault has fully fired."""
        return max(
            (f.at + f.duration for f in self.faults), default=0.0
        )

    def kills_per_shard(self) -> dict[int, int]:
        """SIGKILLs each shard takes (kills + refusals + loop kills)."""
        counts: dict[int, int] = {}
        for fault in self.faults:
            if fault.kind in (KIND_WORKER_KILL, KIND_WORKER_REFUSE):
                counts[fault.shard] = counts.get(fault.shard, 0) + 1
            elif fault.kind == KIND_CRASH_LOOP:
                counts[fault.shard] = counts.get(fault.shard, 0) \
                    + fault.count
        return counts

    @classmethod
    def from_seed(
        cls,
        seed: int,
        shards: int,
        *,
        kills_per_shard: int = 2,
        stalls: int = 0,
        refusals: int = 0,
        corruptions: int = 0,
        crash_loops: int = 0,
        horizon: float = 3.0,
        stall_duration: float = 0.4,
        refuse_duration: float = 0.5,
        loop_kills: int = 3,
        loop_wait: float = 10.0,
    ) -> "ClusterFaultPlan":
        """Derive a storm from a seed.

        Every shard is SIGKILLed exactly ``kills_per_shard`` times at
        seed-drawn instants in ``[0, horizon)`` — the guarantee the
        acceptance chaos test leans on — and the optional stall /
        refuse / corrupt / crash-loop faults pick seed-drawn victims.
        """
        if shards < 1:
            raise ConfigurationError("a cluster plan needs >= 1 shard")
        rng = random.Random(seed)
        faults: list[ClusterFault] = []
        for shard in range(shards):
            for _ in range(kills_per_shard):
                faults.append(ClusterFault(
                    kind=KIND_WORKER_KILL, shard=shard,
                    at=rng.uniform(0.0, horizon), duration=0.0,
                ))
        for kind, n, duration in (
            (KIND_WORKER_STALL, stalls, stall_duration),
            (KIND_WORKER_REFUSE, refusals, refuse_duration),
            (KIND_SHARED_CACHE_CORRUPT, corruptions, 0.0),
        ):
            for _ in range(n):
                faults.append(ClusterFault(
                    kind=kind, shard=rng.randrange(shards),
                    at=rng.uniform(0.0, horizon), duration=duration,
                ))
        for _ in range(crash_loops):
            faults.append(ClusterFault(
                kind=KIND_CRASH_LOOP, shard=rng.randrange(shards),
                at=rng.uniform(0.0, horizon), duration=loop_wait,
                count=loop_kills,
            ))
        return cls(faults=tuple(faults), seed=seed)


def corrupt_shared_cache(cache_dir: str | Path | None) -> int:
    """Scribble garbage over every entry of a fleet's shared disk
    cache (what a worker with a bad disk would leave behind); returns
    the number of entries hit.  Each worker's quarantine path must
    absorb them — answers stay byte-identical, served from a re-solve.
    """
    if not cache_dir:
        return 0
    count = 0
    for path in Path(cache_dir).glob("*.json"):
        corrupt_path(path)
        count += 1
    return count


class ClusterFaultInjector:
    """Drives a :class:`ClusterFaultPlan` against a live fleet.

    ``cluster`` duck-types :class:`repro.service.cluster.ClusterHandle`
    (``shard_pid`` / ``kill_shard`` / ``hold_respawn`` / ``cache_dir``)
    so this module never imports the service layer.  :meth:`run`
    blocks — callers drive it on its own thread next to the load —
    firing faults in ``at`` order; a stall holds the injector for its
    ``duration`` (SIGSTOP … SIGCONT), everything else returns
    immediately.  Every fault fired lands on :attr:`fired` as
    ``(kind, shard, elapsed_seconds)``.
    """

    def __init__(self, plan: ClusterFaultPlan) -> None:
        self.plan = plan
        self.fired: list[tuple[str, int, float]] = []

    def run(self, cluster: Any) -> None:
        start = time.monotonic()
        for fault in self.plan.faults:
            delay = start + fault.at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._fire(fault, cluster)
            self.fired.append(
                (fault.kind, fault.shard, time.monotonic() - start)
            )

    def _fire(self, fault: ClusterFault, cluster: Any) -> None:
        if fault.kind == KIND_WORKER_KILL:
            cluster.kill_shard(fault.shard)
        elif fault.kind == KIND_WORKER_STALL:
            self._stall(fault, cluster)
        elif fault.kind == KIND_WORKER_REFUSE:
            # Hold the respawn first so the slot's port refuses
            # connections for the whole window after the kill.
            cluster.hold_respawn(fault.shard, fault.duration)
            cluster.kill_shard(fault.shard)
        elif fault.kind == KIND_SHARED_CACHE_CORRUPT:
            corrupt_shared_cache(cluster.cache_dir)
        else:  # crash-loop
            self._crash_loop(fault, cluster)

    def _stall(self, fault: ClusterFault, cluster: Any) -> None:
        pid = cluster.shard_pid(fault.shard)
        if pid is None:
            return
        try:
            os.kill(pid, signal_mod.SIGSTOP)
        except ProcessLookupError:
            return
        try:
            time.sleep(fault.duration)
        finally:
            try:
                os.kill(pid, signal_mod.SIGCONT)
            except ProcessLookupError:
                pass

    def _crash_loop(self, fault: ClusterFault, cluster: Any) -> None:
        """Kill the slot's next ``count`` incarnations as each comes
        up — the signature a crash-looping binary leaves, and what the
        slot's flap breaker exists to dampen.  Stops early once the
        breaker pauses respawns for longer than ``duration``."""
        last_pid: int | None = None
        for _ in range(fault.count):
            pid = self._await_incarnation(
                cluster, fault.shard, last_pid, fault.duration
            )
            if pid is None:
                return  # respawns paused (flap breaker) — goal reached
            try:
                os.kill(pid, signal_mod.SIGKILL)
            except ProcessLookupError:
                pass
            last_pid = pid

    @staticmethod
    def _await_incarnation(
        cluster: Any, shard: int, last_pid: int | None, budget: float
    ) -> int | None:
        """First pid of the slot that differs from ``last_pid``."""
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            pid = cluster.shard_pid(shard)
            if pid is not None and pid != last_pid:
                return pid
            time.sleep(0.02)
        return None
