"""Deterministic, seed-driven fault injection for the batch engine.

The resilience claims of :mod:`repro.engine.batch` — worker-crash
recovery, per-task deadlines, retry, the cache circuit breaker — are
only trustworthy if they can be *exercised on demand*.  This module is
the chaos harness: a :class:`FaultPlan` describes exactly which task
(or cache operation) fails, how, and on which attempt, and the batch
and cache layers consult it through two hooks:

* ``EngineConfig.chaos`` — the plan rides into pool workers (it is a
  small frozen, picklable dataclass) and
  :meth:`FaultPlan.apply_task` fires task faults;
* ``DiskCache.fault_hook`` — a :class:`CacheFaultInjector` built from
  the same plan fires cache faults (deny = transient ``OSError``,
  corrupt = scribble over the entry before the read).

Fault kinds
-----------
``kill-worker``
    The worker process exits hard (``os._exit``) mid-task, breaking
    the process pool; applied in-process (serial batches) it raises
    :class:`WorkerKilledError` instead, so the supervisor sees the
    same retryable failure without killing the interpreter.
``delay``
    The task sleeps ``duration`` seconds before solving — long enough
    to blow a per-task deadline or trigger a hedge.
``transient-error``
    The task raises ``OSError`` (retryable) on the targeted attempt.
``cache-deny``
    The next ``count`` matching cache operations raise ``OSError``
    (this is what trips the circuit breaker).
``cache-corrupt``
    The entry file is overwritten with garbage just before the cache
    touches it; the normal corruption path (quarantine/strict raise)
    takes over from there.

Plans are deterministic: :meth:`FaultPlan.from_seed` derives victims
from a seed via :class:`random.Random`, and everything else is data.
Because every solve is a pure function of its request, a recovered run
is *byte-identical* to a fault-free run — the property the chaos tests
assert.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ConfigurationError

__all__ = [
    "ALL_ATTEMPTS",
    "CacheFaultInjector",
    "ChaosFault",
    "FaultPlan",
    "WorkerKilledError",
    "corrupt_entry",
    "KIND_KILL",
    "KIND_DELAY",
    "KIND_ERROR",
    "KIND_CACHE_DENY",
    "KIND_CACHE_CORRUPT",
]

KIND_KILL = "kill-worker"
KIND_DELAY = "delay"
KIND_ERROR = "transient-error"
KIND_CACHE_DENY = "cache-deny"
KIND_CACHE_CORRUPT = "cache-corrupt"

_TASK_KINDS = (KIND_KILL, KIND_DELAY, KIND_ERROR)
_CACHE_KINDS = (KIND_CACHE_DENY, KIND_CACHE_CORRUPT)

#: Sentinel attempt number meaning "fire on every attempt" (a
#: permanently failing task, not a transient hiccup).
ALL_ATTEMPTS = -1

#: Exit status of a chaos-killed pool worker (visible in core dumps /
#: process tables; any nonzero value breaks the pool identically).
KILL_EXIT_STATUS = 77

GARBAGE = "{chaos corrupted this entry"


class WorkerKilledError(OSError):
    """In-process stand-in for a hard worker death (serial batches)."""


@dataclass(frozen=True)
class ChaosFault:
    """One planned fault.

    Task faults (``kill-worker``/``delay``/``transient-error``) target
    a batch ``task`` index and an ``attempt`` number
    (:data:`ALL_ATTEMPTS` = every attempt).  Cache faults
    (``cache-deny``/``cache-corrupt``) target an operation (``"load"``,
    ``"store"``, or ``""`` for both) and optionally a specific ``key``
    (``""`` = any key), firing at most ``count`` times.
    """

    kind: str
    task: int = -1
    attempt: int = 0
    duration: float = 0.0
    op: str = ""
    key: str = ""
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _TASK_KINDS + _CACHE_KINDS:
            raise ConfigurationError(
                f"unknown chaos fault kind {self.kind!r}; expected one of "
                f"{_TASK_KINDS + _CACHE_KINDS}"
            )

    def matches_task(self, task: int, attempt: int) -> bool:
        return (
            self.kind in _TASK_KINDS
            and self.task == task
            and (self.attempt == ALL_ATTEMPTS or self.attempt == attempt)
        )

    def matches_cache(self, op: str, key: str) -> bool:
        return (
            self.kind in _CACHE_KINDS
            and (not self.op or self.op == op)
            and (not self.key or self.key == key)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults for one (or more) batch runs."""

    faults: tuple[ChaosFault, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def task_faults(self) -> tuple[ChaosFault, ...]:
        return tuple(f for f in self.faults if f.kind in _TASK_KINDS)

    @property
    def cache_faults(self) -> tuple[ChaosFault, ...]:
        return tuple(f for f in self.faults if f.kind in _CACHE_KINDS)

    def task_fault(self, task: int, attempt: int) -> ChaosFault | None:
        """The first fault targeting (task, attempt), or None."""
        for fault in self.faults:
            if fault.matches_task(task, attempt):
                return fault
        return None

    def apply_task(self, task: int, attempt: int, in_worker: bool) -> None:
        """Fire the planned fault for this (task, attempt), if any.

        Called at the top of every task attempt — inside the pool
        worker for parallel batches (``in_worker=True``), in the engine
        process for serial ones.  ``kill-worker`` hard-exits a real
        worker but raises :class:`WorkerKilledError` in-process so a
        serial batch survives to supervise it.
        """
        fault = self.task_fault(task, attempt)
        if fault is None:
            return
        if fault.kind == KIND_DELAY:
            time.sleep(fault.duration)
            return
        if fault.kind == KIND_ERROR:
            raise OSError(
                f"chaos: transient error (task {task}, attempt {attempt})"
            )
        # kill-worker
        if in_worker:
            os._exit(KILL_EXIT_STATUS)
        raise WorkerKilledError(
            f"chaos: worker killed (task {task}, attempt {attempt}; "
            "simulated in-process)"
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        tasks: int,
        kills: int = 1,
        delays: int = 0,
        errors: int = 0,
        delay_duration: float = 1.0,
        cache_denies: int = 0,
        attempt: int = 0,
    ) -> "FaultPlan":
        """Derive a plan from a seed: distinct victims, fixed kinds.

        Victim task indices are drawn without replacement by
        ``random.Random(seed)``, so the same seed always produces the
        same plan — the chaos tests' reproducibility contract.
        """
        wanted = kills + delays + errors
        if wanted > tasks:
            raise ConfigurationError(
                f"cannot pick {wanted} distinct victims from {tasks} tasks"
            )
        rng = random.Random(seed)
        victims = rng.sample(range(tasks), k=wanted)
        faults: list[ChaosFault] = []
        cursor = 0
        for kind, n in (
            (KIND_KILL, kills), (KIND_DELAY, delays), (KIND_ERROR, errors)
        ):
            for _ in range(n):
                faults.append(
                    ChaosFault(
                        kind=kind,
                        task=victims[cursor],
                        attempt=attempt,
                        duration=(
                            delay_duration if kind == KIND_DELAY else 0.0
                        ),
                    )
                )
                cursor += 1
        if cache_denies:
            faults.append(
                ChaosFault(kind=KIND_CACHE_DENY, count=cache_denies)
            )
        return cls(faults=tuple(faults), seed=seed)


class CacheFaultInjector:
    """Stateful hook wired into :class:`~repro.engine.cache.DiskCache`.

    Called as ``injector(op, key, path)`` before each disk-cache
    operation; counts down each cache fault's ``count`` budget and
    fires it (deny raises ``OSError``, corrupt scribbles over the
    entry file).  Lives in the engine process only — pool workers never
    touch the parent's disk cache.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining = {
            i: fault.count
            for i, fault in enumerate(plan.faults)
            if fault.kind in _CACHE_KINDS
        }
        #: Faults actually fired, for test assertions.
        self.fired: list[tuple[str, str, str]] = []

    def __call__(self, op: str, key: str, path: Path) -> None:
        for i, fault in enumerate(self.plan.faults):
            if self._remaining.get(i, 0) <= 0:
                continue
            if not fault.matches_cache(op, key):
                continue
            self._remaining[i] -= 1
            self.fired.append((fault.kind, op, key))
            if fault.kind == KIND_CACHE_DENY:
                raise OSError(
                    f"chaos: cache {op} denied (key {key[:40]!r})"
                )
            corrupt_path(path)
            return


def corrupt_path(path: Path) -> None:
    """Overwrite a cache entry file with unparseable garbage."""
    path.write_text(GARBAGE)


def corrupt_entry(disk, key: str) -> Path:
    """Corrupt the on-disk entry for ``key``; returns the file path.

    The file must exist (corrupting a miss would silently test
    nothing).
    """
    path = disk.path_for(key)
    if not path.exists():
        raise ConfigurationError(
            f"no cache entry to corrupt for key {key[:60]!r}"
        )
    corrupt_path(path)
    return path
