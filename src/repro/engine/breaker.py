"""Circuit breaker guarding the engine's disk-cache backend.

A flaky cache directory (full disk, yanked network mount, permission
flap) must not take down a batch of product-form evaluations: the disk
cache is an *optimization*, so after repeated I/O failures the engine
should stop touching it and serve memory-only.  :class:`CircuitBreaker`
implements the standard three-state machine:

``closed``
    Normal operation.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker to ``open``.
``open``
    Every request is rejected without touching the backend.  After
    ``cooldown`` seconds the next request is allowed through as a
    *probe* and the breaker moves to ``half-open``.
``half-open``
    Exactly one probe is in flight; further requests are rejected.
    A recorded success closes the breaker, a failure re-opens it (and
    restarts the cooldown).

The breaker is thread-safe, clock-injectable (tests drive the cooldown
with a fake clock), and every transition is logged through
:mod:`repro.logging` and kept on :attr:`CircuitBreaker.events` so batch
metrics can report what happened.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..logging import get_logger, kv

__all__ = [
    "BreakerEvent",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]

logger = get_logger("engine.breaker")

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerEvent:
    """One state transition: when, from where, to where, and why."""

    at: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        name: str = "disk-cache",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0.0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {cooldown}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Times the breaker tripped ``closed``/``half-open`` -> ``open``.
        self.trips = 0
        #: Half-open probes allowed through.
        self.probes = 0
        #: Requests rejected while open/half-open.
        self.rejections = 0
        #: Successes and failures recorded against the backend.
        self.successes = 0
        self.failures = 0
        self.events: list[BreakerEvent] = []

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the protected backend may be touched right now.

        In ``open`` state this flips to ``half-open`` (allowing one
        probe) once the cooldown has elapsed; in ``half-open`` state
        only the single in-flight probe is allowed.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._transition(STATE_HALF_OPEN, "cooldown elapsed")
                    self.probes += 1
                    return True
                self.rejections += 1
                return False
            # half-open: the probe is already out; reject until it lands.
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """The backend answered: reset the failure run, close a probe."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state == STATE_HALF_OPEN:
                self._transition(STATE_CLOSED, "probe succeeded")

    def record_failure(self, reason: str = "") -> None:
        """The backend failed: count it, trip or re-open as needed."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self.trips += 1
                self._opened_at = self._clock()
                self._transition(
                    STATE_OPEN, reason or "probe failed"
                )
            elif (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self.trips += 1
                self._opened_at = self._clock()
                self._transition(
                    STATE_OPEN,
                    reason
                    or f"{self._consecutive_failures} consecutive failures",
                )

    def reset(self) -> None:
        """Force-close (administrative reset); counters are kept."""
        with self._lock:
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED, "manual reset")
            self._consecutive_failures = 0

    def snapshot(self) -> dict:
        """Counters and state as a plain dict (for metrics/JSON)."""
        with self._lock:
            return {
                "state": self._state,
                "trips": self.trips,
                "probes": self.probes,
                "rejections": self.rejections,
                "successes": self.successes,
                "failures": self.failures,
                "consecutive_failures": self._consecutive_failures,
            }

    # ------------------------------------------------------------------

    def _transition(self, to_state: str, reason: str) -> None:
        """Record + log one transition.  Caller holds the lock."""
        event = BreakerEvent(
            at=self._clock(),
            from_state=self._state,
            to_state=to_state,
            reason=reason,
        )
        self._state = to_state
        self.events.append(event)
        logger.warning(
            "cache breaker transition %s",
            kv(
                breaker=self.name,
                from_state=event.from_state,
                to_state=event.to_state,
                reason=reason,
            ),
        )
