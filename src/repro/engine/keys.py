"""Canonical cache keys for solve requests.

A cache key must be *exact* (two requests share a key iff they are
guaranteed the same measures) and *stable* (the same request yields the
same key across processes and interpreter runs, so on-disk caches stay
valid).  Floats are therefore rendered with ``float.hex()`` — lossless
and locale-independent — and traffic classes are keyed by their sorted
parameter tuples: the product-form solution is symmetric under class
permutation, so order must not fragment the cache.  Class *names* are
cosmetic and excluded.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..methods import SolveMethod

__all__ = [
    "class_params",
    "canonical_order",
    "request_key",
    "classes_key",
    "key_digest",
]


def class_params(cls: TrafficClass) -> tuple[str, str, str, int, str]:
    """The identity of one class as a sortable, exact tuple."""
    return (
        float(cls.alpha).hex(),
        float(cls.beta).hex(),
        float(cls.mu).hex(),
        cls.a,
        float(cls.weight).hex(),
    )


def canonical_order(classes: Sequence[TrafficClass]) -> list[int]:
    """Indices that sort ``classes`` into canonical (parameter) order."""
    return sorted(range(len(classes)), key=lambda r: class_params(classes[r]))


def classes_key(classes: Sequence[TrafficClass]) -> str:
    """Key of the traffic mix alone (order-insensitive)."""
    parts = sorted(class_params(c) for c in classes)
    return ";".join(",".join(map(str, p)) for p in parts)


def request_key(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    method: SolveMethod,
) -> str:
    """Canonical key of a full request: dims | method | sorted classes."""
    return f"{dims.n1}x{dims.n2}|{method.value}|{classes_key(classes)}"


def key_digest(key: str) -> str:
    """Short stable digest of a key, used for on-disk file names."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
