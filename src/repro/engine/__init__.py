"""Batched, cached, fault-tolerant evaluation engine for crossbar
solve requests.

See :class:`BatchSolver` for the execution model: canonical cache keys
(:mod:`repro.engine.keys`), LRU + optional disk caches
(:mod:`repro.engine.cache`) guarded by a circuit breaker
(:mod:`repro.engine.breaker`), shared Algorithm 1 Q-grids for size
sweeps, process-parallel fan-out for independent misses, and a
supervision layer (retries, deadlines, hedging, worker-crash recovery)
exercised by the deterministic chaos harness
(:mod:`repro.engine.chaos`).
"""

from .batch import (
    BatchMetrics,
    BatchSolver,
    EngineConfig,
    EngineStats,
    FailedResult,
    TaskAttempt,
    TaskDeadlineError,
    get_default_engine,
    reset_default_engine,
    set_default_engine,
    sliced_solution,
)
from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerEvent,
    CircuitBreaker,
)
from .cache import (
    CacheCorruptionError,
    DiskCache,
    LRUCache,
    StaleCacheKeyError,
)
from .chaos import (
    ALL_ATTEMPTS,
    CacheFaultInjector,
    ChaosFault,
    ClusterFault,
    ClusterFaultInjector,
    ClusterFaultPlan,
    FaultPlan,
    ServiceFault,
    ServiceFaultInjector,
    ServiceFaultPlan,
    WorkerKilledError,
    corrupt_entry,
)
from .keys import classes_key, key_digest, request_key

__all__ = [
    "BatchMetrics",
    "BatchSolver",
    "EngineConfig",
    "EngineStats",
    "FailedResult",
    "TaskAttempt",
    "TaskDeadlineError",
    "get_default_engine",
    "reset_default_engine",
    "set_default_engine",
    "sliced_solution",
    "BreakerEvent",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "CacheCorruptionError",
    "DiskCache",
    "LRUCache",
    "StaleCacheKeyError",
    "ALL_ATTEMPTS",
    "CacheFaultInjector",
    "ChaosFault",
    "ClusterFault",
    "ClusterFaultInjector",
    "ClusterFaultPlan",
    "FaultPlan",
    "ServiceFault",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "WorkerKilledError",
    "corrupt_entry",
    "classes_key",
    "key_digest",
    "request_key",
]
