"""Batched, cached evaluation engine for crossbar solve requests.

See :class:`BatchSolver` for the execution model: canonical cache keys
(:mod:`repro.engine.keys`), LRU + optional disk caches
(:mod:`repro.engine.cache`), shared Algorithm 1 Q-grids for size
sweeps, and process-parallel fan-out for independent misses.
"""

from .batch import (
    BatchMetrics,
    BatchSolver,
    EngineConfig,
    EngineStats,
    get_default_engine,
    reset_default_engine,
    set_default_engine,
    sliced_solution,
)
from .cache import (
    CacheCorruptionError,
    DiskCache,
    LRUCache,
    StaleCacheKeyError,
)
from .keys import classes_key, key_digest, request_key

__all__ = [
    "BatchMetrics",
    "BatchSolver",
    "EngineConfig",
    "EngineStats",
    "get_default_engine",
    "reset_default_engine",
    "set_default_engine",
    "sliced_solution",
    "CacheCorruptionError",
    "DiskCache",
    "LRUCache",
    "StaleCacheKeyError",
    "classes_key",
    "key_digest",
    "request_key",
]
