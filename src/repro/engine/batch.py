"""The batched evaluation engine: memoized, grid-sharing, parallel.

:class:`BatchSolver` is the execution layer behind the unified solve
API (:mod:`repro.api`).  It exploits three structural facts about the
model:

1. **Memoization** — requests canonicalize into exact cache keys
   (:mod:`repro.engine.keys`), so identical models are never solved
   twice.  An LRU holds :class:`~repro.api.SolveResult` records (plus a
   smaller memo of full solution objects); an optional
   :class:`~repro.engine.cache.DiskCache` persists results as JSON.
2. **Q-grid reuse** — Algorithm 1 computes the normalization grid
   ``Q(n)`` *for every sub-dimension* ``n <= N`` in one ``O(N1 N2 R)``
   pass, and every measure is a ratio read ``G(N - a_r 1_i)/G(N)`` off
   that grid.  A size sweep therefore needs **one** solve at the
   largest requested dimensions, not one per point;
   :meth:`BatchSolver.evaluate_many` groups batch members that share a
   traffic mix and grid method and serves the whole group from the
   single big grid.  The sub-dimension reads are bit-for-bit identical
   to individual solves (the recurrence at cell ``(m1, m2)`` never
   looks at cells beyond it).
3. **Independence** — cache-miss requests that cannot share a grid are
   embarrassingly parallel; large miss batches fan out over a
   ``ProcessPoolExecutor`` with deterministic (request-order) results.

Every batch records a :class:`BatchMetrics` (timings, hit counts,
grid reuse) surfaced through :mod:`repro.logging` and kept on
``engine.last_metrics``; cumulative counters live on ``engine.stats``.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..api import SolveRequest, SolveResult
from ..core.measures import PerformanceSolution
from ..exceptions import ComputationError, ConfigurationError, CrossbarError
from ..logging import get_logger, kv
from ..methods import SolveMethod
from .cache import DiskCache, LRUCache
from .keys import canonical_order, class_params, classes_key

__all__ = [
    "BatchMetrics",
    "BatchSolver",
    "EngineConfig",
    "EngineStats",
    "get_default_engine",
    "set_default_engine",
    "reset_default_engine",
]

logger = get_logger("engine.batch")

#: Environment variable enabling the on-disk result cache by default.
CACHE_DIR_ENV = "REPRO_ENGINE_CACHE_DIR"


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of a :class:`BatchSolver`."""

    #: Capacity of the scalar-result LRU.
    lru_size: int = 4096
    #: Capacity of the (heavier) full-solution memo.
    solution_lru_size: int = 128
    #: Directory for the persistent JSON cache; None disables it.
    disk_cache: str | Path | None = None
    #: Raise on corrupt/stale disk entries instead of quarantining.
    strict_cache: bool = False
    #: Worker processes for parallel batches (None: one per CPU).
    processes: int | None = None
    #: Minimum number of non-shareable cache misses in one batch before
    #: a process pool is worth its start-up cost.
    parallel_threshold: int = 8
    #: Requests per pool task; None picks a chunk that gives each
    #: worker a few tasks.
    chunk_size: int | None = None

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """Default config, honoring ``REPRO_ENGINE_CACHE_DIR``."""
        return cls(disk_cache=os.environ.get(CACHE_DIR_ENV) or None)


class EngineStats:
    """Cumulative, thread-safe cache counters for one engine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.lookups = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.solves = 0
        self.grid_reads = 0

    def _add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def hit_rate(self) -> float:
        """Fraction of lookups answered from a cache (0 when idle)."""
        with self._lock:
            hits = self.memory_hits + self.disk_hits
            return hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "lookups": self.lookups,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "solves": self.solves,
                "grid_reads": self.grid_reads,
                "hit_rate": (
                    (self.memory_hits + self.disk_hits) / self.lookups
                    if self.lookups else 0.0
                ),
            }


@dataclass(frozen=True)
class BatchMetrics:
    """What one :meth:`BatchSolver.evaluate_many` call actually did."""

    requests: int
    memory_hits: int
    disk_hits: int
    #: Number of shared-grid groups and the points they served.
    grid_groups: int
    grid_points: int
    #: Requests solved individually (after cache + grid sharing).
    solved: int
    parallel: bool
    elapsed: float

    @property
    def hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return (self.memory_hits + self.disk_hits) / self.requests

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "grid_groups": self.grid_groups,
            "grid_points": self.grid_points,
            "solved": self.solved,
            "parallel": self.parallel,
            "elapsed": self.elapsed,
            "hit_rate": self.hit_rate,
        }


# ----------------------------------------------------------------------
# Method dispatch (shared by the engine and its pool workers)
# ----------------------------------------------------------------------


def _dispatch_solve(request: SolveRequest) -> Any:
    """Run the requested algorithm; returns the raw solution object."""
    dims, classes, method = request.dims, request.classes, request.method
    mode = method.convolution_mode
    if mode is not None:
        from ..core.convolution import solve_convolution

        return solve_convolution(dims, classes, mode=mode)
    if method is SolveMethod.MVA:
        from ..core.mva import solve_mva

        return solve_mva(dims, classes)
    if method is SolveMethod.EXACT:
        from ..core.exact import solve_exact

        return solve_exact(dims, classes)
    if method is SolveMethod.SERIES:
        from ..core.series_solver import solve_series

        return solve_series(dims, classes)
    if method is SolveMethod.BRUTE_FORCE:
        from ..core.model import solve_brute_force_solution

        return solve_brute_force_solution(dims, classes)
    if method is SolveMethod.ROBUST:
        from ..robust.facade import _solve_robust_direct

        return _solve_robust_direct(dims, classes)
    raise ConfigurationError(
        f"method {method.value!r} has no engine dispatch"
    )  # pragma: no cover - enum is exhaustive above


def _measurable(solution: Any) -> tuple[Any, str]:
    """Unwrap container solutions (RobustSolution) to a measure object."""
    inner = getattr(solution, "solution", None)
    if inner is not None and hasattr(solution, "diagnostics"):
        return inner, getattr(solution, "method", "") or "robust"
    return solution, getattr(solution, "method", "")


def _result_from(
    request: SolveRequest, solution: Any, elapsed: float
) -> SolveResult:
    measurable, label = _measurable(solution)
    return SolveResult.from_solution(
        request, measurable, solved_by=label, elapsed=elapsed
    )


def _solve_one(request: SolveRequest) -> SolveResult:
    """Plain uncached solve -> result; the pool-worker entry point."""
    began = time.perf_counter()
    solution = _dispatch_solve(request)
    return _result_from(request, solution, time.perf_counter() - began)


class _SubDimsView:
    """Measure adapter reading a grid solution at a sub-switch.

    Presents the ``blocking(r)/concurrency(r)/call_acceptance(r)``
    interface :meth:`SolveResult.from_solution` expects, with every
    query pinned ``at`` the member's dimensions.
    """

    def __init__(self, solution: PerformanceSolution, at) -> None:
        self._solution = solution
        self._at = at

    def blocking(self, r: int) -> float:
        return self._solution.blocking(r, at=self._at)

    def concurrency(self, r: int) -> float:
        return self._solution.concurrency(r, at=self._at)

    def call_acceptance(self, r: int) -> float:
        return self._solution.call_acceptance(r, at=self._at)

    @property
    def method(self) -> str:
        return self._solution.method


def sliced_solution(
    solution: PerformanceSolution, dims
) -> PerformanceSolution:
    """A :class:`PerformanceSolution` restricted to a sub-switch.

    Because Algorithm 1's recurrence at cell ``(m1, m2)`` only reads
    cells dominated by it, the sliced grids are bit-for-bit what a
    direct solve at ``dims`` would have produced.
    """
    if not solution.dims.contains(dims):
        raise ConfigurationError(
            f"cannot slice {solution.dims} down to larger dims {dims}"
        )
    n1, n2 = dims.n1, dims.n2
    return PerformanceSolution(
        dims=dims,
        classes=solution.classes,
        h=tuple(grid[: n1 + 1, : n2 + 1] for grid in solution.h),
        log_q=(
            None if solution.log_q is None
            else solution.log_q[: n1 + 1, : n2 + 1]
        ),
        method=solution.method,
        e_smooth={
            r: grid[: n1 + 1, : n2 + 1]
            for r, grid in solution.e_smooth.items()
        },
    )


def _reorder_permutation(
    stored: Sequence, requested: Sequence
) -> list[int] | None:
    """``perm[i]`` = index in ``stored`` matching ``requested[i]``.

    None when the class multisets differ (cannot happen for equal
    canonical keys, but kept defensive).
    """
    if tuple(stored) == tuple(requested):
        return None
    stored_order = canonical_order(stored)
    requested_order = canonical_order(requested)
    perm = [0] * len(requested)
    for k, i in enumerate(requested_order):
        j = stored_order[k]
        if class_params(stored[j]) != class_params(requested[i]):
            raise ComputationError(
                "cache entry class parameters do not match the request "
                "(key collision)"
            )
        perm[i] = j
    return perm


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class BatchSolver:
    """Cached, batched, optionally process-parallel solve engine."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig.from_env()
        self._results = LRUCache(self.config.lru_size)
        self._solutions = LRUCache(self.config.solution_lru_size)
        self.disk = (
            DiskCache(self.config.disk_cache, strict=self.config.strict_cache)
            if self.config.disk_cache is not None
            else None
        )
        self.stats = EngineStats()
        self.last_metrics: BatchMetrics | None = None

    # ------------------------------------------------------------------
    # Single-request entry points
    # ------------------------------------------------------------------

    def solve(self, request: SolveRequest) -> SolveResult:
        """One request, through every cache layer."""
        key = request.cache_key
        self.stats._add("lookups")
        hit = self._lookup(key, request)
        if hit is not None:
            return hit
        began = time.perf_counter()
        solution = self._solution_memo_or_solve(request, key)
        result = _result_from(
            request, solution, time.perf_counter() - began
        )
        self._store(key, result)
        return result

    def solution_for(self, request: SolveRequest) -> Any:
        """The full solution object (grids and all), memoized.

        This is what the legacy entry points
        (:meth:`CrossbarModel.solve`, ``solve_robust``, the sweep
        helpers) delegate to: they keep returning rich solution objects
        while sharing the engine's memoization.
        """
        self.stats._add("lookups")
        key = request.cache_key
        entry = self._solutions.get(key)
        if entry is not None:
            stored_classes, solution = entry
            if stored_classes == request.classes:
                self.stats._add("memory_hits")
                return solution
            if isinstance(solution, PerformanceSolution):
                perm = _reorder_permutation(stored_classes, request.classes)
                self.stats._add("memory_hits")
                if perm is None:
                    return solution
                return replace(
                    solution,
                    classes=request.classes,
                    h=tuple(solution.h[j] for j in perm),
                    e_smooth={
                        i: solution.e_smooth[j]
                        for i, j in enumerate(perm)
                        if j in solution.e_smooth
                    },
                    _concurrency_cache={},
                )
            # Non-grid solution types are cheapest to just re-solve for
            # the new class order (measure indices must line up).
        solution = _dispatch_solve(request)
        self.stats._add("solves")
        self._solutions.put(key, (request.classes, solution))
        return solution

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        requests: Sequence[SolveRequest],
        parallel: bool | None = None,
    ) -> list[SolveResult]:
        """Evaluate a batch: cache, share Q-grids, then fan out.

        Results are returned in request order regardless of execution
        order, and are byte-identical whether served serially, in
        parallel, or from cache.
        """
        requests = list(requests)
        began = time.perf_counter()
        results: list[SolveResult | None] = [None] * len(requests)
        memory_hits = disk_hits = 0

        misses: list[tuple[int, SolveRequest, str]] = []
        for i, request in enumerate(requests):
            if not isinstance(request, SolveRequest):
                raise ConfigurationError(
                    f"evaluate_many needs SolveRequest items, got "
                    f"{request!r}"
                )
            key = request.cache_key
            self.stats._add("lookups")
            before_disk = self.stats.disk_hits
            hit = self._lookup(key, request)
            if hit is not None:
                if self.stats.disk_hits > before_disk:
                    disk_hits += 1
                else:
                    memory_hits += 1
                results[i] = hit
            else:
                misses.append((i, request, key))

        grid_groups, grid_points, leftover = self._serve_grid_groups(
            misses, results
        )

        use_pool = self._should_parallelize(len(leftover), parallel)
        if use_pool:
            self._solve_parallel(leftover, results)
        else:
            for i, request, key in leftover:
                began_one = time.perf_counter()
                solution = self._solution_memo_or_solve(request, key)
                result = _result_from(
                    request, solution, time.perf_counter() - began_one
                )
                self._store(key, result)
                results[i] = result

        metrics = BatchMetrics(
            requests=len(requests),
            memory_hits=memory_hits,
            disk_hits=disk_hits,
            grid_groups=grid_groups,
            grid_points=grid_points,
            solved=len(leftover),
            parallel=use_pool,
            elapsed=time.perf_counter() - began,
        )
        self.last_metrics = metrics
        logger.info("batch evaluated %s", kv(**metrics.to_dict()))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cache bookkeeping
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is left alone)."""
        self._results.clear()
        self._solutions.clear()

    def _lookup(self, key: str, request: SolveRequest) -> SolveResult | None:
        hit = self._results.get(key)
        if hit is not None:
            self.stats._add("memory_hits")
            return self._adapt(hit, request)
        if self.disk is not None:
            payload = self.disk.load(key)
            if payload is not None:
                try:
                    result = SolveResult.from_dict(payload)
                except (KeyError, TypeError, ValueError) as exc:
                    if self.config.strict_cache:
                        from .cache import CacheCorruptionError

                        raise CacheCorruptionError(
                            f"disk cache payload for {key!r} does not "
                            f"deserialize: {exc}"
                        ) from exc
                    return None
                self.stats._add("disk_hits")
                self._results.put(key, result)
                return self._adapt(result, request)
        return None

    def _store(self, key: str, result: SolveResult) -> None:
        self.stats._add("solves")
        self._results.put(key, result)
        if self.disk is not None:
            self.disk.store(key, result.to_dict())

    def _adapt(self, hit: SolveResult, request: SolveRequest) -> SolveResult:
        """Re-address a cached result to the incoming request."""
        perm = _reorder_permutation(hit.request.classes, request.classes)
        if perm is not None:
            hit = hit.reordered(perm, request)
        elif hit.request != request:
            hit = replace(hit, request=request)
        return replace(hit, from_cache=True, elapsed=0.0)

    def _solution_memo_or_solve(
        self, request: SolveRequest, key: str
    ) -> Any:
        entry = self._solutions.get(key)
        if entry is not None and entry[0] == request.classes:
            return entry[1]
        solution = _dispatch_solve(request)
        self._solutions.put(key, (request.classes, solution))
        return solution

    # ------------------------------------------------------------------
    # Q-grid sharing
    # ------------------------------------------------------------------

    def _serve_grid_groups(
        self,
        misses: list[tuple[int, SolveRequest, str]],
        results: list[SolveResult | None],
    ) -> tuple[int, int, list[tuple[int, SolveRequest, str]]]:
        """Serve groups of misses from one shared Algorithm 1 grid.

        Misses sharing (ordered traffic mix, grid method) need a single
        solve at the componentwise-max dimensions; every member is a
        ratio read at its own ``(n1, n2)``.  Returns the group count,
        points served, and the misses left for individual solving.
        """
        groups: dict[tuple, list[tuple[int, SolveRequest, str]]] = {}
        leftover: list[tuple[int, SolveRequest, str]] = []
        for item in misses:
            _, request, _ = item
            if request.method.is_grid:
                group_key = (
                    request.method,
                    tuple(class_params(c) for c in request.classes),
                )
                groups.setdefault(group_key, []).append(item)
            else:
                leftover.append(item)

        grid_groups = grid_points = 0
        for members in groups.values():
            if len(members) < 2:
                leftover.extend(members)
                continue
            base_request = members[0][1]
            from ..core.state import SwitchDimensions

            top = SwitchDimensions(
                max(m[1].dims.n1 for m in members),
                max(m[1].dims.n2 for m in members),
            )
            try:
                solution = self.solution_for(base_request.with_dims(top))
            except CrossbarError as exc:
                # E.g. a Bernoulli admissibility guard that only trips
                # at the enlarged dims: solve members individually.
                logger.warning(
                    "grid group fell back to point solves %s",
                    kv(dims=str(top), reason=str(exc)[:80]),
                )
                leftover.extend(members)
                continue
            grid_groups += 1
            for i, request, key in members:
                began = time.perf_counter()
                view = _SubDimsView(solution, request.dims)
                result = _result_from(
                    request, view, time.perf_counter() - began
                )
                self._store(key, result)
                self.stats._add("grid_reads")
                results[i] = result
                grid_points += 1
        return grid_groups, grid_points, leftover

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _worker_count(self) -> int:
        if self.config.processes is not None:
            return max(1, self.config.processes)
        return max(1, os.cpu_count() or 1)

    def _should_parallelize(
        self, n_misses: int, parallel: bool | None
    ) -> bool:
        if n_misses < 2:
            return False
        if parallel is not None:
            return parallel and self._worker_count() > 1
        return (
            n_misses >= self.config.parallel_threshold
            and self._worker_count() > 1
        )

    def _solve_parallel(
        self,
        misses: list[tuple[int, SolveRequest, str]],
        results: list[SolveResult | None],
    ) -> None:
        workers = min(self._worker_count(), len(misses))
        chunk = self.config.chunk_size or max(
            1, math.ceil(len(misses) / (workers * 4))
        )
        with ProcessPoolExecutor(max_workers=workers) as executor:
            solved = executor.map(
                _solve_one, [m[1] for m in misses], chunksize=chunk
            )
            for (i, _, key), result in zip(misses, solved):
                self._store(key, result)
                results[i] = result


# ----------------------------------------------------------------------
# The process-wide default engine
# ----------------------------------------------------------------------

_default_engine: BatchSolver | None = None
_default_lock = threading.Lock()


def get_default_engine() -> BatchSolver:
    """The shared engine every thin delegate routes through."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = BatchSolver()
        return _default_engine


def set_default_engine(engine: BatchSolver) -> BatchSolver:
    """Swap the process-wide engine (returns the previous one)."""
    global _default_engine
    with _default_lock:
        previous, _default_engine = _default_engine, engine
    return previous if previous is not None else engine


def reset_default_engine() -> None:
    """Drop the process-wide engine (a fresh one is built lazily)."""
    global _default_engine
    with _default_lock:
        _default_engine = None
