"""The batched evaluation engine: memoized, grid-sharing, parallel,
fault-tolerant.

:class:`BatchSolver` is the execution layer behind the unified solve
API (:mod:`repro.api`).  It exploits three structural facts about the
model:

1. **Memoization** — requests canonicalize into exact cache keys
   (:mod:`repro.engine.keys`), so identical models are never solved
   twice.  An LRU holds :class:`~repro.api.SolveResult` records (plus a
   smaller memo of full solution objects); an optional
   :class:`~repro.engine.cache.DiskCache` persists results as JSON.
2. **Q-grid reuse** — Algorithm 1 computes the normalization grid
   ``Q(n)`` *for every sub-dimension* ``n <= N`` in one ``O(N1 N2 R)``
   pass, and every measure is a ratio read ``G(N - a_r 1_i)/G(N)`` off
   that grid.  A size sweep therefore needs **one** solve at the
   largest requested dimensions, not one per point;
   :meth:`BatchSolver.evaluate_many` groups batch members that share a
   traffic mix and grid method and serves the whole group from the
   single big grid.  The sub-dimension reads are bit-for-bit identical
   to individual solves (the recurrence at cell ``(m1, m2)`` never
   looks at cells beyond it).
3. **Independence** — cache-miss requests that cannot share a grid are
   embarrassingly parallel; large miss batches fan out over a
   ``ProcessPoolExecutor`` with deterministic (request-order) results.

Fault tolerance
---------------
Long batches must survive partial failure the way the paper's crossbar
survives a blocked call: fail one request, never the fabric.  The
supervision layer (on by default; disable with
``EngineConfig(max_retries=0)`` and no deadline/hedging/chaos) adds:

* **retry with exponential backoff + deterministic jitter** for
  transient failures (``OSError``; jitter is a pure function of the
  cache key and attempt number, so runs are reproducible);
* **per-task deadlines** — an attempt exceeding
  ``EngineConfig.task_deadline`` seconds is abandoned (recorded as a
  ``timeout`` attempt) and retried;
* **worker-crash recovery** — a dead pool worker breaks the whole
  ``ProcessPoolExecutor``; the supervisor respawns the pool and
  requeues *only* the lost tasks (completed results are kept, and
  requeues do not consume the retry budget);
* **hedged duplicates** — with ``hedge_after`` set, a straggling task
  gets a duplicate attempt; the first to finish wins (results are
  identical either way — solves are pure);
* **a terminal per-request** :class:`FailedResult` — a request that
  exhausts its retries comes back as a structured error envelope with
  the full attempt trail instead of poisoning the batch.  Callers that
  want the old throwing behavior pass ``strict=True`` (or set
  ``EngineConfig(strict_batch=True)``).

Every batch records a :class:`BatchMetrics` (timings, hit counts, grid
reuse, retries/timeouts/hedges/losses and the cache circuit-breaker
state) surfaced through :mod:`repro.logging` and kept on
``engine.last_metrics``; cumulative counters live on ``engine.stats``.
Deterministic fault injection for all of the above lives in
:mod:`repro.engine.chaos`.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from ..api import SolveRequest, SolveResult
from ..core.measures import PerformanceSolution
from ..exceptions import ComputationError, ConfigurationError, CrossbarError
from ..logging import get_logger, kv
from ..methods import SolveMethod
from .breaker import CircuitBreaker
from .cache import DiskCache, LRUCache
from .chaos import CacheFaultInjector, FaultPlan
from .keys import canonical_order, class_params, key_digest

__all__ = [
    "BatchMetrics",
    "BatchSolver",
    "EngineConfig",
    "EngineStats",
    "FailedResult",
    "TaskAttempt",
    "TaskDeadlineError",
    "get_default_engine",
    "set_default_engine",
    "reset_default_engine",
]

logger = get_logger("engine.batch")

#: Environment variable enabling the on-disk result cache by default.
CACHE_DIR_ENV = "REPRO_ENGINE_CACHE_DIR"


class TaskDeadlineError(ComputationError):
    """A supervised task attempt exceeded its wall-clock deadline."""


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of a :class:`BatchSolver`."""

    #: Capacity of the scalar-result LRU.
    lru_size: int = 4096
    #: Capacity of the (heavier) full-solution memo.
    solution_lru_size: int = 128
    #: Directory for the persistent JSON cache; None disables it.
    disk_cache: str | Path | None = None
    #: Raise on corrupt/stale disk entries instead of quarantining.
    strict_cache: bool = False
    #: Worker processes for parallel batches (None: one per CPU).
    processes: int | None = None
    #: Minimum number of non-shareable cache misses in one batch before
    #: a process pool is worth its start-up cost.
    parallel_threshold: int = 8
    #: Requests per pool task; None picks a chunk that gives each
    #: worker a few tasks.  (Only the unsupervised fan-out chunks;
    #: supervision needs per-task granularity.)
    chunk_size: int | None = None

    # --- resilience ------------------------------------------------------
    #: Retries per request for transient failures (timeouts, ``OSError``,
    #: lost workers beyond the free requeue).  0 disables supervision's
    #: retry loop.
    max_retries: int = 2
    #: Wall-clock seconds one task attempt may run before it is
    #: abandoned and retried; None disables deadlines.
    task_deadline: float | None = None
    #: Base of the exponential retry backoff (seconds).
    retry_backoff: float = 0.05
    #: Ceiling of one backoff sleep (seconds).
    backoff_cap: float = 2.0
    #: Launch a duplicate of a still-running task after this many
    #: seconds (parallel batches only); None disables hedging.
    hedge_after: float | None = None
    #: Re-raise the first terminal failure instead of returning a
    #: :class:`FailedResult` for it (the pre-resilience behavior).
    strict_batch: bool = False
    #: Consecutive disk-cache I/O failures before the cache circuit
    #: breaker trips and the engine goes memory-only.
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before letting a probe through.
    breaker_cooldown: float = 30.0
    #: Deterministic fault plan for chaos testing (see
    #: :mod:`repro.engine.chaos`); None in production.
    chaos: FaultPlan | None = None

    @property
    def supervised(self) -> bool:
        """Whether batches run under the fault-tolerance supervisor."""
        return (
            self.max_retries > 0
            or self.task_deadline is not None
            or self.hedge_after is not None
            or self.chaos is not None
        )

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """Default config, honoring ``REPRO_ENGINE_CACHE_DIR``."""
        return cls(disk_cache=os.environ.get(CACHE_DIR_ENV) or None)


class EngineStats:
    """Cumulative, thread-safe cache counters for one engine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.lookups = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.solves = 0
        self.grid_reads = 0

    def _add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def hit_rate(self) -> float:
        """Fraction of lookups answered from a cache (0 when idle)."""
        with self._lock:
            hits = self.memory_hits + self.disk_hits
            return hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "lookups": self.lookups,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "solves": self.solves,
                "grid_reads": self.grid_reads,
                "hit_rate": (
                    (self.memory_hits + self.disk_hits) / self.lookups
                    if self.lookups else 0.0
                ),
            }


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt at one supervised task: what happened, how long."""

    attempt: int
    outcome: str  # "ok" | "error" | "timeout" | "lost"
    elapsed: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "elapsed": self.elapsed,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class FailedResult:
    """Terminal failure envelope for one request in a batch.

    Returned (in request order, like any :class:`~repro.api.SolveResult`)
    when a request exhausts its retries in non-strict mode, so one bad
    request never poisons the rest of the batch.  ``attempts`` is the
    full forensic trail.
    """

    request: SolveRequest
    error_type: str
    error_message: str
    attempts: tuple[TaskAttempt, ...] = ()

    #: Discriminator: ``getattr(result, "failed", False)`` is True only
    #: for failure envelopes.
    failed = True

    def to_dict(self) -> dict:
        return {
            "request": self.request.to_dict(),
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass(frozen=True)
class BatchMetrics:
    """What one :meth:`BatchSolver.evaluate_many` call actually did."""

    requests: int
    memory_hits: int
    disk_hits: int
    #: Number of shared-grid groups and the points they served.
    grid_groups: int
    grid_points: int
    #: Requests solved individually (after cache + grid sharing).
    solved: int
    parallel: bool
    elapsed: float
    # --- resilience --------------------------------------------------
    #: Retry attempts launched (transient errors and timeouts).
    retries: int = 0
    #: Attempts abandoned at the per-task deadline.
    timeouts: int = 0
    #: Hedged duplicates launched, and how many beat the original.
    hedges: int = 0
    hedges_won: int = 0
    #: Requests that ended as a :class:`FailedResult`.
    failed: int = 0
    #: Tasks whose in-flight attempt died with a pool worker, and how
    #: often the pool had to be respawned.
    tasks_lost: int = 0
    pool_respawns: int = 0
    #: Disk-cache circuit breaker: state after the batch and trips
    #: during it ("disabled" when no disk cache is configured).
    breaker_state: str = "disabled"
    breaker_trips: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return (self.memory_hits + self.disk_hits) / self.requests

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "grid_groups": self.grid_groups,
            "grid_points": self.grid_points,
            "solved": self.solved,
            "parallel": self.parallel,
            "elapsed": self.elapsed,
            "hit_rate": self.hit_rate,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "failed": self.failed,
            "tasks_lost": self.tasks_lost,
            "pool_respawns": self.pool_respawns,
            "breaker_state": self.breaker_state,
            "breaker_trips": self.breaker_trips,
        }


class _ResilienceCounters:
    """Mutable per-batch tallies feeding :class:`BatchMetrics`."""

    __slots__ = (
        "retries", "timeouts", "hedges", "hedges_won", "failed",
        "tasks_lost", "pool_respawns",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.hedges = 0
        self.hedges_won = 0
        self.failed = 0
        self.tasks_lost = 0
        self.pool_respawns = 0


def _deterministic_backoff(
    key: str, retry: int, base: float, cap: float
) -> float:
    """Exponential backoff with jitter derived from the cache key.

    The jitter factor in ``[0.5, 1.0]`` is a pure function of
    ``(key, retry)`` — retries de-synchronize across requests without
    any global random state, so a rerun backs off identically.
    """
    if base <= 0.0 or retry < 1:
        return 0.0
    frac = int(key_digest(f"{key}#retry{retry}")[:8], 16) / 0xFFFFFFFF
    return min(cap, base * 2.0 ** (retry - 1) * (0.5 + 0.5 * frac))


def _call_with_deadline(fn, deadline: float, name: str):
    """Run ``fn`` on a daemon thread; abandon it after ``deadline``.

    Python cannot kill a running thread, so on timeout the worker is
    left to finish (or not) in the background — the daemon flag
    guarantees it can never block interpreter exit.
    """
    box: list[tuple[str, Any]] = []

    def runner() -> None:
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            box.append(("error", exc))

    thread = threading.Thread(
        target=runner, daemon=True, name=f"engine-{name}"
    )
    thread.start()
    thread.join(deadline)
    if not box:
        raise TaskDeadlineError(
            f"attempt exceeded the {deadline:.3g}s deadline "
            "(worker thread abandoned)"
        )
    status, value = box[0]
    if status == "error":
        raise value
    return value


# ----------------------------------------------------------------------
# Method dispatch (shared by the engine and its pool workers)
# ----------------------------------------------------------------------


def _dispatch_solve(request: SolveRequest) -> Any:
    """Run the requested algorithm; returns the raw solution object."""
    dims, classes, method = request.dims, request.classes, request.method
    mode = method.convolution_mode
    if mode is not None:
        from ..core.convolution import solve_convolution

        return solve_convolution(
            dims, classes, mode=mode, kernel=method.kernel_family
        )
    if method is SolveMethod.MVA or method is SolveMethod.MVA_NUMPY:
        from ..core.mva import solve_mva

        return solve_mva(dims, classes, kernel=method.kernel_family)
    if method is SolveMethod.EXACT:
        from ..core.exact import solve_exact

        return solve_exact(dims, classes)
    if method is SolveMethod.SERIES:
        from ..core.series_solver import solve_series

        return solve_series(dims, classes)
    if method is SolveMethod.BRUTE_FORCE:
        from ..core.model import solve_brute_force_solution

        return solve_brute_force_solution(dims, classes)
    if method is SolveMethod.ROBUST:
        from ..robust.facade import _solve_robust_direct

        return _solve_robust_direct(dims, classes)
    raise ConfigurationError(
        f"method {method.value!r} has no engine dispatch"
    )  # pragma: no cover - enum is exhaustive above


def _measurable(solution: Any) -> tuple[Any, str]:
    """Unwrap container solutions (RobustSolution) to a measure object."""
    inner = getattr(solution, "solution", None)
    if inner is not None and hasattr(solution, "diagnostics"):
        return inner, getattr(solution, "method", "") or "robust"
    return solution, getattr(solution, "method", "")


def _result_from(
    request: SolveRequest, solution: Any, elapsed: float
) -> SolveResult:
    measurable, label = _measurable(solution)
    return SolveResult.from_solution(
        request, measurable, solved_by=label, elapsed=elapsed
    )


def _solve_one(request: SolveRequest) -> SolveResult:
    """Plain uncached solve -> result; the pool-worker entry point."""
    began = time.perf_counter()
    solution = _dispatch_solve(request)
    return _result_from(request, solution, time.perf_counter() - began)


def _supervised_worker(
    request: SolveRequest,
    task_index: int,
    attempt: int,
    chaos: FaultPlan | None,
) -> SolveResult:
    """Pool-worker entry point for supervised batches.

    Applies any planned chaos fault for ``(task_index, attempt)`` first
    (a kill fault hard-exits this worker process), then solves.
    """
    if chaos is not None:
        chaos.apply_task(task_index, attempt, in_worker=True)
    return _solve_one(request)


class _SubDimsView:
    """Measure adapter reading a grid solution at a sub-switch.

    Presents the ``blocking(r)/concurrency(r)/call_acceptance(r)``
    interface :meth:`SolveResult.from_solution` expects, with every
    query pinned ``at`` the member's dimensions.
    """

    def __init__(self, solution: PerformanceSolution, at) -> None:
        self._solution = solution
        self._at = at

    def blocking(self, r: int) -> float:
        return self._solution.blocking(r, at=self._at)

    def concurrency(self, r: int) -> float:
        return self._solution.concurrency(r, at=self._at)

    def call_acceptance(self, r: int) -> float:
        return self._solution.call_acceptance(r, at=self._at)

    @property
    def method(self) -> str:
        return self._solution.method


def sliced_solution(
    solution: PerformanceSolution, dims
) -> PerformanceSolution:
    """A :class:`PerformanceSolution` restricted to a sub-switch.

    Because Algorithm 1's recurrence at cell ``(m1, m2)`` only reads
    cells dominated by it, the sliced grids are bit-for-bit what a
    direct solve at ``dims`` would have produced.
    """
    if not solution.dims.contains(dims):
        raise ConfigurationError(
            f"cannot slice {solution.dims} down to larger dims {dims}"
        )
    n1, n2 = dims.n1, dims.n2
    return PerformanceSolution(
        dims=dims,
        classes=solution.classes,
        h=tuple(grid[: n1 + 1, : n2 + 1] for grid in solution.h),
        log_q=(
            None if solution.log_q is None
            else solution.log_q[: n1 + 1, : n2 + 1]
        ),
        method=solution.method,
        e_smooth={
            r: grid[: n1 + 1, : n2 + 1]
            for r, grid in solution.e_smooth.items()
        },
    )


def _reorder_permutation(
    stored: Sequence, requested: Sequence
) -> list[int] | None:
    """``perm[i]`` = index in ``stored`` matching ``requested[i]``.

    None when the class multisets differ (cannot happen for equal
    canonical keys, but kept defensive).
    """
    if tuple(stored) == tuple(requested):
        return None
    stored_order = canonical_order(stored)
    requested_order = canonical_order(requested)
    perm = [0] * len(requested)
    for k, i in enumerate(requested_order):
        j = stored_order[k]
        if class_params(stored[j]) != class_params(requested[i]):
            raise ComputationError(
                "cache entry class parameters do not match the request "
                "(key collision)"
            )
        perm[i] = j
    return perm


# ----------------------------------------------------------------------
# The pool supervisor
# ----------------------------------------------------------------------


class _Task:
    """Mutable supervision state for one batch member."""

    __slots__ = (
        "index", "request", "key", "attempts", "retries_used",
        "next_attempt", "inflight", "hedged", "queued", "losses",
        "last_error",
    )

    def __init__(self, index: int, request: SolveRequest, key: str) -> None:
        self.index = index
        self.request = request
        self.key = key
        self.attempts: list[TaskAttempt] = []
        self.retries_used = 0
        self.next_attempt = 0
        self.inflight = 0
        self.hedged = False
        self.queued = False
        self.losses = 0
        self.last_error: BaseException | None = None


class _PoolSupervisor:
    """Drives one parallel fan-out with deadlines, retries, hedging and
    pool-respawn recovery.

    The supervisor owns the :class:`ProcessPoolExecutor` for the batch:
    one future per task attempt (no chunking — supervision needs
    per-task granularity).  A broken pool (a worker died) invalidates
    every in-flight future; the supervisor records those attempts as
    ``lost``, respawns the pool, and requeues only the unfinished
    tasks.  Attempts running past the deadline are abandoned — the
    worker process cannot be preempted, but its eventual result is
    discarded and a fresh attempt takes over; since solves are pure,
    whichever attempt wins produces the identical result.
    """

    TICK = 0.05

    def __init__(
        self,
        engine: "BatchSolver",
        misses: list[tuple[int, SolveRequest, str]],
        results: list,
        counters: _ResilienceCounters,
        strict: bool,
        config: "EngineConfig | None" = None,
    ) -> None:
        self.engine = engine
        # Per-call override (e.g. a service deadline budget mapped onto
        # this batch); defaults to the engine's standing config.
        self.config = config if config is not None else engine.config
        self.results = results
        self.counters = counters
        self.strict = strict
        self.tasks = [_Task(i, request, key) for i, request, key in misses]
        self.unfinished = {task.index: task for task in self.tasks}
        self.inflight: dict[Any, tuple[_Task, int, float, bool]] = {}
        self.retry_queue: list[tuple[float, _Task]] = []
        self.workers = min(engine._worker_count(), max(1, len(misses)))
        self.executor: ProcessPoolExecutor | None = None
        self.broke = False

    # ------------------------------------------------------------------

    def run(self) -> None:
        self.executor = ProcessPoolExecutor(max_workers=self.workers)
        try:
            for task in self.tasks:
                self._launch(task)
            while self.unfinished:
                if self.broke:
                    self._respawn()
                self._launch_due_retries()
                if not self.inflight:
                    if not self._sleep_until_retry():
                        break  # pragma: no cover - defensive
                    continue
                done, _ = wait(
                    list(self.inflight), timeout=self.TICK,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    if self._collect(future):
                        self.broke = True
                if self.broke:
                    self._respawn()
                self._enforce_deadlines_and_hedges()
        finally:
            # Non-blocking: abandoned workers drain on their own.
            self.executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------

    def _launch(self, task: _Task, is_hedge: bool = False) -> None:
        attempt = task.next_attempt
        task.next_attempt += 1
        self._submit(task, attempt, is_hedge)

    def _submit(self, task: _Task, attempt: int, is_hedge: bool) -> None:
        try:
            future = self.executor.submit(
                _supervised_worker, task.request, task.index, attempt,
                self.config.chaos,
            )
        except BrokenExecutor:
            # The pool died between detections; the main loop respawns
            # and requeues this task (its inflight count stays 0).
            self.broke = True
            task.next_attempt = max(task.next_attempt - 1, attempt)
            return
        self.inflight[future] = (task, attempt, time.monotonic(), is_hedge)
        task.inflight += 1

    def _collect(self, future) -> bool:
        """Fold one completed future into the task state.

        Returns True when the future failed because the pool broke (the
        caller then respawns).
        """
        task, attempt, started, is_hedge = self.inflight.pop(future)
        elapsed = time.monotonic() - started
        if task.index not in self.unfinished:
            return False  # stale attempt of an already-finished task
        task.inflight -= 1
        try:
            result = future.result()
        except BrokenExecutor:
            # Put the entry back: _respawn records every in-flight
            # attempt as lost uniformly.
            self.inflight[future] = (task, attempt, started, is_hedge)
            task.inflight += 1
            return True
        except CrossbarError as exc:
            self._attempt_failed(
                task, attempt, elapsed, exc, retryable=False
            )
        except OSError as exc:
            self._attempt_failed(task, attempt, elapsed, exc, retryable=True)
        except Exception as exc:  # noqa: BLE001 - unknown worker failure
            self._attempt_failed(
                task, attempt, elapsed, exc, retryable=False
            )
        else:
            task.attempts.append(TaskAttempt(attempt, "ok", elapsed))
            if is_hedge:
                self.counters.hedges_won += 1
            self._finish(task, result)
        return False

    def _finish(self, task: _Task, result: SolveResult) -> None:
        self.engine._store(task.key, result)
        self.results[task.index] = result
        del self.unfinished[task.index]

    def _attempt_failed(
        self,
        task: _Task,
        attempt: int,
        elapsed: float,
        exc: BaseException,
        retryable: bool,
        outcome: str = "error",
    ) -> None:
        detail = f"{type(exc).__name__}: {str(exc)[:120]}"
        task.attempts.append(TaskAttempt(attempt, outcome, elapsed, detail))
        task.last_error = exc
        logger.warning(
            "supervised attempt failed %s",
            kv(task=task.index, attempt=attempt, outcome=outcome,
               detail=detail, retryable=retryable),
        )
        if task.queued:
            return  # a retry is already scheduled
        if retryable and task.retries_used < self.config.max_retries:
            task.retries_used += 1
            self.counters.retries += 1
            delay = _deterministic_backoff(
                task.key, task.retries_used,
                self.config.retry_backoff, self.config.backoff_cap,
            )
            task.queued = True
            self.retry_queue.append((time.monotonic() + delay, task))
        elif task.inflight > 0:
            pass  # a sibling attempt (hedge/abandoned) may still win
        else:
            self._fail(task, exc)

    def _fail(self, task: _Task, exc: BaseException) -> None:
        self.counters.failed += 1
        del self.unfinished[task.index]
        if self.strict:
            raise exc
        self.results[task.index] = FailedResult(
            request=task.request,
            error_type=type(exc).__name__,
            error_message=str(exc),
            attempts=tuple(task.attempts),
        )
        logger.warning(
            "request terminally failed %s",
            kv(task=task.index, error=type(exc).__name__,
               attempts=len(task.attempts)),
        )

    # ------------------------------------------------------------------

    def _respawn(self) -> None:
        """Rebuild a broken pool; requeue exactly the lost tasks."""
        self.broke = False
        self.counters.pool_respawns += 1
        now = time.monotonic()
        lost: set[int] = set()
        for task, attempt, started, _ in self.inflight.values():
            if task.index in self.unfinished:
                task.attempts.append(
                    TaskAttempt(
                        attempt, "lost", now - started,
                        "worker process died; pool respawned",
                    )
                )
                task.losses += 1
                lost.add(task.index)
            task.inflight = 0
        self.inflight.clear()
        self.counters.tasks_lost += len(lost)
        try:
            self.executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - already broken
            pass
        self.executor = ProcessPoolExecutor(max_workers=self.workers)
        logger.warning(
            "process pool respawned %s",
            kv(lost=len(lost), unfinished=len(self.unfinished),
               workers=self.workers),
        )
        for task in list(self.unfinished.values()):
            if task.inflight or task.queued:
                continue
            if task.losses > self.config.max_retries + 1:
                # A task that keeps killing workers is terminal: free
                # requeues must not respawn the pool forever.
                self._fail(
                    task,
                    ComputationError(
                        f"request killed {task.losses} pool workers; "
                        "giving up"
                    ),
                )
                continue
            self._launch(task)

    def _launch_due_retries(self) -> None:
        if not self.retry_queue:
            return
        now = time.monotonic()
        still: list[tuple[float, _Task]] = []
        for ready_at, task in self.retry_queue:
            if task.index not in self.unfinished:
                continue
            if ready_at <= now:
                task.queued = False
                self._launch(task)
            else:
                still.append((ready_at, task))
        self.retry_queue = still

    def _sleep_until_retry(self) -> bool:
        """Nothing in flight: sleep until the earliest queued retry."""
        pending = [
            ready_at for ready_at, task in self.retry_queue
            if task.index in self.unfinished
        ]
        if not pending:
            return False
        delay = max(0.0, min(pending) - time.monotonic())
        time.sleep(min(delay, 0.25))
        return True

    def _enforce_deadlines_and_hedges(self) -> None:
        deadline = self.config.task_deadline
        hedge_after = self.config.hedge_after
        if deadline is None and hedge_after is None:
            return
        now = time.monotonic()
        for future, (task, attempt, started, _) in list(
            self.inflight.items()
        ):
            if task.index not in self.unfinished:
                continue
            age = now - started
            if deadline is not None and age > deadline:
                # Abandon: the worker cannot be preempted, but its
                # eventual result is discarded.
                del self.inflight[future]
                task.inflight -= 1
                self.counters.timeouts += 1
                self._attempt_failed(
                    task, attempt, age,
                    TaskDeadlineError(
                        f"attempt exceeded the {deadline:.3g}s deadline"
                    ),
                    retryable=True, outcome="timeout",
                )
            elif (
                hedge_after is not None
                and not task.hedged
                and not task.queued
                and age > hedge_after
            ):
                task.hedged = True
                self.counters.hedges += 1
                self._launch(task, is_hedge=True)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class BatchSolver:
    """Cached, batched, optionally process-parallel solve engine."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig.from_env()
        self._results = LRUCache(self.config.lru_size)
        self._solutions = LRUCache(self.config.solution_lru_size)
        chaos = self.config.chaos
        self.disk = (
            DiskCache(
                self.config.disk_cache,
                strict=self.config.strict_cache,
                breaker=CircuitBreaker(
                    failure_threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown,
                ),
                fault_hook=(
                    CacheFaultInjector(chaos)
                    if chaos is not None and chaos.cache_faults
                    else None
                ),
            )
            if self.config.disk_cache is not None
            else None
        )
        self.stats = EngineStats()
        self.last_metrics: BatchMetrics | None = None

    # ------------------------------------------------------------------
    # Single-request entry points
    # ------------------------------------------------------------------

    def solve(self, request: SolveRequest) -> SolveResult:
        """One request, through every cache layer."""
        key = request.cache_key
        self.stats._add("lookups")
        hit = self._lookup(key, request)
        if hit is not None:
            return hit
        began = time.perf_counter()
        solution = self._solution_memo_or_solve(request, key)
        result = _result_from(
            request, solution, time.perf_counter() - began
        )
        self._store(key, result)
        return result

    def solution_for(self, request: SolveRequest) -> Any:
        """The full solution object (grids and all), memoized.

        This is what the legacy entry points
        (:meth:`CrossbarModel.solve`, ``solve_robust``, the sweep
        helpers) delegate to: they keep returning rich solution objects
        while sharing the engine's memoization — and its transient-error
        retry policy (``max_retries`` with deterministic backoff).
        """
        self.stats._add("lookups")
        key = request.cache_key
        entry = self._solutions.get(key)
        if entry is not None:
            stored_classes, solution = entry
            if stored_classes == request.classes:
                self.stats._add("memory_hits")
                return solution
            if isinstance(solution, PerformanceSolution):
                perm = _reorder_permutation(stored_classes, request.classes)
                self.stats._add("memory_hits")
                if perm is None:
                    return solution
                return replace(
                    solution,
                    classes=request.classes,
                    h=tuple(solution.h[j] for j in perm),
                    e_smooth={
                        i: solution.e_smooth[j]
                        for i, j in enumerate(perm)
                        if j in solution.e_smooth
                    },
                    _concurrency_cache={},
                )
            # Non-grid solution types are cheapest to just re-solve for
            # the new class order (measure indices must line up).
        solution = self._dispatch_with_retries(request)
        self.stats._add("solves")
        self._solutions.put(key, (request.classes, solution))
        return solution

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        requests: Sequence[SolveRequest],
        parallel: bool | None = None,
        strict: bool | None = None,
        *,
        task_deadline: float | None = None,
    ) -> list[SolveResult | FailedResult]:
        """Evaluate a batch: cache, share Q-grids, then fan out.

        Results are returned in request order regardless of execution
        order, and are byte-identical whether served serially, in
        parallel, or from cache.  Under the (default) supervisor a
        request that terminally fails comes back as a
        :class:`FailedResult` in its slot while the rest of the batch
        completes; pass ``strict=True`` (or configure
        ``strict_batch=True``) to re-raise the first terminal failure
        instead.

        ``task_deadline`` bounds *this call only*: per-attempt
        wall-clock seconds, combined with any configured
        ``EngineConfig.task_deadline`` by taking the tighter of the
        two.  The serving daemon uses it to map a client's remaining
        ``deadline_ms`` budget onto the batch (cache hits and grid
        reads are unaffected — only fresh solves are bounded).
        """
        requests = list(requests)
        began = time.perf_counter()
        strict_mode = (
            self.config.strict_batch if strict is None else strict
        )
        run_config = self.config
        if task_deadline is not None:
            configured = run_config.task_deadline
            bound = (
                task_deadline if configured is None
                else min(configured, task_deadline)
            )
            # Clamp: an already-blown budget still needs a positive
            # deadline for the attempt machinery to time out cleanly.
            run_config = replace(
                run_config, task_deadline=max(bound, 1e-3)
            )
        counters = _ResilienceCounters()
        breaker = self.disk.breaker if self.disk is not None else None
        trips_before = breaker.trips if breaker is not None else 0
        results: list[SolveResult | FailedResult | None] = (
            [None] * len(requests)
        )
        memory_hits = disk_hits = 0

        misses: list[tuple[int, SolveRequest, str]] = []
        for i, request in enumerate(requests):
            if not isinstance(request, SolveRequest):
                raise ConfigurationError(
                    f"evaluate_many needs SolveRequest items, got "
                    f"{request!r}"
                )
            key = request.cache_key
            self.stats._add("lookups")
            before_disk = self.stats.disk_hits
            hit = self._lookup(key, request)
            if hit is not None:
                if self.stats.disk_hits > before_disk:
                    disk_hits += 1
                else:
                    memory_hits += 1
                results[i] = hit
            else:
                misses.append((i, request, key))

        grid_groups, grid_points, leftover = self._serve_grid_groups(
            misses, results
        )

        use_pool = self._should_parallelize(len(leftover), parallel)
        if use_pool and run_config.supervised:
            _PoolSupervisor(
                self, leftover, results, counters, strict_mode,
                config=run_config,
            ).run()
        elif use_pool:
            self._solve_parallel(leftover, results)
        elif run_config.supervised:
            for i, request, key in leftover:
                results[i] = self._solve_serial_supervised(
                    i, request, key, counters, strict_mode,
                    config=run_config,
                )
        else:
            for i, request, key in leftover:
                began_one = time.perf_counter()
                solution = self._solution_memo_or_solve(request, key)
                result = _result_from(
                    request, solution, time.perf_counter() - began_one
                )
                self._store(key, result)
                results[i] = result

        metrics = BatchMetrics(
            requests=len(requests),
            memory_hits=memory_hits,
            disk_hits=disk_hits,
            grid_groups=grid_groups,
            grid_points=grid_points,
            solved=len(leftover),
            parallel=use_pool,
            elapsed=time.perf_counter() - began,
            retries=counters.retries,
            timeouts=counters.timeouts,
            hedges=counters.hedges,
            hedges_won=counters.hedges_won,
            failed=counters.failed,
            tasks_lost=counters.tasks_lost,
            pool_respawns=counters.pool_respawns,
            breaker_state=(
                breaker.state if breaker is not None else "disabled"
            ),
            breaker_trips=(
                breaker.trips - trips_before if breaker is not None else 0
            ),
        )
        self.last_metrics = metrics
        logger.info("batch evaluated %s", kv(**metrics.to_dict()))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cache bookkeeping
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is left alone)."""
        self._results.clear()
        self._solutions.clear()

    def cached_result(
        self, request: SolveRequest, memory_only: bool = False
    ) -> SolveResult | None:
        """A cache-only lookup: memory then disk, never a solve.

        The brownout ladder's "stale-cache" stage serves exclusively
        from here — under that much pressure the daemon answers what it
        already knows and clears everything else.  Counts as a normal
        lookup in ``engine.stats``; returns None on a miss.

        ``memory_only=True`` skips the disk tier entirely — the serving
        daemon's cache-hot fast path calls this *on the event loop*, so
        it must never block on file I/O.
        """
        if not isinstance(request, SolveRequest):
            raise ConfigurationError(
                f"cached_result needs a SolveRequest, got {request!r}"
            )
        self.stats._add("lookups")
        if memory_only:
            hit = self._results.get(request.cache_key)
            if hit is None:
                return None
            self.stats._add("memory_hits")
            return self._adapt(hit, request)
        return self._lookup(request.cache_key, request)

    def _lookup(self, key: str, request: SolveRequest) -> SolveResult | None:
        hit = self._results.get(key)
        if hit is not None:
            self.stats._add("memory_hits")
            return self._adapt(hit, request)
        if self.disk is not None:
            payload = self.disk.load(key)
            if payload is not None:
                try:
                    result = SolveResult.from_dict(payload)
                except (KeyError, TypeError, ValueError) as exc:
                    if self.config.strict_cache:
                        from .cache import CacheCorruptionError

                        raise CacheCorruptionError(
                            f"disk cache payload for {key!r} does not "
                            f"deserialize: {exc}"
                        ) from exc
                    return None
                self.stats._add("disk_hits")
                self._results.put(key, result)
                return self._adapt(result, request)
        return None

    def _store(self, key: str, result: SolveResult) -> None:
        self.stats._add("solves")
        self._results.put(key, result)
        if self.disk is not None:
            self.disk.store(key, result.to_dict())

    def _adapt(self, hit: SolveResult, request: SolveRequest) -> SolveResult:
        """Re-address a cached result to the incoming request."""
        perm = _reorder_permutation(hit.request.classes, request.classes)
        if perm is not None:
            hit = hit.reordered(perm, request)
        elif hit.request != request:
            hit = replace(hit, request=request)
        return replace(hit, from_cache=True, elapsed=0.0)

    def _solution_memo_or_solve(
        self, request: SolveRequest, key: str
    ) -> Any:
        entry = self._solutions.get(key)
        if entry is not None and entry[0] == request.classes:
            return entry[1]
        solution = _dispatch_solve(request)
        self._solutions.put(key, (request.classes, solution))
        return solution

    def _dispatch_with_retries(self, request: SolveRequest) -> Any:
        """Dispatch with the engine's transient-error retry policy.

        Only ``OSError`` is retried: solver failures
        (:class:`CrossbarError`) are deterministic, so retrying them
        cannot change the outcome.
        """
        last: OSError | None = None
        for attempt in range(self.config.max_retries + 1):
            if attempt:
                delay = _deterministic_backoff(
                    request.cache_key, attempt,
                    self.config.retry_backoff, self.config.backoff_cap,
                )
                if delay:
                    time.sleep(delay)
                logger.warning(
                    "retrying solve %s",
                    kv(attempt=attempt, error=str(last)[:80]),
                )
            try:
                return _dispatch_solve(request)
            except OSError as exc:
                last = exc
        raise last

    # ------------------------------------------------------------------
    # Supervised serial solving
    # ------------------------------------------------------------------

    def _solve_serial_supervised(
        self,
        index: int,
        request: SolveRequest,
        key: str,
        counters: _ResilienceCounters,
        strict: bool,
        config: "EngineConfig | None" = None,
    ) -> SolveResult | FailedResult:
        """One task under supervision, in-process.

        Same retry/deadline semantics as the pool supervisor; chaos
        kill faults are simulated (raised) rather than executed, so a
        serial batch survives to supervise them.
        """
        cfg = config if config is not None else self.config
        attempts: list[TaskAttempt] = []
        last_error: BaseException | None = None
        attempt = 0
        retries_used = 0
        while True:
            began = time.perf_counter()
            try:
                result = self._run_serial_attempt(
                    index, request, key, attempt,
                    deadline=cfg.task_deadline,
                )
            except TaskDeadlineError as exc:
                counters.timeouts += 1
                attempts.append(
                    TaskAttempt(
                        attempt, "timeout",
                        time.perf_counter() - began, str(exc),
                    )
                )
                last_error, retryable = exc, True
            except OSError as exc:
                attempts.append(
                    TaskAttempt(
                        attempt, "error", time.perf_counter() - began,
                        f"{type(exc).__name__}: {str(exc)[:120]}",
                    )
                )
                last_error, retryable = exc, True
            except CrossbarError as exc:
                attempts.append(
                    TaskAttempt(
                        attempt, "error", time.perf_counter() - began,
                        f"{type(exc).__name__}: {str(exc)[:120]}",
                    )
                )
                last_error, retryable = exc, False
            else:
                attempts.append(
                    TaskAttempt(attempt, "ok", time.perf_counter() - began)
                )
                return result
            logger.warning(
                "supervised attempt failed %s",
                kv(task=index, attempt=attempt,
                   outcome=attempts[-1].outcome,
                   detail=attempts[-1].detail, retryable=retryable),
            )
            if retryable and retries_used < cfg.max_retries:
                retries_used += 1
                counters.retries += 1
                delay = _deterministic_backoff(
                    key, retries_used, cfg.retry_backoff, cfg.backoff_cap
                )
                if delay:
                    time.sleep(delay)
                attempt += 1
                continue
            counters.failed += 1
            if strict:
                raise last_error
            return FailedResult(
                request=request,
                error_type=type(last_error).__name__,
                error_message=str(last_error),
                attempts=tuple(attempts),
            )

    def _run_serial_attempt(
        self,
        index: int,
        request: SolveRequest,
        key: str,
        attempt: int,
        deadline: float | None = None,
    ) -> SolveResult:
        def attempt_fn() -> SolveResult:
            chaos = self.config.chaos
            if chaos is not None:
                chaos.apply_task(index, attempt, in_worker=False)
            began = time.perf_counter()
            solution = self._solution_memo_or_solve(request, key)
            result = _result_from(
                request, solution, time.perf_counter() - began
            )
            self._store(key, result)
            return result

        if deadline is None:
            deadline = self.config.task_deadline
        if deadline is not None:
            return _call_with_deadline(
                attempt_fn, deadline, name=f"task-{index}"
            )
        return attempt_fn()

    # ------------------------------------------------------------------
    # Q-grid sharing
    # ------------------------------------------------------------------

    def _serve_grid_groups(
        self,
        misses: list[tuple[int, SolveRequest, str]],
        results: list[SolveResult | FailedResult | None],
    ) -> tuple[int, int, list[tuple[int, SolveRequest, str]]]:
        """Serve groups of misses from one shared Algorithm 1 grid.

        Misses sharing (ordered traffic mix, grid method) need a single
        solve at the componentwise-max dimensions; every member is a
        ratio read at its own ``(n1, n2)``.  Returns the group count,
        points served, and the misses left for individual solving.
        """
        groups: dict[tuple, list[tuple[int, SolveRequest, str]]] = {}
        leftover: list[tuple[int, SolveRequest, str]] = []
        for item in misses:
            _, request, _ = item
            if request.method.is_grid:
                group_key = (
                    request.method,
                    tuple(class_params(c) for c in request.classes),
                )
                groups.setdefault(group_key, []).append(item)
            else:
                leftover.append(item)

        grid_groups = grid_points = 0
        for members in groups.values():
            if len(members) < 2:
                leftover.extend(members)
                continue
            base_request = members[0][1]
            from ..core.state import SwitchDimensions

            top = SwitchDimensions(
                max(m[1].dims.n1 for m in members),
                max(m[1].dims.n2 for m in members),
            )
            try:
                solution = self.solution_for(base_request.with_dims(top))
            except CrossbarError as exc:
                # E.g. a Bernoulli admissibility guard that only trips
                # at the enlarged dims: solve members individually.
                logger.warning(
                    "grid group fell back to point solves %s",
                    kv(dims=str(top), reason=str(exc)[:80]),
                )
                leftover.extend(members)
                continue
            grid_groups += 1
            for i, request, key in members:
                began = time.perf_counter()
                view = _SubDimsView(solution, request.dims)
                result = _result_from(
                    request, view, time.perf_counter() - began
                )
                self._store(key, result)
                self.stats._add("grid_reads")
                results[i] = result
                grid_points += 1
        return grid_groups, grid_points, leftover

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _worker_count(self) -> int:
        if self.config.processes is not None:
            return max(1, self.config.processes)
        return max(1, os.cpu_count() or 1)

    def _should_parallelize(
        self, n_misses: int, parallel: bool | None
    ) -> bool:
        if n_misses < 2:
            return False
        if parallel is not None:
            return parallel and self._worker_count() > 1
        return (
            n_misses >= self.config.parallel_threshold
            and self._worker_count() > 1
        )

    def _solve_parallel(
        self,
        misses: list[tuple[int, SolveRequest, str]],
        results: list[SolveResult | FailedResult | None],
    ) -> None:
        """Unsupervised fan-out (``supervised`` off): plain pool map."""
        workers = min(self._worker_count(), len(misses))
        chunk = self.config.chunk_size or max(
            1, math.ceil(len(misses) / (workers * 4))
        )
        with ProcessPoolExecutor(max_workers=workers) as executor:
            solved = executor.map(
                _solve_one, [m[1] for m in misses], chunksize=chunk
            )
            for (i, _, key), result in zip(misses, solved):
                self._store(key, result)
                results[i] = result


# ----------------------------------------------------------------------
# The process-wide default engine
# ----------------------------------------------------------------------

_default_engine: BatchSolver | None = None
_default_lock = threading.Lock()


def get_default_engine() -> BatchSolver:
    """The shared engine every thin delegate routes through."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = BatchSolver()
        return _default_engine


def set_default_engine(engine: BatchSolver) -> BatchSolver:
    """Swap the process-wide engine (returns the previous one)."""
    global _default_engine
    with _default_lock:
        previous, _default_engine = _default_engine, engine
    return previous if previous is not None else engine


def reset_default_engine() -> None:
    """Drop the process-wide engine (a fresh one is built lazily)."""
    global _default_engine
    with _default_lock:
        _default_engine = None
