"""Declarative parameter sweeps with CSV output.

Research workflows around this model are sweeps: blocking vs size,
revenue vs burstiness, utilization vs load.  This module runs them from
a declarative specification and writes tidy CSV (one row per sweep
point, one column per measure), so downstream plotting/analysis never
touches the solver API.

Example
-------
>>> from repro.core.traffic import TrafficClass
>>> from repro.experiments.sweeper import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     name="blocking-vs-size",
...     sizes=[4, 8],
...     classes_for=lambda n: [
...         TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="p")
...     ],
...     measures=("blocking", "utilization"),
... )
>>> rows = run_sweep(spec)
>>> rows[0]["n"], sorted(rows[0])[:2]
(4, ['blocking[p]', 'n'])
"""

from __future__ import annotations

import csv
import io
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..core.convolution import solve_convolution
from ..core.measures import PerformanceSolution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError

__all__ = ["SweepSpec", "run_sweep", "write_csv"]

#: Measures resolvable per class.
_PER_CLASS = {
    "blocking": lambda s, r: s.blocking(r),
    "non_blocking": lambda s, r: s.non_blocking(r),
    "concurrency": lambda s, r: s.concurrency(r),
    "call_congestion": lambda s, r: s.call_congestion(r),
    "throughput": lambda s, r: s.throughput(r),
}

#: Measures of the whole switch.
_GLOBAL = {
    "revenue": lambda s: s.revenue(),
    "utilization": lambda s: s.utilization(),
    "mean_occupancy": lambda s: s.mean_occupancy(),
    "total_throughput": lambda s: s.total_throughput(),
}


@dataclass
class SweepSpec:
    """A size sweep: which switches, which traffic, which measures."""

    name: str
    sizes: Sequence[int]
    classes_for: Callable[[int], Sequence[TrafficClass]]
    measures: Sequence[str] = ("blocking", "concurrency", "revenue")
    solver: Callable[
        [SwitchDimensions, Sequence[TrafficClass]], PerformanceSolution
    ] = field(default=solve_convolution)

    def validate(self) -> None:
        if not self.sizes:
            raise ConfigurationError("sweep needs at least one size")
        for measure in self.measures:
            if measure not in _PER_CLASS and measure not in _GLOBAL:
                raise ConfigurationError(
                    f"unknown measure {measure!r}; expected one of "
                    f"{sorted(_PER_CLASS) + sorted(_GLOBAL)}"
                )


def run_sweep(spec: SweepSpec) -> list[dict]:
    """Execute a sweep; one flat dict per size."""
    spec.validate()
    rows: list[dict] = []
    for n in spec.sizes:
        dims = SwitchDimensions.square(n)
        classes = list(spec.classes_for(n))
        solution = spec.solver(dims, classes)
        row: dict = {"n": n}
        for measure in spec.measures:
            if measure in _GLOBAL:
                row[measure] = _GLOBAL[measure](solution)
            else:
                for r, cls in enumerate(classes):
                    label = cls.name or f"class{r}"
                    row[f"{measure}[{label}]"] = _PER_CLASS[measure](
                        solution, r
                    )
        rows.append(row)
    return rows


def write_csv(rows: Sequence[dict], path: str | Path | None = None) -> str:
    """Serialize sweep rows as CSV; optionally write to ``path``.

    Columns are the union of keys across rows (sizes with fewer classes
    leave blanks), ordered by first appearance.
    """
    if not rows:
        raise ConfigurationError("no rows to serialize")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
