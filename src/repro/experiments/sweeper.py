"""Declarative parameter sweeps with CSV output.

Research workflows around this model are sweeps: blocking vs size,
revenue vs burstiness, utilization vs load.  This module runs them from
a declarative specification and writes tidy CSV (one row per sweep
point, one column per measure), so downstream plotting/analysis never
touches the solver API.

Example
-------
>>> from repro.core.traffic import TrafficClass
>>> from repro.experiments.sweeper import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     name="blocking-vs-size",
...     sizes=[4, 8],
...     classes_for=lambda n: [
...         TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="p")
...     ],
...     measures=("blocking", "utilization"),
... )
>>> rows = run_sweep(spec)
>>> rows[0]["n"], sorted(rows[0])[:2]
(4, ['blocking[p]', 'n'])
"""

from __future__ import annotations

import csv
import io
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..api import SolveRequest, SolveResult, solve_many
from ..core.measures import PerformanceSolution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError

__all__ = ["SweepSpec", "run_sweep", "write_csv"]

#: Measures resolvable per class (solution-object accessors; used by
#: the deprecated custom-``solver`` path).
_PER_CLASS = {
    "blocking": lambda s, r: s.blocking(r),
    "non_blocking": lambda s, r: s.non_blocking(r),
    "concurrency": lambda s, r: s.concurrency(r),
    "call_congestion": lambda s, r: s.call_congestion(r),
    "throughput": lambda s, r: s.throughput(r),
}

#: Measures of the whole switch (solution-object accessors).
_GLOBAL = {
    "revenue": lambda s: s.revenue(),
    "utilization": lambda s: s.utilization(),
    "mean_occupancy": lambda s: s.mean_occupancy(),
    "total_throughput": lambda s: s.total_throughput(),
}

#: The same measures read off a :class:`~repro.api.SolveResult` (the
#: engine path).  ``SolveResult.from_solution`` computes the aggregates
#: with the same ``fsum`` formulas, so the two maps agree bit-for-bit.
_PER_CLASS_RESULT = {
    "blocking": lambda res, r: res.blocking[r],
    "non_blocking": lambda res, r: res.non_blocking[r],
    "concurrency": lambda res, r: res.concurrency[r],
    "call_congestion": lambda res, r: res.call_congestion[r],
    "throughput": lambda res, r: res.throughput[r],
}

_GLOBAL_RESULT = {
    "revenue": lambda res: res.revenue,
    "utilization": lambda res: res.utilization,
    "mean_occupancy": lambda res: res.mean_occupancy,
    "total_throughput": lambda res: res.total_throughput,
}


@dataclass
class SweepSpec:
    """A size sweep: which switches, which traffic, which measures.

    ``solver`` is deprecated: by default the sweep runs through the
    batched engine (:func:`repro.api.solve_many`), which deduplicates
    repeated points and serves constant-mix sweeps from one shared
    Q-grid.  Passing a custom solver still works but forgoes batching.
    """

    name: str
    sizes: Sequence[int]
    classes_for: Callable[[int], Sequence[TrafficClass]]
    measures: Sequence[str] = ("blocking", "concurrency", "revenue")
    solver: Callable[
        [SwitchDimensions, Sequence[TrafficClass]], PerformanceSolution
    ] | None = None

    def validate(self) -> None:
        if not self.sizes:
            raise ConfigurationError("sweep needs at least one size")
        for measure in self.measures:
            if measure not in _PER_CLASS and measure not in _GLOBAL:
                raise ConfigurationError(
                    f"unknown measure {measure!r}; expected one of "
                    f"{sorted(_PER_CLASS) + sorted(_GLOBAL)}"
                )


def _result_row(
    spec: SweepSpec, n: int, result: SolveResult
) -> dict:
    row: dict = {"n": n}
    for measure in spec.measures:
        if measure in _GLOBAL_RESULT:
            row[measure] = _GLOBAL_RESULT[measure](result)
        else:
            for r, cls in enumerate(result.classes):
                label = cls.name or f"class{r}"
                row[f"{measure}[{label}]"] = _PER_CLASS_RESULT[measure](
                    result, r
                )
    return row


def _run_sweep_legacy(spec: SweepSpec) -> list[dict]:
    rows: list[dict] = []
    for n in spec.sizes:
        dims = SwitchDimensions.square(n)
        classes = list(spec.classes_for(n))
        solution = spec.solver(dims, classes)
        row: dict = {"n": n}
        for measure in spec.measures:
            if measure in _GLOBAL:
                row[measure] = _GLOBAL[measure](solution)
            else:
                for r, cls in enumerate(classes):
                    label = cls.name or f"class{r}"
                    row[f"{measure}[{label}]"] = _PER_CLASS[measure](
                        solution, r
                    )
        rows.append(row)
    return rows


def run_sweep(spec: SweepSpec) -> list[dict]:
    """Execute a sweep; one flat dict per size.

    The default path batches every point through
    :func:`repro.api.solve_many`: cached points are free, and sweeps
    whose traffic mix does not depend on ``n`` are served from a single
    Algorithm 1 grid solved at the largest size.
    """
    spec.validate()
    if spec.solver is not None:
        warnings.warn(
            "SweepSpec.solver is deprecated; leave it unset to run the "
            "sweep through the batched engine (repro.api.solve_many)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _run_sweep_legacy(spec)
    requests = [
        SolveRequest.square(n, tuple(spec.classes_for(n)))
        for n in spec.sizes
    ]
    results = solve_many(requests)
    rows: list[dict] = []
    for n, result in zip(spec.sizes, results):
        if getattr(result, "failed", False):
            # A terminally failed point (engine FailedResult): keep the
            # sweep alive, record the error; write_csv unions columns,
            # so measure cells stay blank for this row.
            rows.append(
                {
                    "n": n,
                    "error": f"{result.error_type}: {result.error_message}",
                }
            )
            continue
        rows.append(_result_row(spec, n, result))
    return rows


def write_csv(rows: Sequence[dict], path: str | Path | None = None) -> str:
    """Serialize sweep rows as CSV; optionally write to ``path``.

    Columns are the union of keys across rows (sizes with fewer classes
    leave blanks), ordered by first appearance.
    """
    if not rows:
        raise ConfigurationError("no rows to serialize")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
