"""One-shot reproduction report: every figure and table, one command.

``generate_report(output_dir)`` (CLI: ``crossbar-repro report``)
regenerates the paper's Figures 1-4 and Tables 1-2 and writes

* ``<id>.txt`` — the rendered table/series (same artifacts the
  benchmarks produce);
* ``<id>.json`` — machine-readable data;
* ``summary.txt`` — a one-page pass/fail digest of the reproduction
  criteria (the qualitative shape checks of DESIGN.md §5).

This is the "regenerate everything" entry point for downstream users
who want the reproduction evidence without running pytest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..reporting.series import FigureSeries
from ..reporting.tables import format_table
from ..workloads import (
    figure1,
    figure2,
    figure3,
    figure4,
    table1_rows,
    table2_rows,
)

__all__ = ["generate_report", "ReproductionCheck"]


@dataclass(frozen=True)
class ReproductionCheck:
    """One qualitative reproduction criterion and its outcome."""

    experiment: str
    claim: str
    passed: bool

    def render(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.experiment}: {self.claim}"


def _figure_json(figure: FigureSeries) -> dict:
    return {
        "title": figure.title,
        "x_label": figure.x_label,
        "x": list(figure.x_values),
        "curves": {c.label: list(c.values) for c in figure.curves},
    }


def _check_figure1(figure: FigureSeries) -> list[ReproductionCheck]:
    poisson = figure.curve("poisson").values
    upper_bound = all(
        b <= p + 1e-15
        for curve in figure.curves[1:]
        for p, b in zip(poisson, curve.values)
    )
    small = (
        abs(poisson[-1] - figure.curves[-1].values[-1]) / poisson[-1]
        < 0.005
    )
    return [
        ReproductionCheck(
            "figure1", "Poisson upper-bounds smooth curves", upper_bound
        ),
        ReproductionCheck(
            "figure1", "smooth effect is a <0.5% perturbation", small
        ),
    ]


def _check_figure2(figure: FigureSeries) -> list[ReproductionCheck]:
    poisson = figure.curve("poisson").values
    above = all(
        b >= p - 1e-15
        for curve in figure.curves[1:]
        for p, b in zip(poisson, curve.values)
    )
    gaps = [c.values[-1] - poisson[-1] for c in figure.curves[1:]]
    growing = all(b > a for a, b in zip(gaps, gaps[1:]))
    return [
        ReproductionCheck(
            "figure2", "peaky curves exceed the Poisson baseline", above
        ),
        ReproductionCheck(
            "figure2", "impact grows with beta~ (dramatic)", growing
        ),
    ]


def _check_figure3(figure: FigureSeries) -> list[ReproductionCheck]:
    shifted = all(
        m > a
        for beta in ("0.0012", "0.0024")
        for a, m in zip(
            figure.curve(f"R2 only, beta~={beta}").values[1:],
            figure.curve(f"R1+R2, beta~={beta}").values[1:],
        )
    )
    return [
        ReproductionCheck(
            "figure3", "Poisson class shifts the operating point up",
            shifted,
        )
    ]


def _check_figure4(figure: FigureSeries) -> list[ReproductionCheck]:
    narrow = figure.curves[0].values
    wide = figure.curves[1].values
    dominated = all(w > 5 * n for n, w in zip(narrow, wide))
    return [
        ReproductionCheck(
            "figure4", "a=2 blocks >5x more at equal load", dominated
        )
    ]


def _check_table2(rows_by_set: dict[int, list[dict]]) -> list[ReproductionCheck]:
    checks = []
    for set_index, rows in rows_by_set.items():
        grad_ok = all(
            abs(row["dW_drho1"] - row["paper_dW_drho1"])
            <= 0.015 * abs(row["paper_dW_drho1"])
            for row in rows
        )
        revenue_ok = all(
            abs(row["revenue"] - row["paper_revenue"])
            <= 0.02 * abs(row["paper_revenue"])
            for row in rows
        )
        gradient_negative = all(
            row["dW_dburstiness2"] < 0 for row in rows if row["N"] >= 4
        )
        checks.extend(
            [
                ReproductionCheck(
                    f"table2/set{set_index}",
                    "dW/drho1 matches printed values (<=1.5%)",
                    grad_ok,
                ),
                ReproductionCheck(
                    f"table2/set{set_index}",
                    "W(N) matches printed values (<=2%)",
                    revenue_ok,
                ),
                ReproductionCheck(
                    f"table2/set{set_index}",
                    "burstiness gradient negative for N>=4",
                    gradient_negative,
                ),
            ]
        )
    return checks


def generate_report(output_dir: str | Path) -> list[ReproductionCheck]:
    """Regenerate every experiment into ``output_dir``; return checks."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    checks: list[ReproductionCheck] = []

    figures = {
        "figure1": figure1(),
        "figure2": figure2(),
        "figure3": figure3(),
        "figure4": figure4(),
    }
    for name, figure in figures.items():
        (out / f"{name}.txt").write_text(figure.render() + "\n")
        (out / f"{name}.json").write_text(
            json.dumps(_figure_json(figure), indent=2) + "\n"
        )
    checks += _check_figure1(figures["figure1"])
    checks += _check_figure2(figures["figure2"])
    checks += _check_figure3(figures["figure3"])
    checks += _check_figure4(figures["figure4"])

    t1 = table1_rows()
    (out / "table1.txt").write_text(
        format_table(
            ["N", "rho~1 paper", "rho~1 formula", "rho~2 paper",
             "rho~2 formula"],
            t1,
            title="Table 1",
        )
        + "\n"
    )
    table1_ok = all(
        abs(printed - formula) / printed < 5e-3
        for _, printed, formula, printed2, formula2 in t1
        for printed, formula in ((printed, formula), (printed2, formula2))
    )
    checks.append(
        ReproductionCheck(
            "table1", "printed loads match the tau/C(N,a) formula",
            table1_ok,
        )
    )

    rows_by_set = {}
    for set_index in (0, 1, 2):
        rows = table2_rows(set_index)
        rows_by_set[set_index] = rows
        (out / f"table2_set{set_index}.json").write_text(
            json.dumps(rows, indent=2, default=str) + "\n"
        )
        (out / f"table2_set{set_index}.txt").write_text(
            format_table(
                ["N", "dW/drho1", "paper", "dW/db2", "paper", "blocking",
                 "paper", "W", "paper"],
                [
                    [
                        r["N"], r["dW_drho1"], r["paper_dW_drho1"],
                        r["dW_dburstiness2"], r["paper_dW_dburstiness2"],
                        r["blocking"], r["paper_blocking"],
                        r["revenue"], r["paper_revenue"],
                    ]
                    for r in rows
                ],
                title=f"Table 2, set {set_index}",
            )
            + "\n"
        )
    checks += _check_table2(rows_by_set)

    summary = "\n".join(check.render() for check in checks)
    passed = sum(check.passed for check in checks)
    summary += f"\n\n{passed}/{len(checks)} reproduction criteria pass.\n"
    (out / "summary.txt").write_text(summary)
    return checks
