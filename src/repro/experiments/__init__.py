"""Reproduction reporting and declarative experiment sweeps."""

from .report import ReproductionCheck, generate_report
from .sweeper import SweepSpec, run_sweep, write_csv

__all__ = [
    "ReproductionCheck",
    "SweepSpec",
    "generate_report",
    "run_sweep",
    "write_csv",
]
