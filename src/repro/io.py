"""JSON serialization of models, classes, and solutions.

Lets experiments be defined in version-controllable config files and
results archived as machine-readable records:

* :func:`model_to_dict` / :func:`model_from_dict` — round-trip a
  :class:`~repro.core.model.CrossbarModel` (dimensions + traffic mix);
* :func:`load_model` / :func:`save_model` — file variants;
* :func:`solution_to_dict` — archive every standard measure of a
  solved model.

The schema is deliberately flat and explicit::

    {
      "n1": 32, "n2": 32,
      "classes": [
        {"name": "data", "alpha": 0.001, "beta": 0.0,
         "mu": 1.0, "a": 1, "weight": 1.0},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from .core.measures import PerformanceSolution
from .core.model import CrossbarModel
from .core.state import SwitchDimensions
from .core.traffic import TrafficClass
from .exceptions import ConfigurationError

__all__ = [
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "class_to_dict",
    "class_from_dict",
    "solution_to_dict",
]

_CLASS_KEYS = {"name", "alpha", "beta", "mu", "a", "weight"}


def class_to_dict(cls: TrafficClass) -> dict:
    """Flat JSON-ready record of one traffic class."""
    return {
        "name": cls.name,
        "alpha": cls.alpha,
        "beta": cls.beta,
        "mu": cls.mu,
        "a": cls.a,
        "weight": cls.weight,
    }


def class_from_dict(record: dict) -> TrafficClass:
    """Inverse of :func:`class_to_dict` (unknown keys rejected)."""
    if not isinstance(record, dict):
        raise ConfigurationError(
            f"traffic class record must be an object, got {type(record)}"
        )
    unknown = set(record) - _CLASS_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown traffic-class fields: {sorted(unknown)}"
        )
    if "alpha" not in record:
        raise ConfigurationError("traffic class needs at least 'alpha'")
    return TrafficClass(
        alpha=float(record["alpha"]),
        beta=float(record.get("beta", 0.0)),
        mu=float(record.get("mu", 1.0)),
        a=int(record.get("a", 1)),
        weight=(
            float(record["weight"]) if "weight" in record else None
        ),
        name=str(record.get("name", "")),
    )


def model_to_dict(model: CrossbarModel) -> dict:
    """Flat JSON-ready record of a whole model."""
    return {
        "n1": model.dims.n1,
        "n2": model.dims.n2,
        "classes": [class_to_dict(c) for c in model.classes],
    }


def model_from_dict(record: dict) -> CrossbarModel:
    """Inverse of :func:`model_to_dict`."""
    if not isinstance(record, dict):
        raise ConfigurationError(
            f"model record must be an object, got {type(record)}"
        )
    for key in ("n1", "n2", "classes"):
        if key not in record:
            raise ConfigurationError(f"model record missing {key!r}")
    classes = [class_from_dict(c) for c in record["classes"]]
    return CrossbarModel(
        SwitchDimensions(int(record["n1"]), int(record["n2"])),
        tuple(classes),
    )


def save_model(model: CrossbarModel, path: str | Path) -> None:
    """Write a model config as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(model_to_dict(model), indent=2) + "\n"
    )


def load_model(path: str | Path) -> CrossbarModel:
    """Read a model config written by :func:`save_model` (or by hand)."""
    try:
        record = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in {path}: {exc}") from exc
    return model_from_dict(record)


def solution_to_dict(solution: PerformanceSolution) -> dict:
    """Archive every standard measure of a solved model."""
    return {
        "dims": [solution.dims.n1, solution.dims.n2],
        "method": solution.method,
        "revenue": solution.revenue(),
        "utilization": solution.utilization(),
        "mean_occupancy": solution.mean_occupancy(),
        "classes": [
            {
                "name": cls.name or f"class-{r}",
                "kind": cls.kind,
                "a": cls.a,
                "blocking": solution.blocking(r),
                "call_congestion": solution.call_congestion(r),
                "concurrency": solution.concurrency(r),
                "throughput": solution.throughput(r),
            }
            for r, cls in enumerate(solution.classes)
        ],
    }
