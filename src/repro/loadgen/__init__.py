"""Declarative cluster load harness (spec -> generators -> report).

The serving side of this repo reproduces the paper's loss-system
behavior; this package reproduces its *offered traffic*: a
:class:`~repro.loadgen.spec.LoadSpec` describes an experiment (BPP
open-loop arrivals or closed-loop virtual users, request mix, seed),
:func:`~repro.loadgen.runner.run_load` fans it out over generator
processes each driving persistent connections from a lean asyncio
client, and the merged :class:`~repro.loadgen.runner.LoadReport`
carries throughput, latency percentiles, the measured 503 blocking
ratio, and per-shard tallies —
:func:`~repro.loadgen.runner.expected_fleet_blocking` gives the
matching Erlang-B prediction per shard and fleet-wide, and
:func:`~repro.loadgen.runner.availability_weighted_blocking` extends
it to a degraded fleet with dead shards (with or without failover).

Run it from the CLI: ``crossbar-repro loadgen --spec load.toml``.
"""

from .aioclient import WireClient, WireReply
from .runner import (
    LoadReport,
    UNSHARDED,
    availability_weighted_blocking,
    expected_fleet_blocking,
    run_load,
)
from .spec import DEFAULT_CLASSES, LoadSpec

__all__ = [
    "DEFAULT_CLASSES",
    "LoadReport",
    "LoadSpec",
    "UNSHARDED",
    "WireClient",
    "WireReply",
    "availability_weighted_blocking",
    "expected_fleet_blocking",
    "run_load",
]
