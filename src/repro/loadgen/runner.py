"""Generator processes + merged results for the load harness.

:func:`run_load` turns a declarative :class:`~repro.loadgen.spec.LoadSpec`
into ``spec.generators`` OS processes, each running a lean asyncio
event loop (:mod:`repro.loadgen.aioclient`) that drives the target
over persistent connections — open-loop BPP arrivals (Poisson batches,
geometric batch sizes: the paper's bursty traffic offered to a loss
system) or a closed loop of virtual users.  Per-generator counters are
merged into one :class:`LoadReport` with latency percentiles, measured
blocking, and per-shard tallies read off the cluster's ``X-Shard``
response headers.

:func:`expected_fleet_blocking` is the analysis side: each shard is an
independent Erlang loss system offered its measured per-shard arrival
rate, so the fleet-wide prediction is the offered-load-weighted mean
of ``B(c, lambda_s * H)`` — the same cross-validation contract the
single-daemon tests enforce against ``erlang_b``.
:func:`availability_weighted_blocking` extends the prediction to a
*degraded* fleet: with ``d`` of ``W`` workers dead, failover
concentrates the whole arrival stream on the survivors, so the fleet
blocks like ``B(c, (lambda / (W - d)) * H)``; without failover the
dead shards' keys are lost outright and the prediction becomes the
availability-weighted mixture ``d/W + (1 - d/W) B(c, (lambda/W) H)``.

Transport failures are classified, not just counted: ``errors`` stays
the transport-level total while ``connect_refused`` (a dead or
respawning worker's port) and ``read_errors`` (reset or stalled
mid-reply) split it, both fleet-wide and per shard.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import queue as queue_mod
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..baselines.erlang import erlang_b
from ..exceptions import ConfigurationError
from ..logging import get_logger, kv
from .aioclient import WireClient, WireReply
from .spec import LoadSpec

__all__ = [
    "LoadReport",
    "run_load",
    "expected_fleet_blocking",
    "availability_weighted_blocking",
]

logger = get_logger("loadgen")

#: Shard bucket for replies that carried no ``X-Shard`` header
#: (single-daemon targets, router-level 503s).
UNSHARDED = -1


@dataclass
class LoadReport:
    """Merged outcome of one load run."""

    spec: LoadSpec
    #: Requests put on the wire.
    offered: int = 0
    #: 200s.
    completed: int = 0
    #: 503s (admission/brownout/router cleared).
    rejected: int = 0
    #: 504s (deadline budget expired).
    deadline_exceeded: int = 0
    #: Transport-level failures (reset, timeout); total of the two
    #: classes below.
    errors: int = 0
    #: ... of which the TCP connect was refused outright (a dead or
    #: mid-respawn worker's port).
    connect_refused: int = 0
    #: ... of which the connection dropped or timed out after connect
    #: (reset mid-reply, stalled worker).
    read_errors: int = 0
    #: Any other HTTP status.
    other: int = 0
    #: Measured wall-clock of the longest generator (seconds).
    duration: float = 0.0
    #: Sorted round-trip latencies of completed requests (seconds).
    latencies: list[float] = field(default_factory=list)
    #: shard -> {"ok", "rejected", "deadline_exceeded",
    #: "connect_refused", "read_error"} counts.  Replies are
    #: attributed by their ``X-Shard`` header; transport failures by
    #: the route table's address -> shard map (``UNSHARDED`` when the
    #: target is a single daemon or the router).
    per_shard: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration else 0.0

    @property
    def blocking_measured(self) -> float:
        """rejected / offered-to-the-gate, the service's own ratio."""
        reached = self.completed + self.rejected + self.deadline_exceeded
        return self.rejected / reached if reached else 0.0

    def latency_ms(self, quantile: float) -> float:
        if not self.latencies:
            return 0.0
        index = min(
            len(self.latencies) - 1,
            int(quantile * len(self.latencies)),
        )
        return self.latencies[index] * 1e3

    def shard_blocking(self, shard: int) -> float:
        counts = self.per_shard.get(shard, {})
        reached = counts.get("ok", 0) + counts.get("rejected", 0)
        return counts.get("rejected", 0) / reached if reached else 0.0

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "connect_refused": self.connect_refused,
            "read_errors": self.read_errors,
            "other": self.other,
            "duration_s": self.duration,
            "throughput_rps": self.throughput_rps,
            "blocking_measured": self.blocking_measured,
            "latency_ms": {
                "mean": (
                    sum(self.latencies) / len(self.latencies) * 1e3
                    if self.latencies else 0.0
                ),
                "p50": self.latency_ms(0.50),
                "p90": self.latency_ms(0.90),
                "p99": self.latency_ms(0.99),
            },
            "per_shard": {
                str(shard): dict(counts)
                for shard, counts in sorted(self.per_shard.items())
            },
        }


def expected_fleet_blocking(
    report: LoadReport, servers: int, hold_s: float
) -> float:
    """Offered-load-weighted Erlang-B prediction across shards.

    Each shard is an independent loss system with ``servers`` tokens
    and holding time ``hold_s``; its offered rate is the measured
    per-shard arrival rate.  Shardless replies (bucket ``UNSHARDED``)
    are treated as one more loss system.
    """
    if report.duration <= 0:
        return 0.0
    total = 0
    weighted = 0.0
    for counts in report.per_shard.values():
        offered = counts.get("ok", 0) + counts.get("rejected", 0)
        if offered == 0:
            continue
        rate = offered / report.duration
        weighted += offered * erlang_b(servers, rate * hold_s)
        total += offered
    return weighted / total if total else 0.0


def availability_weighted_blocking(
    workers: int,
    dead: int,
    servers: int,
    rate: float,
    hold_s: float,
    *,
    failover: bool = True,
) -> float:
    """Predicted fleet blocking with ``dead`` of ``workers`` shards down.

    The availability-weighted extension of the paper's loss model: each
    live worker is an Erlang loss system with ``servers`` tokens and
    holding time ``hold_s``, and the fleet offers ``rate`` calls/s
    uniformly over the key space.

    With *failover* the router re-routes a dead shard's keys to the
    survivors, so every arrival still reaches a server group — but the
    per-worker offered load concentrates from ``rate / workers`` to
    ``rate / (workers - dead)``:

        B_fleet = B(c, (rate / (W - d)) * H)

    Without failover a dead shard's keys are lost outright, giving the
    availability-weighted mixture:

        B_fleet = d/W + (1 - d/W) * B(c, (rate / W) * H)

    Every worker dead blocks everything either way.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if not 0 <= dead <= workers:
        raise ConfigurationError(
            f"dead must be in [0, {workers}], got {dead}"
        )
    live = workers - dead
    if live <= 0:
        return 1.0
    if failover:
        return erlang_b(servers, (rate / live) * hold_s)
    survivor = erlang_b(servers, (rate / workers) * hold_s)
    lost = dead / workers
    return lost + (1.0 - lost) * survivor


# ----------------------------------------------------------------------
# Generator process
# ----------------------------------------------------------------------


def _generator_main(
    spec_record: dict,
    host: str,
    port: int,
    index: int,
    out_queue: Any,
) -> None:
    spec = LoadSpec.from_dict(spec_record)
    try:
        result = asyncio.run(_generate(spec, host, port, index))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        out_queue.put({"index": index, "fatal": f"{type(exc).__name__}: {exc}"})
        raise
    out_queue.put(result)


async def _route_table(
    spec: LoadSpec, host: str, port: int
) -> tuple[
    dict[str, tuple[str, int]], dict[tuple[str, int], int]
] | None:
    """(key -> worker address, address -> shard) from ``/cluster``.

    The second map attributes *transport* failures — which never carry
    an ``X-Shard`` reply header — to the shard whose port refused or
    reset.  None when the target is not a hash-sharded cluster (single
    daemon, reuseport fleet, or ``shard_direct`` disabled) — then
    everything goes to the given address.
    """
    if not spec.shard_direct:
        return None
    from ..service.sharding import HashRing

    client = WireClient(host, port, timeout=spec.timeout)
    try:
        reply = await client.roundtrip("GET", "/cluster")
        if reply.status != 200:
            return None
        chart = reply.json()
        if chart.get("strategy") != "hash":
            return None
        shards = {
            entry["shard"]: (entry["host"], entry["port"])
            for entry in chart.get("shards", [])
            if entry.get("port")
        }
        if len(shards) < chart.get("workers", 0):
            return None
        ring = HashRing(
            chart["workers"], chart.get("hash_replicas", 64)
        )
        routes = {
            key: shards[ring.shard_for(key)]
            for _, key in spec.request_entries()
        }
        addr_shards = {
            address: shard for shard, address in shards.items()
        }
        return routes, addr_shards
    except (ConnectionError, OSError, asyncio.TimeoutError,
            ValueError, KeyError):
        return None
    finally:
        await client.close()


async def _generate(
    spec: LoadSpec, host: str, port: int, index: int
) -> dict:
    import json

    rng = random.Random(spec.seed + index)
    table = await _route_table(spec, host, port)
    routes, addr_shards = table if table else (None, {})
    template = WireClient(host, port, timeout=spec.timeout)
    #: (pre-framed wire bytes, (host, port) to send them to)
    frames: list[tuple[bytes, tuple[str, int]]] = []
    for record, key in spec.request_entries():
        payload: dict = {"request": record}
        if spec.deadline_ms is not None:
            payload["deadline_ms"] = spec.deadline_ms
        address = (
            routes.get(key, (host, port)) if routes else (host, port)
        )
        frames.append((template.frame(
            "POST", "/solve", json.dumps(payload).encode("utf-8")
        ), address))

    counters = {
        "index": index, "offered": 0, "completed": 0, "rejected": 0,
        "deadline_exceeded": 0, "errors": 0, "connect_refused": 0,
        "read_errors": 0, "other": 0,
    }
    latencies: list[float] = []
    per_shard: dict[int, dict[str, int]] = {}

    def shard_bucket(shard: int) -> dict[str, int]:
        return per_shard.setdefault(shard, {
            "ok": 0, "rejected": 0, "deadline_exceeded": 0,
            "connect_refused": 0, "read_error": 0,
        })

    def record_reply(reply: WireReply, elapsed: float) -> None:
        shard = reply.shard
        shard = UNSHARDED if shard is None else shard
        bucket = shard_bucket(shard)
        if reply.status == 200:
            counters["completed"] += 1
            latencies.append(elapsed)
            bucket["ok"] += 1
        elif reply.status == 503:
            counters["rejected"] += 1
            bucket["rejected"] += 1
        elif reply.status == 504:
            counters["deadline_exceeded"] += 1
            bucket["deadline_exceeded"] += 1
        else:
            counters["other"] += 1

    def record_error(
        exc: BaseException, address: tuple[str, int]
    ) -> None:
        counters["errors"] += 1
        bucket = shard_bucket(addr_shards.get(address, UNSHARDED))
        if isinstance(exc, ConnectionRefusedError):
            counters["connect_refused"] += 1
            bucket["connect_refused"] += 1
        else:
            counters["read_errors"] += 1
            bucket["read_error"] += 1

    # Warmup: fill every cache tier along each request's path,
    # through the same per-worker connections the run will use.
    if spec.warmup:
        warm: dict[tuple[str, int], WireClient] = {}
        for wire, address in frames:
            client = warm.get(address)
            if client is None:
                client = warm[address] = WireClient(
                    *address, timeout=spec.timeout
                )
            for _ in range(spec.warmup):
                try:
                    await client.roundtrip_raw(wire)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    pass
        for client in warm.values():
            await client.close()
    await template.close()

    began = time.perf_counter()
    end = began + spec.duration
    if spec.mode == "closed":
        await _closed_loop(
            spec, frames, rng, end, counters, record_reply, record_error
        )
    else:
        await _open_loop(
            spec, frames, rng, end, counters, record_reply, record_error
        )
    counters["duration"] = time.perf_counter() - began
    counters["latencies"] = latencies
    counters["per_shard"] = per_shard
    return counters


async def _closed_loop(
    spec: LoadSpec, frames: list[tuple[bytes, tuple[str, int]]],
    rng: random.Random, end: float, counters: dict, record_reply,
    record_error,
) -> None:
    async def user() -> None:
        clients: dict[tuple[str, int], WireClient] = {}
        perf = time.perf_counter
        pick = rng.randrange
        count = len(frames)
        try:
            while True:
                t0 = perf()
                if t0 >= end:
                    break
                wire, address = frames[pick(count)]
                client = clients.get(address)
                if client is None:
                    client = clients[address] = WireClient(
                        *address, timeout=spec.timeout
                    )
                counters["offered"] += 1
                try:
                    reply = await client.roundtrip_raw(wire)
                except (ConnectionError, OSError,
                        asyncio.TimeoutError) as exc:
                    record_error(exc, address)
                    continue
                record_reply(reply, perf() - t0)
        finally:
            for client in clients.values():
                await client.close()

    await asyncio.gather(*(user() for _ in range(spec.connections)))


async def _open_loop(
    spec: LoadSpec, frames: list[tuple[bytes, tuple[str, int]]],
    rng: random.Random, end: float, counters: dict, record_reply,
    record_error,
) -> None:
    """Poisson batch arrivals x geometric batch sizes (BPP), open loop:
    arrivals never wait on completions, so overload shows up as 503s
    (blocked calls cleared), not as a slowed arrival process."""
    semaphore = asyncio.Semaphore(spec.connections)
    idle: dict[tuple[str, int], list[WireClient]] = {}
    tasks: list[asyncio.Task] = []
    batch_rate = spec.rate / spec.generators
    # Geometric batch size with mean burst_mean: P(k) = (1-q) q^(k-1).
    q = 1.0 - 1.0 / spec.burst_mean if spec.burst_mean > 1.0 else 0.0

    async def fire(wire: bytes, address: tuple[str, int]) -> None:
        async with semaphore:
            stack = idle.setdefault(address, [])
            client = stack.pop() if stack else WireClient(
                *address, timeout=spec.timeout
            )
            t0 = time.perf_counter()
            try:
                reply = await client.roundtrip_raw(wire)
            except (ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                record_error(exc, address)
                await client.close()
            else:
                record_reply(reply, time.perf_counter() - t0)
            stack.append(client)

    loop = asyncio.get_running_loop()
    next_at = time.perf_counter()
    while True:
        next_at += rng.expovariate(batch_rate)
        if next_at >= end:
            break
        delay = next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        batch = 1
        while q and rng.random() < q:
            batch += 1
        for _ in range(batch):
            wire, address = frames[rng.randrange(len(frames))]
            counters["offered"] += 1
            tasks.append(loop.create_task(fire(wire, address)))
    if tasks:
        await asyncio.gather(*tasks)
    for stack in idle.values():
        for client in stack:
            await client.close()


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def _pick_start_method() -> str:
    if (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    ):
        return "fork"
    return "spawn"


def run_load(spec: LoadSpec, host: str, port: int) -> LoadReport:
    """Run one experiment: spawn generators, drive, merge the report."""
    ctx = multiprocessing.get_context(_pick_start_method())
    out_queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_generator_main,
            args=(spec.to_dict(), host, port, index, out_queue),
            name=f"repro-loadgen-{index}",
        )
        for index in range(spec.generators)
    ]
    for process in processes:
        process.start()
    report = LoadReport(spec=spec)
    budget = spec.duration + spec.timeout + 60.0
    deadline = time.monotonic() + budget
    collected = 0
    try:
        while collected < spec.generators:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"load generators did not report within {budget:.0f}s"
                )
            try:
                result = out_queue.get(True, min(remaining, 1.0))
            except queue_mod.Empty:
                continue
            collected += 1
            if "fatal" in result:
                raise RuntimeError(
                    f"load generator {result['index']} died: "
                    f"{result['fatal']}"
                )
            report.offered += result["offered"]
            report.completed += result["completed"]
            report.rejected += result["rejected"]
            report.deadline_exceeded += result["deadline_exceeded"]
            report.errors += result["errors"]
            report.connect_refused += result["connect_refused"]
            report.read_errors += result["read_errors"]
            report.other += result["other"]
            report.duration = max(report.duration, result["duration"])
            report.latencies.extend(result["latencies"])
            for shard, counts in result["per_shard"].items():
                bucket = report.per_shard.setdefault(shard, {})
                for name, value in counts.items():
                    bucket[name] = bucket.get(name, 0) + value
    finally:
        for process in processes:
            process.join(10.0)
            if process.is_alive():
                process.terminate()
                process.join(5.0)
    report.latencies.sort()
    logger.info(
        "load run merged %s",
        kv(offered=report.offered, completed=report.completed,
           rejected=report.rejected, rps=round(report.throughput_rps, 1)),
    )
    return report
