"""A lean asyncio wire client for driving the serving daemon hard.

``http.client`` costs a TCP handshake and a few object allocations per
request; at load-harness rates that overhead dominates the measurement.
:class:`WireClient` keeps one persistent HTTP/1.1 connection, writes
pre-framed bytes, and parses just enough of the response (status line,
headers, ``Content-Length`` body) to hand back the JSON envelope —
measuring the *service*, not the client stack.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = ["WireClient", "WireReply"]


class WireReply:
    """One parsed response: status, raw head bytes, raw body.

    Header access is lazy — the hot measurement loop only ever needs
    the status and the ``X-Shard`` header, so the per-reply header
    dict is built on first :attr:`headers` access, not per reply.
    """

    __slots__ = ("status", "body", "_head")

    def __init__(self, status: int, head: bytes, body: bytes) -> None:
        self.status = status
        self.body = body
        self._head = head  # lowercased response head (no body)

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def headers(self) -> dict[str, str]:
        """All response headers, parsed on demand.  The whole head is
        lowercased at read time, so values come back lowercase too —
        fine for the numeric/hex headers this client cares about."""
        headers: dict[str, str] = {}
        for line in self._head.decode("latin-1").split("\r\n")[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip()] = value.strip()
        return headers

    @property
    def shard(self) -> int | None:
        """The worker shard that answered (``X-Shard``), if clustered."""
        at = self._head.find(b"x-shard:")
        if at < 0:
            return None
        return int(self._head[at + 8:self._head.index(b"\r", at)])


class WireClient:
    """One persistent connection to a daemon or cluster router."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is not None and not self._writer.is_closing():
            return self._reader, self._writer  # type: ignore[return-value]
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        return self._reader, self._writer

    def frame(self, method: str, path: str, body: bytes = b"") -> bytes:
        """Pre-frame a request (hot loops reuse the same bytes)."""
        return (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1") + body

    async def roundtrip_raw(self, wire: bytes) -> WireReply:
        """Send pre-framed bytes, parse one reply; reconnects once if
        the pooled connection went stale (server-side close)."""
        for attempt in (0, 1):
            reader, writer = await self._ensure()
            try:
                writer.write(wire)
                await writer.drain()
                return await asyncio.wait_for(
                    self._read_reply(reader), self.timeout
                )
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                await self.close()
                if attempt == 1:
                    raise
        raise ConnectionError("unreachable")  # pragma: no cover

    async def roundtrip(
        self, method: str, path: str, payload: Any | None = None
    ) -> WireReply:
        body = (
            b"" if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        return await self.roundtrip_raw(self.frame(method, path, body))

    @staticmethod
    async def _read_reply(reader: asyncio.StreamReader) -> WireReply:
        head = (await reader.readuntil(b"\r\n\r\n")).lower()
        if not head.startswith(b"http/1."):
            raise ConnectionError(
                f"malformed status line {head[:32]!r}"
            )
        space = head.index(b" ")
        status = int(head[space + 1:space + 4])
        at = head.find(b"content-length:")
        length = (
            int(head[at + 15:head.index(b"\r", at)]) if at >= 0 else 0
        )
        body = await reader.readexactly(length) if length else b""
        return WireReply(status, head, body)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None
