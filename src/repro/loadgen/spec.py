"""Declarative load specifications (spec -> generators -> report).

A :class:`LoadSpec` describes a whole experiment the way the paper
describes an offered traffic mix: how many generator processes, the
arrival process (open-loop BPP — Poisson batch arrivals with geometric
batch sizes, the bursty-traffic model of the source paper — or a
closed loop of virtual users), the request mix, and the seed.  It
round-trips through TOML/dicts so experiments are checked into version
control, mirroring the declarative harness idiom cited in ROADMAP.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import ConfigurationError

__all__ = ["LoadSpec", "DEFAULT_CLASSES"]

#: The benchmark traffic mix: one Poisson class, one bursty BPP class
#: (same shape the service cross-validation tests use).
DEFAULT_CLASSES: tuple[dict, ...] = (
    {"name": "data", "rate": 0.002},
    {"name": "video", "alpha": 0.001, "beta": 0.0005},
)

_MODES = ("open", "closed")


@dataclass(frozen=True)
class LoadSpec:
    """One load experiment against a service or cluster."""

    #: Generator processes (each runs its own event loop + connections).
    generators: int = 2
    #: Concurrent in-flight requests per generator: the closed-loop
    #: virtual-user count, or the open-loop concurrency cap.
    connections: int = 64
    #: Measured seconds (after warmup).
    duration: float = 5.0
    #: ``"open"`` — Poisson batch arrivals at ``rate`` regardless of
    #: completions (the loss-system regime the 503 cross-validation
    #: needs); ``"closed"`` — ``connections`` virtual users in a
    #: request-response loop (the throughput regime).
    mode: str = "closed"
    #: Fleet-wide arrival-*batch* rate per second (open loop only),
    #: split evenly across generators.
    rate: float = 200.0
    #: Mean geometric batch size of one arrival (1.0 = pure Poisson;
    #: larger = burstier, the BPP knob).
    burst_mean: float = 1.0
    #: Square crossbar sizes in the request mix (uniform draw).
    sizes: tuple[int, ...] = (4, 6, 8, 10)
    #: Traffic classes as dicts: ``{"name", "rate"}`` for Poisson or
    #: ``{"name", "alpha", "beta"}`` for BPP.
    classes: tuple[dict, ...] = field(
        default_factory=lambda: tuple(dict(c) for c in DEFAULT_CLASSES)
    )
    #: Solve method name (None: server default).
    method: str | None = None
    #: Warmup round-trips per pool entry before the clock starts
    #: (fills caches; 0 measures the cold path too).
    warmup: int = 1
    #: Per-request deadline_ms stamped on the wire (None: unbounded).
    deadline_ms: float | None = None
    #: Seed of every generator's arrival/mix randomness (generator i
    #: uses ``seed + i``).
    seed: int = 19920817
    #: Socket timeout per round-trip (seconds).
    timeout: float = 30.0
    #: Route around the cluster router: fetch the ``/cluster`` shard
    #: map once and drive each request straight at the worker owning
    #: its canonical key (same consistent-hash ring, client side).
    #: Falls back to the given address when the target is not a
    #: hash-sharded cluster.
    shard_direct: bool = True

    def __post_init__(self) -> None:
        if self.generators < 1:
            raise ConfigurationError("generators must be >= 1")
        if self.connections < 1:
            raise ConfigurationError("connections must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.mode == "open" and self.rate <= 0:
            raise ConfigurationError("open-loop rate must be > 0")
        if self.burst_mean < 1.0:
            raise ConfigurationError("burst_mean must be >= 1.0")
        if not self.sizes:
            raise ConfigurationError("sizes must not be empty")
        if not self.classes:
            raise ConfigurationError("classes must not be empty")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be >= 0")

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        record = dataclasses.asdict(self)
        record["sizes"] = list(self.sizes)
        record["classes"] = [dict(c) for c in self.classes]
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "LoadSpec":
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(record) - names)
        if unknown:
            raise ConfigurationError(
                f"unknown load spec key(s): {', '.join(unknown)}"
            )
        payload = dict(record)
        if "sizes" in payload:
            payload["sizes"] = tuple(int(n) for n in payload["sizes"])
        if "classes" in payload:
            payload["classes"] = tuple(
                dict(c) for c in payload["classes"]
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigurationError(f"bad load spec: {exc}") from exc

    @classmethod
    def from_toml(cls, path: str | Path) -> "LoadSpec":
        """Parse a ``[loadgen]`` TOML file (``[[loadgen.classes]]``
        tables for the traffic mix)."""
        import tomllib

        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read load spec {str(path)!r}: {exc}"
            ) from exc
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(
                f"load spec {str(path)!r} is not valid TOML: {exc}"
            ) from exc
        section = document.get("loadgen", document)
        return cls.from_dict(section)

    def to_toml(self) -> str:
        lines = ["[loadgen]"]
        for spec_field in fields(self):
            if spec_field.name == "classes":
                continue
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            if isinstance(value, bool):
                lines.append(
                    f"{spec_field.name} = {'true' if value else 'false'}"
                )
            elif isinstance(value, (int, float)):
                lines.append(f"{spec_field.name} = {value!r}")
            elif isinstance(value, tuple):
                inner = ", ".join(repr(v) for v in value)
                lines.append(f"{spec_field.name} = [{inner}]")
            else:
                lines.append(f'{spec_field.name} = "{value}"')
        for cls_record in self.classes:
            lines.append("")
            lines.append("[[loadgen.classes]]")
            for key, value in cls_record.items():
                if isinstance(value, str):
                    lines.append(f'{key} = "{value}"')
                else:
                    lines.append(f"{key} = {value!r}")
        return "\n".join(lines) + "\n"

    # -- request materialization ---------------------------------------

    def request_dicts(self) -> list[dict]:
        """The request mix as wire payload dicts (one per size)."""
        return [record for record, _ in self.request_entries()]

    def request_entries(self) -> list[tuple[dict, str]]:
        """The request mix as ``(wire dict, canonical cache key)``
        pairs — the key is what client-side sharding routes on."""
        from ..api import SolveRequest
        from ..core.traffic import TrafficClass
        from ..methods import SolveMethod

        traffic = []
        for record in self.classes:
            record = dict(record)
            name = record.pop("name", None)
            if "rate" in record and "alpha" not in record:
                traffic.append(
                    TrafficClass.poisson(record["rate"], name=name)
                )
            else:
                traffic.append(TrafficClass(name=name, **record))
        entries = []
        for size in self.sizes:
            request = SolveRequest.square(size, tuple(traffic))
            if self.method is not None:
                request = dataclasses.replace(
                    request, method=SolveMethod(self.method)
                )
            entries.append((request.to_dict(), request.cache_key))
        return entries
