"""Exception hierarchy for the crossbar reproduction library.

All library-raised exceptions derive from :class:`CrossbarError` so that
callers can catch everything from this package with a single ``except``
clause while still distinguishing configuration problems from numerical
ones.
"""

from __future__ import annotations


class CrossbarError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(CrossbarError):
    """A model, traffic class, or scenario was mis-specified.

    Examples: non-positive switch dimensions, a traffic class whose
    bandwidth requirement exceeds the switch size, or BPP parameters
    outside the Bernoulli/Poisson/Pascal admissible region.
    """


class InvalidParameterError(ConfigurationError):
    """A single numeric parameter is outside its admissible range."""


class ComputationError(CrossbarError):
    """A numerical computation failed (overflow, non-convergence, ...)."""


class OverflowInRecursionError(ComputationError):
    """Algorithm 1's unscaled recursion overflowed or underflowed.

    Raised only when dynamic scaling is explicitly disabled; the default
    scaled recursion cannot overflow for any reachable parameterization.
    """


class ConvergenceError(ComputationError):
    """An iterative solver (CTMC, fixed point) failed to converge."""


class SimulationError(CrossbarError):
    """The discrete-event simulator reached an inconsistent state."""
