"""Self-validation: cross-check every applicable solver on one config.

A user adopting a performance model wants evidence it is computed
correctly *on their configuration*, not just on the library's test
matrix.  :func:`cross_validate` runs every solution method that is
feasible for the given model — Algorithm 1 in all three numeric modes,
Algorithm 2 (when its smooth-stability guard allows), the diagonal
series solver, exact rationals and brute-force enumeration and the raw
CTMC (when the state space is small enough) — and reports the worst
pairwise disagreement per measure.

Exposed on the CLI as ``crossbar-repro validate ...``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .core.convolution import solve_convolution
from .core.exact import solve_exact
from .core.model import CrossbarModel
from .core.mva import solve_mva
from .core.productform import solve_brute_force
from .core.series_solver import solve_series
from .core.state import SwitchDimensions, state_space_size
from .core.traffic import TrafficClass
from .ctmc import solve_ctmc
from .exceptions import ComputationError
from .methods import SolveMethod

#: The library implementations as imported; ``cross_validate`` routes a
#: method through the batched engine only while the module-level name
#: still points at one of these (tests monkeypatch the names to inject
#: failures, and the patched function must then actually be called).
_PRISTINE_SOLVERS = {
    "solve_convolution": solve_convolution,
    "solve_mva": solve_mva,
    "solve_series": solve_series,
    "solve_exact": solve_exact,
}

__all__ = ["ValidationReport", "cross_validate"]

#: Enumeration-based methods are skipped above this state-space size.
ENUMERATION_LIMIT = 20_000
#: Exact rational arithmetic is skipped above this capacity.
EXACT_CAPACITY_LIMIT = 48


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a cross-validation run."""

    dims: SwitchDimensions
    methods: tuple[str, ...]
    skipped: tuple[tuple[str, str], ...]  # (method, reason)
    worst_blocking_deviation: float
    worst_concurrency_deviation: float
    values: dict  # method -> {"blocking": [...], "concurrency": [...]}

    @property
    def consistent(self) -> bool:
        """True when all methods agree to ~1e-8 relative.

        Vacuous agreement does not count: a run in which *every*
        method was skipped is inconsistent — there is nothing to
        validate against, and reporting success would hide the problem.
        """
        if not self.methods:
            return False
        return (
            self.worst_blocking_deviation < 1e-8
            and self.worst_concurrency_deviation < 1e-8
        )

    def render(self) -> str:
        lines = [
            f"cross-validation on {self.dims} "
            f"({len(self.methods)} methods):"
        ]
        for method in self.methods:
            entry = self.values[method]
            lines.append(
                f"  {method:>18}: blocking="
                + ", ".join(f"{b:.10g}" for b in entry["blocking"])
            )
            lines.append(
                f"  {'':>18}  concurrency="
                + ", ".join(f"{e:.10g}" for e in entry["concurrency"])
            )
        for method, reason in self.skipped:
            lines.append(f"  {method:>18}: skipped ({reason})")
        lines.append(
            f"worst relative deviation: blocking "
            f"{self.worst_blocking_deviation:.3g}, concurrency "
            f"{self.worst_concurrency_deviation:.3g} -> "
            + ("CONSISTENT" if self.consistent else "INCONSISTENT")
        )
        return "\n".join(lines)


def _relative_spread(columns: list[list[float]]) -> float:
    worst = 0.0
    for values in zip(*columns):
        low, high = min(values), max(values)
        scale = max(abs(high), 1e-12)
        worst = max(worst, (high - low) / scale)
    return worst


def cross_validate(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> ValidationReport:
    """Run every feasible solver and compare their measures."""
    classes = tuple(classes)
    model = CrossbarModel(dims, classes)
    n_states = model.state_space_size

    values: dict = {}
    skipped: list[tuple[str, str]] = []

    def record(name: str, blocking: list[float], conc: list[float]) -> None:
        values[name] = {"blocking": blocking, "concurrency": conc}

    def run(name: str, method: SolveMethod, attr: str, call) -> None:
        # Solved through the batched engine: when the surrounding
        # session already evaluated this model (a sweep point, a robust
        # chain attempt) the validation re-run is a cache hit.  A
        # monkeypatched module-level solver bypasses the engine so the
        # replacement really runs (and its failures are attributed).
        fn = globals()[attr]
        try:
            if fn is _PRISTINE_SOLVERS[attr]:
                from .api import SolveRequest
                from .engine import get_default_engine

                solution = get_default_engine().solution_for(
                    SolveRequest(dims, classes, method)
                )
            else:
                solution = call(fn)
        except ComputationError as exc:
            skipped.append((name, str(exc)[:60]))
            return
        record(
            name,
            [solution.blocking(r) for r in range(len(classes))],
            [solution.concurrency(r) for r in range(len(classes))],
        )

    run("convolution/log", SolveMethod.CONVOLUTION,
        "solve_convolution", lambda fn: fn(dims, classes, mode="log"))
    run("convolution/scaled", SolveMethod.CONVOLUTION_SCALED,
        "solve_convolution", lambda fn: fn(dims, classes, mode="scaled"))
    run("convolution/float", SolveMethod.CONVOLUTION_FLOAT,
        "solve_convolution", lambda fn: fn(dims, classes, mode="float"))
    run("mva", SolveMethod.MVA, "solve_mva", lambda fn: fn(dims, classes))
    run("series", SolveMethod.SERIES,
        "solve_series", lambda fn: fn(dims, classes))

    if dims.capacity <= EXACT_CAPACITY_LIMIT:
        run("exact", SolveMethod.EXACT,
            "solve_exact", lambda fn: fn(dims, classes))
    else:
        skipped.append(("exact", f"capacity > {EXACT_CAPACITY_LIMIT}"))

    if n_states <= ENUMERATION_LIMIT:
        dist = solve_brute_force(dims, classes)
        record(
            "brute-force",
            [dist.blocking_probability(r) for r in range(len(classes))],
            [dist.concurrency(r) for r in range(len(classes))],
        )
        chain = solve_ctmc(dims, classes)
        record(
            "ctmc",
            [
                chain.blocking_probability(r)
                for r in range(len(classes))
            ],
            [chain.concurrency(r) for r in range(len(classes))],
        )
    else:
        skipped.append(
            ("brute-force", f"{n_states} states > {ENUMERATION_LIMIT}")
        )
        skipped.append(("ctmc", f"{n_states} states > {ENUMERATION_LIMIT}"))

    blocking_columns = [v["blocking"] for v in values.values()]
    conc_columns = [v["concurrency"] for v in values.values()]
    return ValidationReport(
        dims=dims,
        methods=tuple(values),
        skipped=tuple(skipped),
        worst_blocking_deviation=_relative_spread(blocking_columns),
        worst_concurrency_deviation=_relative_spread(conc_columns),
        values=values,
    )
