"""Golden-snapshot corpus: provenance-stamped records with drift diffing.

``tests/golden/*.json`` locks the reproduced figure series against
silent numeric drift.  This module is the one owner of that corpus'
on-disk format, shared by the pytest lock (``tests/test_golden.py``),
the refresh tool (``tools/refresh_golden.py``) and the verify runner:

* every refreshed file carries a ``"_provenance"`` header recording
  what generated it and under which schema/library version, so a stale
  snapshot is distinguishable from a stale solver;
* :meth:`GoldenCorpus.diff` reports *structured* drift (missing file,
  curve-set change, x-grid change, per-point value drift with the
  worst offender located) instead of a bare assert, so a refresh
  review shows exactly what moved;
* legacy headerless files load fine — provenance is added on the next
  refresh, never required.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = ["GoldenCorpus", "GoldenDrift", "figure_record"]

#: On-disk schema version for provenance-stamped snapshots.
SCHEMA_VERSION = 1

#: Relative drift below this is round-off, not a regression (matches
#: the historical pytest.approx(rel=1e-9) lock).
DRIFT_REL_TOL = 1e-9


@dataclass(frozen=True)
class GoldenDrift:
    """One structural or numeric difference against a golden record."""

    name: str
    kind: str  # "missing" | "structure" | "value"
    detail: str
    magnitude: float = 0.0

    def describe(self) -> str:
        extra = f" (rel {self.magnitude:.3g})" if self.kind == "value" else ""
        return f"{self.name}: {self.kind}: {self.detail}{extra}"


class GoldenCorpus:
    """All golden snapshots under one directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def names(self) -> list[str]:
        """Snapshot names present on disk, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    # ------------------------------------------------------------------

    def load(self, name: str) -> dict:
        """The stored record, provenance header stripped."""
        record = json.loads(self.path(name).read_text())
        record.pop("_provenance", None)
        return record

    def provenance(self, name: str) -> dict | None:
        """The stored provenance header, or None for legacy files."""
        return json.loads(self.path(name).read_text()).get("_provenance")

    def store(self, name: str, record: dict, generator: str = "") -> Path:
        """Write ``record`` with a fresh provenance header."""
        from .. import __version__

        stamped = {
            "_provenance": {
                "schema": SCHEMA_VERSION,
                "generator": generator or f"GoldenCorpus.store({name!r})",
                "library_version": __version__,
            }
        }
        stamped.update(record)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(name)
        path.write_text(json.dumps(stamped, indent=1) + "\n")
        return path

    # ------------------------------------------------------------------

    def diff(
        self, name: str, record: dict, rel_tol: float = DRIFT_REL_TOL
    ) -> list[GoldenDrift]:
        """Differences between ``record`` and the stored snapshot.

        ``record`` uses the figure schema: ``{"x": [...], "curves":
        {label: [...]}}``.  An empty list means no drift.
        """
        if not self.path(name).exists():
            return [GoldenDrift(name, "missing", "no golden file on disk")]
        golden = self.load(name)
        drifts: list[GoldenDrift] = []
        if list(record["x"]) != list(golden["x"]):
            drifts.append(
                GoldenDrift(
                    name,
                    "structure",
                    f"x grid changed: {golden['x']} -> {list(record['x'])}",
                )
            )
            return drifts  # point-wise comparison is meaningless now
        stored_curves = set(golden["curves"])
        new_curves = set(record["curves"])
        for label in sorted(stored_curves - new_curves):
            drifts.append(
                GoldenDrift(name, "structure", f"curve {label!r} disappeared")
            )
        for label in sorted(new_curves - stored_curves):
            drifts.append(
                GoldenDrift(name, "structure", f"curve {label!r} appeared")
            )
        for label in sorted(stored_curves & new_curves):
            locked = golden["curves"][label]
            measured = list(record["curves"][label])
            if len(locked) != len(measured):
                drifts.append(
                    GoldenDrift(
                        name,
                        "structure",
                        f"curve {label!r} length {len(locked)} -> "
                        f"{len(measured)}",
                    )
                )
                continue
            worst = 0.0
            where = None
            for i, (old, new) in enumerate(zip(locked, measured)):
                scale = max(abs(old), abs(new), 1e-300)
                rel = abs(old - new) / scale
                if rel > worst:
                    worst, where = rel, (i, old, new)
            if worst > rel_tol:
                i, old, new = where
                drifts.append(
                    GoldenDrift(
                        name,
                        "value",
                        f"curve {label!r} point {i} "
                        f"(x={record['x'][i]}): {old!r} -> {new!r}",
                        worst,
                    )
                )
        return drifts

    def check(self, name: str, record: dict) -> None:
        """Raise AssertionError with a readable report on any drift."""
        drifts = self.diff(name, record)
        if drifts:
            raise AssertionError(
                "golden drift:\n"
                + "\n".join("  " + d.describe() for d in drifts)
            )


def figure_record(figure) -> dict:
    """The corpus schema for one built figure."""
    record = {
        "x": [float(x) for x in figure.x_values],
        "curves": {
            curve.label: [float(v) for v in curve.values]
            for curve in figure.curves
        },
    }
    for values in record["curves"].values():
        for v in values:
            if not math.isfinite(v):
                raise ValueError(f"non-finite value {v!r} in figure record")
    return record
