"""Seeded sampling of BPP crossbar configurations for the fuzzer.

The sampler deliberately does **not** use hypothesis: the CLI entry
point (``crossbar-repro verify``) must run from a plain install, and a
fuzz campaign must be exactly reproducible from its integer seed alone.
The distributions mirror ``tests/strategies.py`` for the *typical*
regime and add a *corner* regime biased toward the places differential
bugs historically hide:

* ``beta_r`` within a hair of ``mu_r`` (Pascal normalization near its
  divergence pole — huge peakedness);
* smooth classes whose source pool nearly exhausts the switch;
* large ``a_r`` relative to ``min(N1, N2)`` (multi-rate geometry,
  including classes that barely fit or do not fit at all);
* strongly rectangular switches (``N1 >> N2`` and vice versa);
* loads spanning ``1e-6`` .. ``~1`` per pair, i.e. from the paper's
  operating point (~0.5% blocking) to heavy overload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError

__all__ = ["ModelConfig", "ConfigSampler"]


@dataclass(frozen=True)
class ModelConfig:
    """A switch plus its traffic mix — the unit the fuzzer works on."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ConfigurationError("a model config needs >= 1 class")

    @property
    def capacity(self) -> int:
        return self.dims.capacity

    def describe(self) -> str:
        parts = ", ".join(
            f"{c.kind}(alpha={c.alpha:.4g}, beta={c.beta:.4g}, "
            f"mu={c.mu:.4g}, a={c.a})"
            for c in self.classes
        )
        return f"{self.dims.n1}x{self.dims.n2} [{parts}]"

    def to_dict(self) -> dict:
        from ..io import class_to_dict

        return {
            "n1": self.dims.n1,
            "n2": self.dims.n2,
            "classes": [class_to_dict(c) for c in self.classes],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ModelConfig":
        from ..io import class_from_dict

        return cls(
            SwitchDimensions(int(record["n1"]), int(record["n2"])),
            tuple(class_from_dict(c) for c in record["classes"]),
        )


class ConfigSampler:
    """Deterministic stream of model configs from one integer seed.

    ``corner_fraction`` of the draws come from the corner regime; the
    rest mirror the typical test-suite distributions.  Every draw is a
    pure function of the seed and the draw index, so a campaign can be
    replayed exactly and any config re-derived from ``(seed, index)``.
    """

    def __init__(
        self,
        seed: int,
        max_side: int = 12,
        max_classes: int = 3,
        corner_fraction: float = 0.4,
    ) -> None:
        self.seed = seed
        self.max_side = max_side
        self.max_classes = max_classes
        self.corner_fraction = corner_fraction
        self.index = 0

    def sample(self) -> ModelConfig:
        """The next config in the stream (advances the draw index)."""
        # str seeds hash through sha512: stable across processes, and
        # (seed, index) pairs never collide the way seed+index would.
        rng = random.Random(f"{self.seed}:{self.index}")
        self.index += 1
        if rng.random() < self.corner_fraction:
            return self._corner(rng)
        return self._typical(rng)

    # ------------------------------------------------------------------

    def _typical(self, rng: random.Random) -> ModelConfig:
        dims = SwitchDimensions(
            rng.randint(1, min(7, self.max_side)),
            rng.randint(1, min(7, self.max_side)),
        )
        count = rng.randint(1, self.max_classes)
        classes = tuple(
            self._typical_class(rng, dims) for _ in range(count)
        )
        return ModelConfig(dims, classes)

    def _typical_class(
        self, rng: random.Random, dims: SwitchDimensions
    ) -> TrafficClass:
        kind = rng.choice(("poisson", "pascal", "bernoulli"))
        mu = rng.uniform(0.5, 2.0)
        a = rng.randint(1, 2)
        if kind == "poisson":
            return TrafficClass(
                alpha=rng.uniform(0.0, 1.0), beta=0.0, mu=mu, a=a
            )
        if kind == "pascal":
            return TrafficClass(
                alpha=rng.uniform(1e-3, 1.0),
                beta=rng.uniform(1e-3, 0.4) * mu,
                mu=mu,
                a=a,
            )
        return TrafficClass.bernoulli(
            rng.randint(1, 8), rng.uniform(1e-3, 0.5), mu=mu, a=a
        )

    def _corner(self, rng: random.Random) -> ModelConfig:
        shape = rng.choice(("skewed", "tall", "square", "tiny"))
        if shape == "skewed":
            dims = SwitchDimensions(
                rng.randint(max(1, self.max_side - 2), self.max_side),
                rng.randint(1, 3),
            )
        elif shape == "tall":
            dims = SwitchDimensions(
                rng.randint(1, 3),
                rng.randint(max(1, self.max_side - 2), self.max_side),
            )
        elif shape == "square":
            n = rng.randint(4, self.max_side)
            dims = SwitchDimensions(n, n)
        else:
            dims = SwitchDimensions(rng.randint(1, 2), rng.randint(1, 2))
        count = rng.randint(1, self.max_classes)
        classes = tuple(
            self._corner_class(rng, dims) for _ in range(count)
        )
        return ModelConfig(dims, classes)

    def _corner_class(
        self, rng: random.Random, dims: SwitchDimensions
    ) -> TrafficClass:
        cap = max(1, dims.capacity)
        kind = rng.choice(
            ("near-pole", "huge-a", "tiny-load", "heavy-load", "deep-smooth")
        )
        mu = rng.choice((1.0, rng.uniform(0.1, 10.0)))
        if kind == "near-pole":
            # Pascal with beta within 0.2% .. 5% of mu: peakedness up
            # to ~500, the regime where eq. 19-style defects explode.
            return TrafficClass(
                alpha=rng.uniform(1e-4, 0.1) * mu,
                beta=mu * (1.0 - rng.uniform(0.002, 0.05)),
                mu=mu,
                a=1,
            )
        if kind == "huge-a":
            # A class that needs most of (or exactly) the whole fabric.
            a = rng.choice((max(1, cap - 1), cap))
            return TrafficClass(
                alpha=rng.uniform(1e-3, 0.5) * mu,
                beta=rng.choice((0.0, 0.3 * mu)),
                mu=mu,
                a=a,
            )
        if kind == "tiny-load":
            return TrafficClass(
                alpha=rng.uniform(1e-6, 1e-4) * mu,
                beta=rng.choice((0.0, rng.uniform(1e-6, 1e-4) * mu)),
                mu=mu,
                a=rng.randint(1, min(2, cap)),
            )
        if kind == "heavy-load":
            return TrafficClass(
                alpha=rng.uniform(1.0, 5.0) * mu,
                beta=0.0,
                mu=mu,
                a=rng.randint(1, min(2, cap)),
            )
        # deep-smooth: source pool comparable to the state-space depth,
        # so the Bernoulli fold runs to its termination boundary.
        sources = max(1, min(cap, rng.randint(cap // 2 + 1, cap + 2)))
        return TrafficClass.bernoulli(
            sources, rng.uniform(0.05, 0.9), mu=mu, a=1
        )
