"""A registry of metamorphic invariants over the paper's model.

Each :class:`Invariant` encodes a property that must hold for *every*
valid BPP configuration — an identity the paper derives, an exact
symmetry of the model, or an ordering/monotonicity law.  Unlike the
differential comparison (which can only say "two solvers disagree"),
a violated invariant names the *property* that broke, which usually
localizes the defect immediately.

The monotonicity invariants carry **guards** determined empirically:
blocking is *not* monotone in ``alpha_r`` for general multirate mixes
(raising one class's load can re-shape the occupancy distribution in
favour of another geometry), and *not* monotone in switch size for
peaky or smooth traffic.  The registry encodes the regimes where the
laws provably hold (single class, or unit bandwidth throughout; single
Poisson class for the size law) rather than folk versions that a
correct solver would "violate".

Checks raise nothing on healthy input: a configuration a check cannot
handle (e.g. Algorithm 2's smooth-stability guard trips) is a *skip*,
not a violation — :func:`check_invariants` swallows
:class:`~repro.exceptions.ComputationError` per invariant.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ComputationError
from .generators import ModelConfig

__all__ = [
    "INVARIANTS",
    "Invariant",
    "Violation",
    "check_invariants",
    "invariant_names",
]

#: Identity checks (same quantity, two derivations) agree to this.
IDENTITY_TOL = 1e-8
#: Ordering/monotonicity checks tolerate this much counter-movement
#: (pure round-off; a real violation is orders of magnitude larger).
ORDER_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant check on one configuration."""

    invariant: str
    detail: str
    magnitude: float

    def describe(self) -> str:
        return f"{self.invariant}: {self.detail} (magnitude {self.magnitude:.3g})"

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class Invariant:
    """A named executable property of the model.

    ``check`` receives the configuration and a :class:`SolutionCache`
    (so invariants sharing a base solve don't recompute it) and returns
    the violations found — an empty list means the property held.
    """

    name: str
    paper_ref: str
    description: str
    applies: Callable[[ModelConfig], bool]
    check: Callable[[ModelConfig, "SolutionCache"], list[Violation]]


class SolutionCache:
    """Per-run memo of solver results, keyed by (dims, classes).

    Late-binds the solver modules on every call so test monkeypatches
    are honoured, and keeps Algorithm 2 failures cached as exceptions
    (the stability guard is deterministic — retrying is waste).
    """

    def __init__(self) -> None:
        self._conv: dict = {}
        self._mva: dict = {}

    def conv(self, dims: SwitchDimensions, classes: tuple[TrafficClass, ...]):
        key = (dims, classes)
        if key not in self._conv:
            from ..core import convolution

            self._conv[key] = convolution.solve_convolution(
                dims, classes, mode="log"
            )
        return self._conv[key]

    def mva(self, dims: SwitchDimensions, classes: tuple[TrafficClass, ...]):
        key = (dims, classes)
        if key not in self._mva:
            from ..core import mva

            try:
                self._mva[key] = mva.solve_mva(dims, classes)
            except ComputationError as exc:
                self._mva[key] = exc
        result = self._mva[key]
        if isinstance(result, ComputationError):
            raise result
        return result


INVARIANTS: dict[str, Invariant] = {}


def _register(
    name: str,
    paper_ref: str,
    description: str,
    applies: Callable[[ModelConfig], bool] = lambda config: True,
):
    def wrap(check):
        INVARIANTS[name] = Invariant(
            name=name,
            paper_ref=paper_ref,
            description=description,
            applies=applies,
            check=check,
        )
        return check

    return wrap


def invariant_names() -> tuple[str, ...]:
    """All registered invariant names, in registration order."""
    return tuple(INVARIANTS)


def check_invariants(
    config: ModelConfig,
    names: Iterable[str] | None = None,
    cache: SolutionCache | None = None,
) -> list[Violation]:
    """Run every applicable invariant on ``config``; collect violations.

    Unknown ``names`` raise ``KeyError`` (a typo in a campaign spec must
    not silently check nothing).
    """
    cache = cache or SolutionCache()
    selected = (
        [INVARIANTS[n] for n in names]
        if names is not None
        else list(INVARIANTS.values())
    )
    violations: list[Violation] = []
    for inv in selected:
        if not inv.applies(config):
            continue
        try:
            violations.extend(inv.check(config, cache))
        except ComputationError:
            continue  # solver guard tripped: skip, don't fail
    return violations


# ----------------------------------------------------------------------
# Identity invariants (the paper's equations, two derivations each)
# ----------------------------------------------------------------------


@_register(
    "normalization-series-identity",
    "eq. 5-7",
    "log G(N) from Algorithm 1 equals the generating-function "
    "reconstruction Q(N) = sum_m f_m / ((N1-m)!(N2-m)!).",
)
def _check_normalization_series(config, cache):
    from ..core import generating

    solution = cache.conv(config.dims, config.classes)
    log_q_solver = float(solution.log_q[config.dims.n1, config.dims.n2])
    q_series = generating.q_from_series(config.dims, config.classes)
    if not (q_series > 0.0 and math.isfinite(q_series)):
        return []  # series path out of float range: nothing to compare
    log_q_series = math.log(q_series)
    diff = abs(log_q_solver - log_q_series)
    tol = IDENTITY_TOL * max(1.0, abs(log_q_solver))
    if diff > tol:
        return [
            Violation(
                "normalization-series-identity",
                f"log Q(N): solver {log_q_solver!r} vs series "
                f"{log_q_series!r} on {config.describe()}",
                diff,
            )
        ]
    return []


@_register(
    "series-closed-form",
    "eq. 5",
    "Each class's occupancy series built from the Phi_r product "
    "definition matches the closed form (exp / negative binomial).",
)
def _check_series_closed_form(config, cache):
    from ..core import generating

    violations = []
    order = config.capacity
    for r, cls in enumerate(config.classes):
        direct = generating.class_series(cls, order)
        closed = generating.closed_form_class_series(cls, order)
        scale = max(max(map(abs, direct)), max(map(abs, closed)), 1.0)
        for m, (x, y) in enumerate(zip(direct, closed)):
            if abs(x - y) > IDENTITY_TOL * scale:
                violations.append(
                    Violation(
                        "series-closed-form",
                        f"class {r} coefficient u^{m}: definition {x!r} "
                        f"vs closed form {y!r}",
                        abs(x - y) / scale,
                    )
                )
                break  # one coefficient per class is enough signal
    return violations


@_register(
    "blocking-identity",
    "eq. 4",
    "B_r = G(N - a_r I)/G(N) / (P(N1,a_r) P(N2,a_r)): the reported "
    "non-blocking probability matches the raw normalization ratio.",
    applies=lambda config: any(
        c.a <= min(config.dims.n1, config.dims.n2) for c in config.classes
    ),
)
def _check_blocking_identity(config, cache):
    solution = cache.conv(config.dims, config.classes)
    dims = config.dims
    violations = []
    for r, cls in enumerate(config.classes):
        if cls.a > min(dims.n1, dims.n2):
            continue
        sub = SwitchDimensions(dims.n1 - cls.a, dims.n2 - cls.a)
        # log G already carries the N1! N2! factors, so the G ratio IS
        # the non-blocking probability (the permutation denominators
        # cancel into the factorial difference).
        expected = math.exp(solution.log_g(sub) - solution.log_g())
        got = solution.non_blocking(r)
        if abs(got - expected) > IDENTITY_TOL * max(1.0, abs(expected)):
            violations.append(
                Violation(
                    "blocking-identity",
                    f"class {r}: non_blocking {got!r} vs eq. 4 ratio "
                    f"{expected!r}",
                    abs(got - expected),
                )
            )
    return violations


@_register(
    "mva-path-consistency",
    "eq. 12-13",
    "Algorithm 2 reaches the same H_r ratio along the input and the "
    "output axis (path independence of the F recursion).",
)
def _check_mva_path(config, cache):
    solution = cache.mva(config.dims, config.classes)
    residual = solution.grids.consistency_residual()
    if residual > IDENTITY_TOL:
        return [
            Violation(
                "mva-path-consistency",
                f"axis-1 vs axis-2 H residual {residual!r} on "
                f"{config.describe()}",
                residual,
            )
        ]
    return []


@_register(
    "mva-ratio-identity",
    "eq. 12-13",
    "F_1(n) Q(n) = Q(n - e_1): Algorithm 2's ratio grid against "
    "Algorithm 1's log Q grid, everywhere on the lattice.",
)
def _check_mva_ratio(config, cache):
    mva_solution = cache.mva(config.dims, config.classes)
    conv_solution = cache.conv(config.dims, config.classes)
    log_q = conv_solution.log_q
    grids = mva_solution.grids
    worst = 0.0
    where = None
    for m1 in range(1, config.dims.n1 + 1):
        for m2 in range(config.dims.n2 + 1):
            expected = math.exp(float(log_q[m1 - 1, m2] - log_q[m1, m2]))
            got = float(grids.f1[m1, m2])
            err = abs(got - expected) / max(abs(expected), 1.0)
            if err > worst:
                worst, where = err, (m1, m2, got, expected)
    if worst > IDENTITY_TOL:
        m1, m2, got, expected = where
        return [
            Violation(
                "mva-ratio-identity",
                f"F_1({m1},{m2}) = {got!r} but Q({m1 - 1},{m2})/Q({m1},{m2})"
                f" = {expected!r}",
                worst,
            )
        ]
    return []


@_register(
    "sub-dimension-consistency",
    "§5",
    "Measures read off a larger solved grid at (m1, m2) equal a fresh "
    "solve at exactly (m1, m2).",
    applies=lambda config: config.dims.n1 + config.dims.n2 >= 3,
)
def _check_sub_dimension(config, cache):
    dims = config.dims
    solution = cache.conv(dims, config.classes)
    subs = {
        SwitchDimensions(max(1, dims.n1 - 1), dims.n2),
        SwitchDimensions(dims.n1, max(1, dims.n2 - 1)),
        SwitchDimensions((dims.n1 + 1) // 2, (dims.n2 + 1) // 2),
    } - {dims}
    violations = []
    for sub in subs:
        fresh = cache.conv(sub, config.classes)
        for r in range(len(config.classes)):
            at_grid = solution.blocking(r, at=sub)
            direct = fresh.blocking(r)
            if abs(at_grid - direct) > IDENTITY_TOL:
                violations.append(
                    Violation(
                        "sub-dimension-consistency",
                        f"class {r} blocking at {sub}: grid {at_grid!r} "
                        f"vs direct {direct!r}",
                        abs(at_grid - direct),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Symmetry invariants (exact model equivalences)
# ----------------------------------------------------------------------


@_register(
    "holding-time-insensitivity",
    "§2",
    "Scaling (alpha_r, beta_r, mu_r) by a common factor changes only "
    "the time unit: blocking and concurrency are invariant.",
)
def _check_insensitivity(config, cache):
    scale = 3.0
    scaled = tuple(
        TrafficClass(
            alpha=cls.alpha * scale,
            beta=cls.beta * scale,
            mu=cls.mu * scale,
            a=cls.a,
        )
        for cls in config.classes
    )
    base = cache.conv(config.dims, config.classes)
    other = cache.conv(config.dims, scaled)
    violations = []
    for r in range(len(config.classes)):
        for measure in ("blocking", "concurrency"):
            x = getattr(base, measure)(r)
            y = getattr(other, measure)(r)
            if abs(x - y) > IDENTITY_TOL * max(1.0, abs(x)):
                violations.append(
                    Violation(
                        "holding-time-insensitivity",
                        f"class {r} {measure}: {x!r} at mu vs {y!r} at "
                        f"{scale}*mu",
                        abs(x - y),
                    )
                )
    return violations


@_register(
    "class-permutation-invariance",
    "eq. 2-3",
    "Reordering the class list permutes the per-class measures and "
    "changes nothing else.",
    applies=lambda config: len(config.classes) >= 2,
)
def _check_permutation(config, cache):
    base = cache.conv(config.dims, config.classes)
    reordered = tuple(reversed(config.classes))
    other = cache.conv(config.dims, reordered)
    n = len(config.classes)
    violations = []
    for r in range(n):
        x = base.blocking(r)
        y = other.blocking(n - 1 - r)
        if abs(x - y) > IDENTITY_TOL:
            violations.append(
                Violation(
                    "class-permutation-invariance",
                    f"class {r} blocking {x!r} became {y!r} after "
                    "reversing the class list",
                    abs(x - y),
                )
            )
    return violations


# ----------------------------------------------------------------------
# Ordering and monotonicity invariants
# ----------------------------------------------------------------------


def _poissonized(cls: TrafficClass) -> TrafficClass:
    """The Poisson class with the same alpha_r (beta_r zeroed).

    This is the paper's Figure 1-2 comparison: hold ``alpha~`` fixed
    and sweep ``beta~`` through zero.  (Matching the infinite-server
    *mean* instead does NOT give an ordering — a peaky class of equal
    mean can block less than its Poisson counterpart.)
    """
    return TrafficClass(alpha=cls.alpha, beta=0.0, mu=cls.mu, a=cls.a)


def _swap_class(
    classes: tuple[TrafficClass, ...], r: int, new: TrafficClass
) -> tuple[TrafficClass, ...]:
    return classes[:r] + (new,) + classes[r + 1 :]


@_register(
    "poisson-bounds-smooth",
    "§3, Fig. 2",
    "Zeroing a lone smooth class's negative beta_r (same alpha_r) "
    "never lowers its blocking: peakedness Z < 1 helps.  Guarded to a "
    "single class: in a mix, cross-class occupancy shifts break the "
    "ordering.",
    applies=lambda config: len(config.classes) == 1
    and config.classes[0].beta < 0,
)
def _check_poisson_bounds_smooth(config, cache):
    base = cache.conv(config.dims, config.classes)
    violations = []
    for r, cls in enumerate(config.classes):
        if not cls.beta < 0:
            continue
        swapped = _swap_class(config.classes, r, _poissonized(cls))
        other = cache.conv(config.dims, swapped)
        smooth_b = base.blocking(r)
        poisson_b = other.blocking(r)
        if poisson_b < smooth_b - ORDER_TOL:
            violations.append(
                Violation(
                    "poisson-bounds-smooth",
                    f"class {r}: smooth blocking {smooth_b!r} exceeds "
                    f"the beta=0 blocking {poisson_b!r}",
                    smooth_b - poisson_b,
                )
            )
    return violations


@_register(
    "pascal-dominates-poisson",
    "§3, Fig. 2",
    "Zeroing a lone peaky class's positive beta_r (same alpha_r) "
    "never raises its blocking: peakedness Z > 1 hurts.  Guarded to a "
    "single class: in a mix, cross-class occupancy shifts break the "
    "ordering.",
    applies=lambda config: len(config.classes) == 1
    and config.classes[0].beta > 0,
)
def _check_pascal_dominates(config, cache):
    base = cache.conv(config.dims, config.classes)
    violations = []
    for r, cls in enumerate(config.classes):
        if not cls.beta > 0:
            continue
        swapped = _swap_class(config.classes, r, _poissonized(cls))
        other = cache.conv(config.dims, swapped)
        pascal_b = base.blocking(r)
        poisson_b = other.blocking(r)
        if pascal_b < poisson_b - ORDER_TOL:
            violations.append(
                Violation(
                    "pascal-dominates-poisson",
                    f"class {r}: Pascal blocking {pascal_b!r} below "
                    f"the beta=0 blocking {poisson_b!r}",
                    poisson_b - pascal_b,
                )
            )
    return violations


@_register(
    "blocking-monotone-in-alpha",
    "§3",
    "Doubling a lone class's alpha_r raises its blocking.  Guarded "
    "to a single class: even unit-bandwidth mixes of near-pole Pascal "
    "classes are genuinely non-monotone in one class's alpha.",
    applies=lambda config: len(config.classes) == 1,
)
def _check_alpha_monotone(config, cache):
    base = cache.conv(config.dims, config.classes)
    violations = []
    for r, cls in enumerate(config.classes):
        if cls.alpha == 0.0:
            continue
        louder = _swap_class(
            config.classes,
            r,
            TrafficClass(
                # x2, not x1.5: a Bernoulli class's source count
                # -alpha/beta must stay an integer to remain valid.
                alpha=cls.alpha * 2.0, beta=cls.beta, mu=cls.mu, a=cls.a
            ),
        )
        other = cache.conv(config.dims, louder)
        before = base.blocking(r)
        after = other.blocking(r)
        if after < before - ORDER_TOL:
            violations.append(
                Violation(
                    "blocking-monotone-in-alpha",
                    f"class {r}: blocking fell {before!r} -> {after!r} "
                    "when alpha doubled",
                    before - after,
                )
            )
    return violations


@_register(
    "blocking-monotone-in-size",
    "§3, Fig. 3",
    "With per-pair parameters fixed, a larger switch carries more "
    "competing sources: blocking rises with N.  Guarded: provably "
    "monotone only for a single Poisson class.",
    applies=lambda config: len(config.classes) == 1
    and config.classes[0].is_poisson
    # A class that does not fit blocks with certainty; growing the
    # switch until it first fits *lowers* blocking from 1.0, so the
    # law only starts once the class is feasible.
    and config.classes[0].a <= min(config.dims.n1, config.dims.n2),
)
def _check_size_monotone(config, cache):
    bigger = SwitchDimensions(config.dims.n1 + 1, config.dims.n2 + 1)
    base = cache.conv(config.dims, config.classes)
    grown = cache.conv(bigger, config.classes)
    before = base.blocking(0)
    after = grown.blocking(0)
    if after < before - ORDER_TOL:
        return [
            Violation(
                "blocking-monotone-in-size",
                f"blocking fell {before!r} -> {after!r} growing "
                f"{config.dims} to {bigger}",
                before - after,
            )
        ]
    return []
