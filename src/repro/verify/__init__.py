"""Differential and metamorphic verification of the solver stack.

The library computes the paper's product-form measures at least seven
independent ways (brute force over eq. 2-3, exact rationals, Algorithm 1
in three numeric modes, Algorithm 2, the diagonal series solver, a raw
CTMC solve).  This package turns that redundancy into an automated
correctness harness:

* :mod:`repro.verify.invariants` — a registry of *metamorphic
  invariants*: paper identities (eq. 4 normalization ratios, the
  eq. 8-10 recurrence, the eq. 12-13 ratio identities), orderings
  (Poisson upper-bounds smooth, Pascal dominates Poisson), exact
  symmetries (holding-time insensitivity, class permutation) and
  guarded monotonicities, each encoded as an executable check.
* :mod:`repro.verify.differential` — run every applicable solver on one
  configuration and compare all pairs under per-method, ULP-aware
  tolerances.
* :mod:`repro.verify.generators` — a seeded sampler of BPP
  configurations, biased toward the numeric corners (extreme ``beta_r``,
  skewed ``N1 != N2``, large ``a_r``, threshold-straddling sizes).
* :mod:`repro.verify.shrink` — greedy minimization of a failing
  configuration to a small reproducer.
* :mod:`repro.verify.corpus` — the golden-snapshot corpus manager
  (provenance headers, drift diffing) behind ``tests/golden/`` and
  ``tools/refresh_golden.py``.
* :mod:`repro.verify.runner` — the budgeted orchestrator behind
  ``crossbar-repro verify``: named paper configurations first, then the
  fuzzer, with failing configs shrunk and dumped as JSON repro files.

See ``docs/testing.md`` for the full map from paper claims to checks.
"""

from .corpus import GoldenCorpus, GoldenDrift, figure_record
from .differential import (
    Disagreement,
    DifferentialReport,
    applicable_methods,
    pair_tolerance,
    run_differential,
)
from .generators import ConfigSampler, ModelConfig
from .invariants import (
    INVARIANTS,
    Invariant,
    Violation,
    check_invariants,
    invariant_names,
)
from .runner import VerifyOptions, VerifyReport, parse_budget, run_verify
from .shrink import shrink_config

__all__ = [
    "ConfigSampler",
    "DifferentialReport",
    "Disagreement",
    "GoldenCorpus",
    "GoldenDrift",
    "figure_record",
    "INVARIANTS",
    "Invariant",
    "ModelConfig",
    "VerifyOptions",
    "VerifyReport",
    "Violation",
    "applicable_methods",
    "check_invariants",
    "invariant_names",
    "pair_tolerance",
    "parse_budget",
    "run_differential",
    "run_verify",
    "shrink_config",
]
