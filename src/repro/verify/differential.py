"""Cross-solver differential comparison with ULP-aware tolerances.

One configuration, every applicable solver, all pairs compared.  The
solver set mirrors :mod:`repro.validation` (Algorithm 1 in three
numeric modes, Algorithm 2, the diagonal series solver, exact
rationals, brute force and the raw CTMC) but differs in two ways that
matter for fuzzing:

* solvers are invoked **directly** through late-bound module lookups,
  never through the batched engine — a cached result would mask a
  freshly injected bug, and a test monkeypatching e.g.
  ``repro.core.mva.solve_mva`` must see its replacement actually run;
* disagreement is judged per *pair* under per-method tolerance
  metadata (:attr:`repro.methods.SolveMethod.rel_tolerance`) plus an
  ULP floor, so a tightening of one solver never silently loosens the
  comparison of two others.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import ComputationError
from ..methods import SolveMethod
from .generators import ModelConfig

__all__ = [
    "MEASURES",
    "Disagreement",
    "DifferentialReport",
    "applicable_methods",
    "pair_tolerance",
    "run_differential",
]

#: The scalar per-class measures every solver must agree on.
MEASURES = ("blocking", "concurrency", "acceptance")

#: Methods outside the :class:`SolveMethod` enum that still join the
#: differential (the CTMC is a solution *route*, not a solve API
#: method), with their trusted relative accuracy.
_EXTRA_TOLERANCES = {"ctmc": 1e-6}

#: Enumeration methods are skipped above this state-space size and
#: exact rationals above this capacity (same limits as validation).
from ..validation import ENUMERATION_LIMIT, EXACT_CAPACITY_LIMIT  # noqa: E402

#: Absolute comparison floor: measures this small are treated as equal
#: regardless of relative error (they are pure round-off territory).
ABS_FLOOR = 1e-12

#: The CTMC's arrival rates carry ``P(N1-used, a) P(N2-used, a)``
#: multiplicities, so a class with bandwidth ``a`` near the capacity
#: puts ``(a!)^2``-scale entries next to unit teardown rates in the
#: generator; past ~1e9 of dynamic range the sparse LU loses the small
#: stationary components entirely (empirically: a <= 8 on a 12x12
#: agrees to 1e-12, a = 12 is off by 30%).  The chain is skipped above
#: this spread — the model is fine, float64 is not.
CTMC_RATE_SPREAD_LIMIT = 1e9


def _measures_of(solution, n_classes: int) -> dict[str, tuple[float, ...]]:
    """Normalize any solved-model object to the shared measure dict."""
    if hasattr(solution, "blocking_probability"):  # StateDistribution
        blocking = [solution.blocking_probability(r) for r in range(n_classes)]
    else:
        blocking = [solution.blocking(r) for r in range(n_classes)]
    return {
        "blocking": tuple(float(b) for b in blocking),
        "concurrency": tuple(
            float(solution.concurrency(r)) for r in range(n_classes)
        ),
        "acceptance": tuple(
            float(solution.call_acceptance(r)) for r in range(n_classes)
        ),
    }


# ----------------------------------------------------------------------
# Solver dispatch (late-bound so monkeypatches take effect)
# ----------------------------------------------------------------------


def _run_convolution(mode: str, kernel: str = "python"):
    def call(config: ModelConfig):
        from ..core import convolution

        return convolution.solve_convolution(
            config.dims, config.classes, mode=mode, kernel=kernel
        )

    return call


def _run_mva(config: ModelConfig):
    from ..core import mva

    return mva.solve_mva(config.dims, config.classes, kernel="python")


def _run_mva_numpy(config: ModelConfig):
    from ..core import mva

    return mva.solve_mva(config.dims, config.classes, kernel="numpy")


def _run_series(config: ModelConfig):
    from ..core import series_solver

    return series_solver.solve_series(config.dims, config.classes)


def _run_exact(config: ModelConfig):
    from ..core import exact

    return exact.solve_exact(config.dims, config.classes)


def _run_brute_force(config: ModelConfig):
    from ..core import productform

    return productform.solve_brute_force(config.dims, config.classes)


def _run_ctmc(config: ModelConfig):
    from ..ctmc import solve as ctmc_solve

    return ctmc_solve.solve_ctmc(config.dims, config.classes)


_SOLVERS = {
    # Classic entries pin kernel="python" so the process-wide kernel
    # knob can never alias the reference side of a differential pair.
    SolveMethod.CONVOLUTION.value: _run_convolution("log"),
    SolveMethod.CONVOLUTION_SCALED.value: _run_convolution("scaled"),
    SolveMethod.CONVOLUTION_FLOAT.value: _run_convolution("float"),
    SolveMethod.CONVOLUTION_NUMPY.value: _run_convolution("log", "numpy"),
    SolveMethod.CONVOLUTION_SCALED_NUMPY.value: _run_convolution(
        "scaled", "numpy"
    ),
    SolveMethod.CONVOLUTION_FLOAT_NUMPY.value: _run_convolution(
        "float", "numpy"
    ),
    SolveMethod.MVA.value: _run_mva,
    SolveMethod.MVA_NUMPY.value: _run_mva_numpy,
    SolveMethod.SERIES.value: _run_series,
    SolveMethod.EXACT.value: _run_exact,
    SolveMethod.BRUTE_FORCE.value: _run_brute_force,
    "ctmc": _run_ctmc,
}


def method_tolerance(method: str) -> float:
    """Trusted relative accuracy of one method name."""
    if method in _EXTRA_TOLERANCES:
        return _EXTRA_TOLERANCES[method]
    return SolveMethod.coerce(method).rel_tolerance


def pair_tolerance(method_a: str, method_b: str) -> float:
    """Comparison tolerance for one solver pair: the looser of the two."""
    return max(method_tolerance(method_a), method_tolerance(method_b))


def applicable_methods(config: ModelConfig) -> list[str]:
    """The solver names worth attempting on this configuration.

    Enumeration-based methods are excluded above the state-space limit
    and exact rationals above the capacity limit; everything else is
    attempted and may still be skipped at run time (e.g. Algorithm 2's
    smooth-stability guard, the unscaled mode's overflow)."""
    from ..core.state import permutation, state_space_size

    methods = [
        SolveMethod.CONVOLUTION.value,
        SolveMethod.CONVOLUTION_SCALED.value,
        SolveMethod.CONVOLUTION_FLOAT.value,
        SolveMethod.CONVOLUTION_NUMPY.value,
        SolveMethod.CONVOLUTION_SCALED_NUMPY.value,
        SolveMethod.CONVOLUTION_FLOAT_NUMPY.value,
        SolveMethod.MVA.value,
        SolveMethod.MVA_NUMPY.value,
        SolveMethod.SERIES.value,
    ]
    if config.capacity <= EXACT_CAPACITY_LIMIT:
        methods.append(SolveMethod.EXACT.value)
    if state_space_size(config.dims, config.classes) <= ENUMERATION_LIMIT:
        methods.append(SolveMethod.BRUTE_FORCE.value)
        rate_spread = max(
            permutation(config.dims.n1, cls.a)
            * permutation(config.dims.n2, cls.a)
            for cls in config.classes
        )
        if rate_spread <= CTMC_RATE_SPREAD_LIMIT:
            methods.append("ctmc")
    return methods


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Disagreement:
    """One measure on which two solvers disagree beyond tolerance."""

    method_a: str
    method_b: str
    measure: str
    class_index: int
    value_a: float
    value_b: float
    tolerance: float

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.value_a), abs(self.value_b), ABS_FLOOR)
        return abs(self.value_a - self.value_b) / scale

    def describe(self) -> str:
        return (
            f"{self.method_a} vs {self.method_b}: {self.measure}"
            f"[{self.class_index}] = {self.value_a!r} vs "
            f"{self.value_b!r} (rel {self.rel_error:.3g} > tol "
            f"{self.tolerance:.3g})"
        )

    def to_dict(self) -> dict:
        return {
            "pair": [self.method_a, self.method_b],
            "measure": self.measure,
            "class_index": self.class_index,
            "values": [self.value_a, self.value_b],
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
        }


@dataclass
class DifferentialReport:
    """Everything one differential run produced."""

    config: ModelConfig
    values: dict[str, dict[str, tuple[float, ...]]] = field(
        default_factory=dict
    )
    skipped: list[tuple[str, str]] = field(default_factory=list)
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def methods(self) -> tuple[str, ...]:
        return tuple(self.values)

    @property
    def consistent(self) -> bool:
        """At least two methods ran and all pairs agreed."""
        return len(self.values) >= 2 and not self.disagreements

    def render(self) -> str:
        lines = [
            f"differential on {self.config.describe()}: "
            f"{len(self.values)} methods, "
            f"{len(self.disagreements)} disagreements"
        ]
        for d in self.disagreements:
            lines.append("  " + d.describe())
        for method, reason in self.skipped:
            lines.append(f"  {method}: skipped ({reason})")
        return "\n".join(lines)


#: Probability measures computed as ``1 - <something near 1>``: their
#: absolute error is relative to the *complement*, so a tiny blocking
#: probability carries the complement's round-off amplified by 1/B.
#: Scaling by the larger of value and complement compares what the
#: solvers actually resolve.
_COMPLEMENT_MEASURES = frozenset({"blocking"})


def _values_disagree(
    x: float, y: float, tol: float, complement: bool = False
) -> bool:
    if x == y:
        return False
    if math.isnan(x) or math.isnan(y):
        return True
    scale = max(abs(x), abs(y))
    if complement:
        scale = max(scale, abs(1.0 - x), abs(1.0 - y))
    if max(abs(x), abs(y)) <= ABS_FLOOR:
        return False
    # ULP floor: even "exact" methods round once per float operation
    # when extracting measures; 16 ulps of the larger magnitude is far
    # below any real defect's footprint.
    floor = 16.0 * math.ulp(scale)
    return abs(x - y) > tol * scale + floor


def run_differential(
    config: ModelConfig, methods: list[str] | None = None
) -> DifferentialReport:
    """Run every applicable solver pair on ``config`` and compare.

    Solver failures of the *expected* kind (stability guards, unscaled
    overflow) become skips; anything else propagates — an unexpected
    crash is a finding, not noise.
    """
    report = DifferentialReport(config=config)
    n = len(config.classes)
    for method in methods or applicable_methods(config):
        try:
            solution = _SOLVERS[method](config)
        except ComputationError as exc:
            report.skipped.append((method, str(exc)[:80]))
            continue
        report.values[method] = _measures_of(solution, n)

    names = list(report.values)
    for i, method_a in enumerate(names):
        for method_b in names[i + 1 :]:
            tol = pair_tolerance(method_a, method_b)
            for measure in MEASURES:
                va = report.values[method_a][measure]
                vb = report.values[method_b][measure]
                complement = measure in _COMPLEMENT_MEASURES
                for r, (x, y) in enumerate(zip(va, vb)):
                    if _values_disagree(x, y, tol, complement=complement):
                        report.disagreements.append(
                            Disagreement(
                                method_a, method_b, measure, r, x, y, tol
                            )
                        )
    return report
