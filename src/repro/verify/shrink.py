"""Greedy minimization of a failing configuration.

Once the fuzzer finds a config on which solvers disagree (or an
invariant breaks), the raw reproducer is usually noisy: three classes,
seven-significant-digit parameters, a 11x9 switch.  ``shrink_config``
walks it toward the smallest config that *still fails*, trying, in
order of how much they simplify:

1. dropping whole classes,
2. shrinking the switch (halving a side, then decrementing),
3. reducing bandwidth requirements ``a_r`` toward 1,
4. zeroing ``beta_r`` (Pascal/Bernoulli -> Poisson),
5. snapping ``alpha_r``/``beta_r``/``mu_r`` to short decimals.

The predicate is treated as a black box; a candidate on which it
*raises* is simply not taken (the failure being shrunk must be
preserved, not traded for a different crash).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import CrossbarError
from .generators import ModelConfig

__all__ = ["shrink_config"]


def _simpler_float(x: float) -> list[float]:
    """Progressively shorter decimal approximations of ``x``."""
    out = []
    for digits in (1, 2, 4):
        snapped = float(f"{x:.{digits}g}")
        if snapped != x and snapped not in out:
            out.append(snapped)
    return out


def _class_candidates(cls: TrafficClass) -> Iterator[TrafficClass]:
    if cls.a > 1:
        yield replace(cls, a=1)
        yield replace(cls, a=cls.a // 2) if cls.a > 2 else replace(cls, a=1)
    if cls.beta != 0.0:
        yield replace(cls, beta=0.0)
    if cls.mu != 1.0:
        yield replace(cls, mu=1.0, beta=cls.beta if cls.beta < 1.0 else 0.0)
    for alpha in _simpler_float(cls.alpha):
        if alpha > 0.0:
            yield replace(cls, alpha=alpha)
    for beta in _simpler_float(cls.beta):
        if beta < cls.mu:
            yield replace(cls, beta=beta)


def _candidates(config: ModelConfig) -> Iterator[ModelConfig]:
    """Strictly-simpler one-step variants, most aggressive first."""
    dims, classes = config.dims, config.classes
    if len(classes) > 1:
        for r in range(len(classes)):
            yield ModelConfig(dims, classes[:r] + classes[r + 1 :])
    for n1, n2 in (
        ((dims.n1 + 1) // 2, dims.n2),
        (dims.n1, (dims.n2 + 1) // 2),
        (dims.n1 - 1, dims.n2),
        (dims.n1, dims.n2 - 1),
    ):
        if n1 >= 1 and n2 >= 1 and (n1, n2) != (dims.n1, dims.n2):
            yield ModelConfig(SwitchDimensions(n1, n2), classes)
    for r, cls in enumerate(classes):
        for simpler in _class_candidates(cls):
            yield ModelConfig(dims, classes[:r] + (simpler,) + classes[r + 1 :])


def shrink_config(
    config: ModelConfig,
    still_fails: Callable[[ModelConfig], bool],
    max_steps: int = 200,
) -> ModelConfig:
    """Smallest one-step-at-a-time simplification that still fails.

    ``still_fails`` must return True on ``config`` itself (the caller
    just observed the failure); if it does not — the failure is flaky —
    the original config is returned unchanged.
    """
    try:
        if not still_fails(config):
            return config
    except CrossbarError:
        return config

    current = config
    for _ in range(max_steps):
        for candidate in _candidates(current):
            try:
                if still_fails(candidate):
                    current = candidate
                    break
            except CrossbarError:
                continue  # different crash: not the failure we shrink
        else:
            break  # no candidate preserved the failure: minimal
    return current
