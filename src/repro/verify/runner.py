"""The budgeted verification campaign behind ``crossbar-repro verify``.

One run has two phases:

1. **Named configurations** — the paper's own operating points (every
   Table 1 load on its switch size, every Table 2 parameter set on a
   spread of sizes) go through the full differential + invariant
   battery.  These are the configs a reader will actually reproduce,
   so they are checked first and unconditionally.
2. **Fuzz** — seeded sampling (:class:`~repro.verify.generators.ConfigSampler`)
   until the time budget runs out, same battery per config.

Any failure is greedily shrunk (:func:`~repro.verify.shrink.shrink_config`)
under a predicate that preserves the *specific* failure — the same
disagreeing solver pair, or the same violated invariant — and dumped
as a self-contained JSON reproducer naming that pair/invariant, so a
regression lands as a one-file bug report rather than a fuzzer log.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .differential import run_differential
from .generators import ConfigSampler, ModelConfig
from .invariants import SolutionCache, check_invariants, invariant_names
from .shrink import shrink_config

__all__ = [
    "VerifyFailure",
    "VerifyOptions",
    "VerifyReport",
    "named_configs",
    "parse_budget",
    "run_verify",
]

#: JSON reproducer schema version.
REPRO_SCHEMA = 1

_BUDGET_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h)?\s*$")
_BUDGET_UNITS = {None: 1.0, "ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}


def parse_budget(text: str | float | int) -> float:
    """``"60s"`` / ``"2m"`` / ``"0.5h"`` / plain seconds -> seconds."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        match = _BUDGET_RE.match(text)
        if not match:
            raise ConfigurationError(
                f"cannot parse budget {text!r}; expected e.g. '60s', "
                "'2m', '0.5h' or plain seconds"
            )
        value = float(match.group(1)) * _BUDGET_UNITS[match.group(2)]
    if value <= 0:
        raise ConfigurationError(f"budget must be > 0, got {value}")
    return value


@dataclass(frozen=True)
class VerifyOptions:
    """Everything one campaign needs (all reproducible from here)."""

    seed: int = 0
    budget_seconds: float = 60.0
    max_configs: int | None = None
    repro_dir: Path | str = "verify-repros"
    skip_named: bool = False
    skip_fuzz: bool = False
    invariants: tuple[str, ...] | None = None
    max_side: int = 12
    #: Stop fuzzing after this many distinct failures: each one is
    #: shrunk (expensive) and one campaign rarely needs more evidence.
    max_failures: int = 5


@dataclass
class VerifyFailure:
    """One shrunk, reproducible failure."""

    kind: str  # "differential" | "invariant"
    label: str  # "mva vs convolution" or the invariant name
    detail: str
    source: str  # "named:<name>" or "fuzz:<index>"
    config: ModelConfig
    shrunk_from: ModelConfig
    repro_path: Path | None = None

    def to_dict(self) -> dict:
        from .. import __version__

        return {
            "schema": REPRO_SCHEMA,
            "library_version": __version__,
            "kind": self.kind,
            "label": self.label,
            "detail": self.detail,
            "source": self.source,
            "config": self.config.to_dict(),
            "shrunk_from": self.shrunk_from.to_dict(),
        }


@dataclass
class VerifyReport:
    """Outcome of one campaign."""

    options: VerifyOptions
    named_checked: int = 0
    fuzz_checked: int = 0
    elapsed: float = 0.0
    failures: list[VerifyFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def configs_checked(self) -> int:
        return self.named_checked + self.fuzz_checked

    def render(self) -> str:
        lines = [
            f"verify: seed={self.options.seed} "
            f"budget={self.options.budget_seconds:g}s "
            f"invariants={len(invariant_names())}",
            f"  named paper configs: {self.named_checked} checked",
            f"  fuzzed configs:      {self.fuzz_checked} checked",
            f"  elapsed:             {self.elapsed:.1f}s",
        ]
        for f in self.failures:
            lines.append(
                f"  FAILURE [{f.kind}] {f.label} ({f.source}): {f.detail}"
            )
            lines.append(f"    shrunk to: {f.config.describe()}")
            if f.repro_path is not None:
                lines.append(f"    reproducer: {f.repro_path}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def named_configs() -> list[tuple[str, ModelConfig]]:
    """The paper's own operating points, as (name, config) pairs.

    Table 1 contributes each printed load on its own switch (the two
    bandwidth classes analyzed separately, as the paper does); Table 2
    contributes every parameter set on a spread of sizes (capped where
    exhaustive solvers stay affordable).
    """
    from ..workloads import scenarios

    configs: list[tuple[str, ModelConfig]] = []
    for n, (rho1, rho2) in scenarios.TABLE1_PAPER.items():
        dims = SwitchDimensions.square(n)
        for a, rho in ((1, rho1), (2, rho2)):
            cls = TrafficClass.from_aggregate(rho, 0.0, n2=n, mu=1.0, a=a)
            configs.append(
                (f"table1-n{n}-a{a}", ModelConfig(dims, (cls,)))
            )
    for set_index in range(len(scenarios.TABLE2_PARAMETER_SETS)):
        for n in (2, 4, 8, 16):
            classes = scenarios.table2_classes(set_index, n)
            configs.append(
                (
                    f"table2-set{set_index + 1}-n{n}",
                    ModelConfig(SwitchDimensions.square(n), tuple(classes)),
                )
            )
    return configs


# ----------------------------------------------------------------------


def _differential_predicate(pair: frozenset):
    """Still-fails test: the same solver pair still disagrees."""

    def still_fails(config: ModelConfig) -> bool:
        report = run_differential(config)
        return any(
            frozenset((d.method_a, d.method_b)) == pair
            for d in report.disagreements
        )

    return still_fails


def _invariant_predicate(name: str):
    """Still-fails test: the same invariant is still violated."""

    def still_fails(config: ModelConfig) -> bool:
        return bool(check_invariants(config, names=[name]))

    return still_fails


def _check_one(
    source: str,
    config: ModelConfig,
    options: VerifyOptions,
) -> list[VerifyFailure]:
    """Full battery on one config; failures come back shrunk."""
    failures: list[VerifyFailure] = []

    report = run_differential(config)
    if report.disagreements:
        worst = max(report.disagreements, key=lambda d: d.rel_error)
        pair = frozenset((worst.method_a, worst.method_b))
        shrunk = shrink_config(config, _differential_predicate(pair))
        failures.append(
            VerifyFailure(
                kind="differential",
                label=f"{worst.method_a} vs {worst.method_b}",
                detail=worst.describe(),
                source=source,
                config=shrunk,
                shrunk_from=config,
            )
        )

    violations = check_invariants(
        config, names=options.invariants, cache=SolutionCache()
    )
    for name in sorted({v.invariant for v in violations}):
        first = next(v for v in violations if v.invariant == name)
        shrunk = shrink_config(config, _invariant_predicate(name))
        failures.append(
            VerifyFailure(
                kind="invariant",
                label=name,
                detail=first.describe(),
                source=source,
                config=shrunk,
                shrunk_from=config,
            )
        )
    return failures


def _write_repros(
    failures: list[VerifyFailure], repro_dir: Path
) -> None:
    repro_dir.mkdir(parents=True, exist_ok=True)
    for i, failure in enumerate(failures):
        safe = re.sub(r"[^a-z0-9]+", "-", failure.label.lower()).strip("-")
        path = repro_dir / f"repro-{i:03d}-{failure.kind}-{safe}.json"
        path.write_text(json.dumps(failure.to_dict(), indent=1) + "\n")
        failure.repro_path = path


def run_verify(
    options: VerifyOptions | None = None, echo=None
) -> VerifyReport:
    """Run one verification campaign; see the module docstring.

    ``echo`` (optional callable) receives one progress line per phase —
    the CLI passes ``print``; library callers usually pass nothing.
    """
    options = options or VerifyOptions()
    say = echo or (lambda line: None)
    report = VerifyReport(options=options)
    start = time.monotonic()

    if not options.skip_named:
        named = named_configs()
        say(f"checking {len(named)} named paper configurations ...")
        for name, config in named:
            report.failures.extend(
                _check_one(f"named:{name}", config, options)
            )
            report.named_checked += 1

    if not options.skip_fuzz:
        say(
            f"fuzzing (seed {options.seed}, "
            f"budget {options.budget_seconds:g}s) ..."
        )
        sampler = ConfigSampler(options.seed, max_side=options.max_side)
        while time.monotonic() - start < options.budget_seconds:
            if (
                options.max_configs is not None
                and report.fuzz_checked >= options.max_configs
            ):
                break
            if len(report.failures) >= options.max_failures:
                say("failure cap reached; stopping the fuzz phase early")
                break
            index = sampler.index
            config = sampler.sample()
            report.failures.extend(
                _check_one(f"fuzz:{index}", config, options)
            )
            report.fuzz_checked += 1

    if report.failures:
        _write_repros(report.failures, Path(options.repro_dir))
    report.elapsed = time.monotonic() - start
    return report
