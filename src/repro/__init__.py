"""Asynchronous multi-rate crossbar performance analysis with bursty traffic.

A production-quality reproduction of

    P. Stirpe and E. Pinsky, "Performance Analysis of an Asynchronous
    Multi-rate Crossbar with Bursty Traffic", SIGCOMM 1992.

The library models an ``N1 x N2`` unbuffered, asynchronous,
circuit-switched crossbar (the building block of free-space optical
interconnects) carrying multiple classes of multi-rate traffic with
Bernoulli-Poisson-Pascal (BPP) bursty arrival statistics, and computes
exact blocking probabilities, concurrencies, throughputs and
revenue-oriented sensitivities.

Quick start
-----------
>>> from repro import CrossbarModel, TrafficClass
>>> model = CrossbarModel.square(
...     32,
...     [
...         TrafficClass.poisson(0.001, name="data"),
...         TrafficClass.from_moments(0.4, peakedness=3.0, name="video"),
...     ],
... )
>>> solution = model.solve()
>>> 0.0 <= solution.blocking(0) <= 1.0
True

Package map
-----------
* :mod:`repro.api` -- the unified typed entry point
  (``SolveRequest -> solve/solve_many -> SolveResult``);
* :mod:`repro.engine` -- the batched, memoizing evaluation engine
  behind every solve;
* :mod:`repro.core` -- the analytical model (paper Sections 2-6);
* :mod:`repro.ctmc` -- independent CTMC solver (no product form);
* :mod:`repro.sim` -- discrete-event simulator (paper's future work);
* :mod:`repro.multistage` -- multistage-network extension (Section 8);
* :mod:`repro.robust` -- fault models, degraded-mode analysis and the
  resilient solver facade (``solve_robust``);
* :mod:`repro.service` -- the JSON/HTTP solve-serving daemon and the
  sharded multi-worker cluster supervisor (``ServiceConfig`` is the
  typed way to configure either);
* :mod:`repro.loadgen` -- the declarative cluster load harness
  (``LoadSpec -> run_load -> LoadReport``);
* :mod:`repro.workloads` -- the paper's figure/table scenarios;
* :mod:`repro.reporting` -- text tables and series for the benchmarks.

Serving and load-generation names (``ServiceConfig``, ``ServiceClient``,
``serve_cluster``, ``LoadSpec``, ...) are promoted to this namespace but
imported lazily, so ``import repro`` stays cheap for pure-analysis use.
"""

from .api import SolveRequest, SolveResult, solve, solve_many
from .core import (
    AsymptoticSolution,
    CrossbarModel,
    PerformanceSolution,
    StateDistribution,
    SwitchDimensions,
    TrafficClass,
    carried_peakedness,
    concurrency_covariance,
    concurrency_variance,
    factorial_moment,
    occupancy_pmf,
    occupancy_variance,
    solve_asymptotic,
    time_congestion,
    gradient_burstiness,
    gradient_rho,
    gradient_rho_closed_form,
    marginal_value,
    revenue_report,
    shadow_cost,
    solve_brute_force,
    solve_convolution,
    solve_exact,
    solve_mva,
)
from .exceptions import (
    ComputationError,
    ConfigurationError,
    ConvergenceError,
    CrossbarError,
    InvalidParameterError,
    OverflowInRecursionError,
    SimulationError,
)
from .methods import SolveMethod
from .robust import (
    FailureMask,
    FaultModel,
    NoHealthySolutionError,
    PortFailureProcess,
    RobustSolution,
    SolverDiagnostics,
    availability_weighted_measures,
    solve_degraded,
    solve_robust,
)

#: Serving / load-harness names promoted to the package namespace but
#: resolved on first access (PEP 562), keeping ``import repro`` cheap.
_LAZY_EXPORTS = {
    "ClusterConfig": ".service",
    "ClusterSupervisor": ".service",
    "LoadReport": ".loadgen",
    "LoadSpec": ".loadgen",
    "RetryPolicy": ".service",
    "ServiceClient": ".service",
    "ServiceConfig": ".service",
    "expected_fleet_blocking": ".loadgen",
    "run_load": ".loadgen",
    "serve": ".service",
    "serve_cluster": ".service",
    "start_cluster_in_thread": ".service",
    "start_in_thread": ".service",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


#: Version of last resort when the distribution metadata is absent
#: (e.g. running from a source checkout via ``PYTHONPATH=src``).
_FALLBACK_VERSION = "1.2.0"


def _detect_version() -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return _FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _detect_version()

__all__ = [
    "AsymptoticSolution",
    "ClusterConfig",
    "ClusterSupervisor",
    "CrossbarModel",
    "ComputationError",
    "LoadReport",
    "LoadSpec",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "expected_fleet_blocking",
    "run_load",
    "serve",
    "serve_cluster",
    "start_cluster_in_thread",
    "start_in_thread",
    "carried_peakedness",
    "concurrency_covariance",
    "concurrency_variance",
    "factorial_moment",
    "occupancy_pmf",
    "occupancy_variance",
    "solve_asymptotic",
    "time_congestion",
    "ConfigurationError",
    "ConvergenceError",
    "CrossbarError",
    "FailureMask",
    "FaultModel",
    "InvalidParameterError",
    "NoHealthySolutionError",
    "OverflowInRecursionError",
    "PerformanceSolution",
    "PortFailureProcess",
    "RobustSolution",
    "SimulationError",
    "SolveMethod",
    "SolveRequest",
    "SolveResult",
    "solve",
    "solve_many",
    "SolverDiagnostics",
    "availability_weighted_measures",
    "solve_degraded",
    "solve_robust",
    "StateDistribution",
    "SwitchDimensions",
    "TrafficClass",
    "gradient_burstiness",
    "gradient_rho",
    "gradient_rho_closed_form",
    "marginal_value",
    "revenue_report",
    "shadow_cost",
    "solve_brute_force",
    "solve_convolution",
    "solve_exact",
    "solve_mva",
    "__version__",
]
