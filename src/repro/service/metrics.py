"""A hand-rolled Prometheus text-format metrics registry (stdlib only).

Implements the subset of the exposition format (version 0.0.4) the
daemon needs: counters, gauges and cumulative histograms, with flat
label support.  Values are rendered with ``repr()`` — shortest exact
round-trip — so a scraper (or a test) parsing the page recovers the
counters *exactly*; the admission blocking ratio on ``/metrics`` is
required by the tests to match the observed 503 count to the last bit.

Metrics are only mutated from the service event loop, so plain Python
numbers are sufficient; ``render()`` may be called from any thread (it
only reads).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
]

#: Request-latency buckets (seconds): sub-millisecond cache hits up to
#: multi-second cold sweeps.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Micro-batch size buckets (requests per flush).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _format_value(value: float | int) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never emitted on purpose
        return "NaN"
    return repr(value)


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text

    def header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def render(self) -> list[str]:
        return self.header() + self.sample_lines()


class Counter(_Metric):
    """Monotone counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self._values.get(key, 0)

    def total(self) -> float:
        return sum(self._values.values())

    def sample_lines(self) -> list[str]:
        if not self._values:
            return [f"{self.name} 0"]
        return [
            f"{self.name}{_format_labels(labels)} {_format_value(value)}"
            for labels, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """Point-in-time value; supports callables for scrape-time reads."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple[tuple[str, str], ...], object] = {}

    def set(self, value, **labels: str) -> None:
        """Set a number, or a zero-argument callable read at render."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self._values[key] = value

    def sample_lines(self) -> list[str]:
        if not self._values:
            return [f"{self.name} 0"]
        lines = []
        for labels, value in sorted(self._values.items()):
            if callable(value):
                value = value()
            lines.append(
                f"{self.name}{_format_labels(labels)} {_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative histogram with ``_bucket``/``_sum``/``_count`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._series: dict[
            tuple[tuple[str, str], ...], tuple[list[int], list[float]]
        ] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        counts, acc = self._series.setdefault(
            key, ([0] * (len(self.buckets) + 1), [0.0, 0.0])
        )
        counts[bisect_left(self.buckets, value)] += 1
        acc[0] += value
        acc[1] += 1

    def count(self, **labels: str) -> int:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        entry = self._series.get(key)
        return int(entry[1][1]) if entry else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        entry = self._series.get(key)
        if entry is None or entry[1][1] == 0:
            return 0.0
        counts = entry[0]
        target = q * entry[1][1]
        running = 0
        for i, bucket_count in enumerate(counts):
            running += bucket_count
            if running >= target:
                if i < len(self.buckets):
                    return self.buckets[i]
                return math.inf
        return math.inf  # pragma: no cover - unreachable

    def sample_lines(self) -> list[str]:
        lines = []
        for labels, (counts, (total, n)) in sorted(self._series.items()):
            running = 0
            for bound, bucket_count in zip(self.buckets, counts):
                running += bucket_count
                bucket_labels = labels + (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_format_labels(bucket_labels)} "
                    f"{running}"
                )
            running += counts[-1]
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_format_labels(inf_labels)} {running}"
            )
            lines.append(
                f"{self.name}_sum{_format_labels(labels)} "
                f"{_format_value(total)}"
            )
            lines.append(
                f"{self.name}_count{_format_labels(labels)} {int(n)}"
            )
        return lines


class MetricsRegistry:
    """An ordered collection of metrics rendered as one text page."""

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._metrics: list[_Metric] = []

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter(name, help_text))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, tuple(buckets)))

    def _register(self, metric):
        if any(m.name == metric.name for m in self._metrics):
            raise ValueError(f"duplicate metric name {metric.name!r}")
        self._metrics.append(metric)
        return metric

    def render(self) -> str:
        lines: list[str] = []
        for metric in self._metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
