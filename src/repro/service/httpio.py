"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for a JSON point-to-point API: request-line +
headers + ``Content-Length`` bodies in, status + headers + body out.
No chunked encoding, no pipelining, one request per connection (every
response carries ``Connection: close``) — deliberately boring framing
so the interesting parts of the daemon (admission, coalescing,
batching) stay testable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

__all__ = ["HttpError", "HttpRequest", "read_request", "write_response"]

#: Hard header-section cap; a peer sending more is not speaking our
#: dialect of HTTP.
MAX_HEADER_BYTES = 16 * 1024

#: Default request-body cap (a batch of a few thousand requests).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ConfigurationError):
    """A malformed or oversized HTTP request (maps to a 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path (query split off), headers, body."""

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Parse one request; None on a clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0 or length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the cap")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return HttpRequest(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Serialize one response and flush it (connection stays ours)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()
