"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for a JSON point-to-point API: request-line +
headers + ``Content-Length`` bodies in, status + headers + body out.
No chunked encoding, no pipelining.  Connections persist by default
(HTTP/1.1 keep-alive: the server loops ``read_request`` /
``write_response`` until either side closes); pass ``close=True`` to
``write_response`` to advertise ``Connection: close`` and end the
exchange.  Deliberately boring framing so the interesting parts of the
daemon (admission, coalescing, batching) stay testable.

Timeouts
--------
Both directions are clock-bounded so a misbehaving peer cannot pin a
connection open:

* **reads** — ``read_request(..., timeout=...)`` caps the wall-clock
  spent waiting for the request head and, separately, for the body.
  A peer that trickles bytes (slow loris) or stalls after the header
  gets a :class:`HttpError` with status 408 and the connection is
  closed; the request never reaches the admission gate, so it holds
  no tokens.
* **writes** — ``write_response(..., timeout=...)`` caps the flush.
  A client that stops reading its reply raises
  :class:`SlowClientError` (an ``OSError``); the caller treats it as
  a disconnect and aborts the transport rather than waiting on a
  full kernel buffer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

__all__ = [
    "HttpError",
    "HttpRequest",
    "SlowClientError",
    "read_request",
    "write_response",
]

#: Hard header-section cap; a peer sending more is not speaking our
#: dialect of HTTP.
MAX_HEADER_BYTES = 16 * 1024

#: Default request-body cap (a batch of a few thousand requests).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(ConfigurationError):
    """A malformed, oversized or stalled HTTP request (maps to a 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SlowClientError(OSError):
    """The peer stopped reading its reply before the write timeout."""


@dataclass
class HttpRequest:
    """One parsed request: method, path (query split off), headers, body."""

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def _read_bounded(awaitable, timeout: float | None, what: str):
    """Await a read, converting a stall into a 408 :class:`HttpError`."""
    if timeout is None or timeout <= 0:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout)
    except asyncio.TimeoutError as exc:
        raise HttpError(
            408, f"timed out after {timeout:.3g}s reading the {what}"
        ) from exc


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
    timeout: float | None = None,
) -> HttpRequest | None:
    """Parse one request; None on a clean EOF before any bytes.

    ``timeout`` bounds each framing phase (head, then body)
    independently: a connection that goes quiet — or trickles bytes
    slower than a whole section per window — raises
    ``HttpError(408)``.  ``None`` (or ``0``) disables the bound.
    """
    try:
        head = await _read_bounded(
            reader.readuntil(b"\r\n\r\n"), timeout, "request head"
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0 or length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the cap")
        if length:
            try:
                body = await _read_bounded(
                    reader.readexactly(length), timeout, "request body"
                )
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return HttpRequest(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    timeout: float | None = None,
    close: bool = True,
) -> None:
    """Serialize one response and flush it (connection stays ours).

    ``timeout`` bounds the flush; a peer that stops draining its
    receive buffer raises :class:`SlowClientError` so the caller can
    abort the transport instead of blocking on it.  ``close=False``
    advertises ``Connection: keep-alive`` so the peer may reuse the
    connection for its next request.
    """
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    if timeout is None or timeout <= 0:
        await writer.drain()
        return
    try:
        await asyncio.wait_for(writer.drain(), timeout)
    except asyncio.TimeoutError as exc:
        raise SlowClientError(
            f"client did not drain the reply within {timeout:.3g}s"
        ) from exc
