"""The solve-serving daemon: asyncio JSON-over-HTTP, stdlib only.

This package turns the batch-oriented library into a long-lived
service a client can send :class:`~repro.api.SolveRequest`s to,
admission-controlled the way the paper's crossbar admits calls:

* **blocked calls cleared** — the :class:`~repro.service.gate.AdmissionGate`
  holds a bounded pool of tokens; a request that cannot get its weight
  immediately is rejected with a structured 503 + ``retry_after``
  (never queued), and the gate's measured ``rejected/offered`` ratio is
  the service's own blocking probability, reported on ``/metrics`` the
  way ``B_r(N)`` is reported for the crossbar;
* **request coalescing** — concurrent identical requests (same
  canonical key from :mod:`repro.engine.keys`) share one in-flight
  engine computation (:class:`~repro.service.coalesce.SingleFlight`);
* **micro-batching** — requests arriving within a small window are
  flushed as a single :meth:`~repro.engine.BatchSolver.evaluate_many`
  call, inheriting Q-grid sharing and the process pool
  (:class:`~repro.service.batcher.MicroBatcher`);
* **observability** — a hand-rolled Prometheus ``/metrics`` page
  (:mod:`repro.service.metrics`) plus per-request ids through
  :mod:`repro.logging`;
* **overload resilience** — per-request ``deadline_ms`` budgets
  propagate wire -> gate -> batcher -> engine (structured 504s), a
  brownout ladder (:mod:`repro.service.brownout`) degrades service in
  measured stages instead of collapsing, and SIGTERM drains in-flight
  work before exit.  See the resilience section of ``docs/service.md``.

Run it with ``crossbar-repro serve``; talk to it with
:class:`~repro.service.client.ServiceClient`; embed it in tests with
:func:`~repro.service.server.start_in_thread`.  See
``docs/service.md``.
"""

from .batcher import BatcherClosedError, MicroBatcher, RequestExpiredError
from .brownout import (
    STAGE_NAMES,
    BrownoutConfig,
    ServicePressureController,
)
from .client import (
    AdmissionRejectedError,
    DeadlineExceededError,
    RemoteSolveError,
    RetryPolicy,
    ServiceClient,
    ServiceProtocolError,
)
from .cluster import (
    ClusterHandle,
    ClusterSupervisor,
    serve_cluster,
    start_cluster_in_thread,
)
from .coalesce import SingleFlight
from .config import ClusterConfig, ServiceConfig
from .gate import AdmissionGate, GateLease, GateSnapshot
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .server import (
    ServiceHandle,
    SolveService,
    serve,
    start_in_thread,
)
from .sharding import HashRing

__all__ = [
    "AdmissionGate",
    "AdmissionRejectedError",
    "BatcherClosedError",
    "BrownoutConfig",
    "ClusterConfig",
    "ClusterHandle",
    "ClusterSupervisor",
    "Counter",
    "DeadlineExceededError",
    "Gauge",
    "GateLease",
    "GateSnapshot",
    "HashRing",
    "Histogram",
    "MetricsRegistry",
    "MicroBatcher",
    "RemoteSolveError",
    "RequestExpiredError",
    "RetryPolicy",
    "STAGE_NAMES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "ServicePressureController",
    "ServiceProtocolError",
    "SingleFlight",
    "SolveService",
    "serve",
    "serve_cluster",
    "start_cluster_in_thread",
    "start_in_thread",
]
