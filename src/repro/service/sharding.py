"""Consistent-hash routing of canonical cache keys onto worker shards.

The cluster's single-flight and cache-locality contracts only hold if
every request for one canonical key (:mod:`repro.engine.keys`) always
lands on the same worker.  A :class:`HashRing` maps keys to shard
*indices* via consistent hashing with virtual nodes:

* virtual nodes are derived from the **shard index**, never from the
  worker's pid or port, so a worker respawned into the same slot keeps
  exactly its old keyspace (routing stability under respawn);
* hashing is SHA-256 based, so the mapping is identical in every
  process regardless of ``PYTHONHASHSEED`` — a client that fetched the
  ``/cluster`` shard map can compute the same routing as the router.

With a fixed shard count the ring is equivalent to a modulo over a
well-mixed hash, but the ring form keeps the door open for ROADMAP's
elastic resharding (adding a shard only remaps ``~1/N`` of keys).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "ring_point"]


def ring_point(token: str) -> int:
    """A deterministic 64-bit position on the ring for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps canonical cache keys to shard indices ``0..shards-1``."""

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        if replicas < 1:
            raise ValueError("a ring needs at least one virtual node")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(replicas):
                points.append((ring_point(f"shard:{shard}:vnode:{vnode}"),
                               shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (a canonical cache key)."""
        if self.shards == 1:
            return 0
        index = bisect.bisect(self._points, ring_point(key))
        if index == len(self._points):  # wrap around the ring
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> tuple[int, ...]:
        """Every shard, ordered by distance clockwise from ``key``.

        ``preference(key)[0] == shard_for(key)``; the rest is the
        failover order: walking the ring clockwise, each successor
        vnode owned by a shard not yet seen appends that shard.  A
        router that skips dead shards in this order re-routes each
        slot's keyspace exactly the way consistent hashing would
        rebalance it if the slot were removed from the ring — and the
        original owner resumes automatically once it is live again.
        """
        if self.shards == 1:
            return (0,)
        start = bisect.bisect(self._points, ring_point(key))
        order: list[int] = []
        seen = set()
        total = len(self._owners)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == self.shards:
                    break
        return tuple(order)

    def spread(self, keys: list[str]) -> dict[int, int]:
        """Key count per shard — handy for balance assertions."""
        counts: dict[int, int] = {shard: 0 for shard in range(self.shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
