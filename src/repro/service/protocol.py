"""The JSON wire schema shared by the daemon and its client.

Byte identity is the contract of the whole service: a result served
over the wire must compare equal — ``float.hex``-exact — to what a
direct in-process :func:`repro.api.solve` returns.  Python's ``json``
module already guarantees this (floats are emitted with ``repr``,
the shortest exact round-trip), so results travel as the plain
:meth:`~repro.api.SolveResult.to_dict` records; this module only adds
the envelopes (success, failure, rejection) and their inverses.

Wire envelopes
--------------
* success: ``{"id", "result", "from_cache", "coalesced", "elapsed_ms"}``
* failure: ``{"id", "error": {"kind": "solve_failed", "error_type",
  "error_message", "request", "attempts"}}`` — a faithful round-trip of
  the engine's :class:`~repro.engine.FailedResult` envelope;
* rejection: ``{"id", "error": {"kind": "admission_rejected",
  "retry_after", ...gate counters}}`` with HTTP 503 and a
  ``Retry-After`` header (blocked calls are *cleared*: the daemon
  holds no queue for them);
* deadline: requests may carry ``"deadline_ms"`` (a client latency
  budget); a request that cannot be served inside it returns HTTP 504
  with ``{"kind": "deadline_exceeded"}`` — see
  :func:`decode_deadline_ms`;
* degraded: under brownout (:mod:`repro.service.brownout`) a served
  result may be marked ``"degraded": true`` plus a
  ``"degraded_stage"`` and provenance — byte identity is only
  promised for envelopes *without* the marker.
"""

from __future__ import annotations

import itertools
import math
import os
from typing import Any

from ..api import SolveRequest, SolveResult
from ..engine import FailedResult, TaskAttempt
from ..exceptions import ConfigurationError

__all__ = [
    "decode_deadline_ms",
    "decode_failed",
    "decode_request",
    "decode_request_list",
    "decode_result",
    "encode_failed",
    "encode_result",
    "new_request_id",
]

_counter = itertools.count(1)
_prefix = f"{os.getpid():x}"


def new_request_id() -> str:
    """A process-unique request id, threaded through logs and replies."""
    return f"req-{_prefix}-{next(_counter):06x}"


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


def decode_request(payload: Any) -> SolveRequest:
    """Parse one request record (the ``SolveRequest.to_dict`` schema)."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"request payload must be an object, got {type(payload).__name__}"
        )
    record = payload.get("request", payload)
    try:
        return SolveRequest.from_dict(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed solve request: {exc}") from exc


def decode_deadline_ms(payload: Any) -> float | None:
    """The request's latency budget in **seconds**, or None.

    Clients send ``"deadline_ms"`` alongside the request record (on
    either a ``/solve`` or a ``/batch`` envelope): the wall-clock
    budget, in milliseconds, they are willing to wait.  The daemon
    enforces it end to end — an expired request returns a structured
    504 instead of occupying a batch slot.  Absent, ``null``, zero or
    negative budgets all decode to None (no deadline): a non-positive
    budget cannot mean "reject everything", only "no bound".
    """
    if not isinstance(payload, dict):
        return None
    raw = payload.get("deadline_ms")
    if raw is None:
        return None
    try:
        budget_ms = float(raw)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"deadline_ms must be a number, got {raw!r}"
        ) from exc
    if not budget_ms > 0.0 or not math.isfinite(budget_ms):
        return None  # 0, negative, NaN and inf all mean "no bound"
    return budget_ms / 1e3


def decode_request_list(payload: Any) -> list[SolveRequest]:
    """Parse a batch body: ``{"requests": [...]}`` or a bare list."""
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list) or not payload:
        raise ConfigurationError(
            "batch payload needs a non-empty 'requests' list"
        )
    return [decode_request(item) for item in payload]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


def encode_result(result: SolveResult) -> dict:
    record = result.to_dict()
    record["from_cache"] = result.from_cache
    return record


def decode_result(record: dict) -> SolveResult:
    from_cache = bool(record.get("from_cache", False))
    result = SolveResult.from_dict(record)
    if from_cache:
        from dataclasses import replace

        result = replace(result, from_cache=True)
    return result


def encode_failed(failed: FailedResult) -> dict:
    record = failed.to_dict()
    record["kind"] = "solve_failed"
    return record


def decode_failed(record: dict) -> FailedResult:
    """Rebuild the engine's failure envelope from its wire form."""
    return FailedResult(
        request=SolveRequest.from_dict(record["request"]),
        error_type=str(record.get("error_type", "ComputationError")),
        error_message=str(record.get("error_message", "")),
        attempts=tuple(
            TaskAttempt(
                attempt=int(a.get("attempt", 0)),
                outcome=str(a.get("outcome", "error")),
                elapsed=float(a.get("elapsed", 0.0)),
                detail=str(a.get("detail", "")),
            )
            for a in record.get("attempts", ())
        ),
    )
