"""The JSON wire schema shared by the daemon and its client.

Byte identity is the contract of the whole service: a result served
over the wire must compare equal — ``float.hex``-exact — to what a
direct in-process :func:`repro.api.solve` returns.  Python's ``json``
module already guarantees this (floats are emitted with ``repr``,
the shortest exact round-trip), so results travel as the plain
:meth:`~repro.api.SolveResult.to_dict` records; this module only adds
the envelopes (success, failure, rejection) and their inverses.

Wire envelopes
--------------
* success: ``{"id", "result", "from_cache", "coalesced", "elapsed_ms"}``
* failure: ``{"id", "error": {"kind": "solve_failed", "error_type",
  "error_message", "request", "attempts"}}`` — a faithful round-trip of
  the engine's :class:`~repro.engine.FailedResult` envelope;
* rejection: ``{"id", "error": {"kind": "admission_rejected",
  "retry_after", ...gate counters}}`` with HTTP 503 and a
  ``Retry-After`` header (blocked calls are *cleared*: the daemon
  holds no queue for them).
"""

from __future__ import annotations

import itertools
import os
from typing import Any

from ..api import SolveRequest, SolveResult
from ..engine import FailedResult, TaskAttempt
from ..exceptions import ConfigurationError

__all__ = [
    "decode_failed",
    "decode_request",
    "decode_request_list",
    "decode_result",
    "encode_failed",
    "encode_result",
    "new_request_id",
]

_counter = itertools.count(1)
_prefix = f"{os.getpid():x}"


def new_request_id() -> str:
    """A process-unique request id, threaded through logs and replies."""
    return f"req-{_prefix}-{next(_counter):06x}"


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


def decode_request(payload: Any) -> SolveRequest:
    """Parse one request record (the ``SolveRequest.to_dict`` schema)."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"request payload must be an object, got {type(payload).__name__}"
        )
    record = payload.get("request", payload)
    try:
        return SolveRequest.from_dict(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed solve request: {exc}") from exc


def decode_request_list(payload: Any) -> list[SolveRequest]:
    """Parse a batch body: ``{"requests": [...]}`` or a bare list."""
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list) or not payload:
        raise ConfigurationError(
            "batch payload needs a non-empty 'requests' list"
        )
    return [decode_request(item) for item in payload]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


def encode_result(result: SolveResult) -> dict:
    record = result.to_dict()
    record["from_cache"] = result.from_cache
    return record


def decode_result(record: dict) -> SolveResult:
    from_cache = bool(record.get("from_cache", False))
    result = SolveResult.from_dict(record)
    if from_cache:
        from dataclasses import replace

        result = replace(result, from_cache=True)
    return result


def encode_failed(failed: FailedResult) -> dict:
    record = failed.to_dict()
    record["kind"] = "solve_failed"
    return record


def decode_failed(record: dict) -> FailedResult:
    """Rebuild the engine's failure envelope from its wire form."""
    return FailedResult(
        request=SolveRequest.from_dict(record["request"]),
        error_type=str(record.get("error_type", "ComputationError")),
        error_message=str(record.get("error_message", "")),
        attempts=tuple(
            TaskAttempt(
                attempt=int(a.get("attempt", 0)),
                outcome=str(a.get("outcome", "error")),
                elapsed=float(a.get("elapsed", 0.0)),
                detail=str(a.get("detail", "")),
            )
            for a in record.get("attempts", ())
        ),
    )
