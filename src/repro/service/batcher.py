"""Micro-batching: nearby requests become one engine batch.

Requests that arrive within ``window`` seconds of each other are
flushed as a single :meth:`~repro.engine.BatchSolver.evaluate_many`
call, so wire-level traffic inherits the engine's batch economics:
size sweeps collapse onto one shared Algorithm 1 Q-grid, cache misses
fan out over the process pool, and every flush produces one
:class:`~repro.engine.BatchMetrics`.

The flush runner executes on a single dedicated worker thread: the
engine is thread-safe, but serializing flushes keeps its metrics
attribution exact and lets the next batch accumulate while the current
one computes — under load the batches grow on their own, which is the
whole point of the window.

Resilience
----------
* **Deadlines** — ``submit`` accepts an absolute ``deadline``
  (``time.monotonic()`` instant).  A member whose deadline has already
  passed when its flush starts is dropped — its future resolves with
  :class:`RequestExpiredError` instead of occupying a batch slot — and
  when *every* live member carries a deadline, the flush forwards the
  latest remaining budget to the runner so the engine can abandon
  attempts no client is still waiting for.
* **Worker supervision** — a flush whose runner dies with an
  infrastructure error (not a solver error: the engine runs non-strict
  and returns :class:`~repro.engine.FailedResult` envelopes for those)
  gets one respawn-and-requeue: the worker executor is rebuilt and the
  same batch rerun before the failure is relayed to callers.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..api import SolveRequest
from ..exceptions import ComputationError

__all__ = ["MicroBatcher", "BatcherClosedError", "RequestExpiredError"]


class BatcherClosedError(ComputationError):
    """The service is shutting down; the request was not evaluated."""


class RequestExpiredError(ComputationError):
    """The request's deadline passed before its flush started."""


class MicroBatcher:
    """Collects ``(request, future, deadline)`` entries and flushes them
    together."""

    def __init__(
        self,
        runner: Callable[..., list[Any]],
        *,
        window: float = 0.002,
        max_batch: int = 256,
        observer: Callable[[int, float], None] | None = None,
    ) -> None:
        self._runner = runner
        self.window = max(0.0, float(window))
        self.max_batch = max(1, int(max_batch))
        self._observer = observer
        self._pending: list[
            tuple[SolveRequest, asyncio.Future, float | None]
        ] = []
        self._timer: asyncio.TimerHandle | None = None
        self._flushes: set[asyncio.Task] = set()
        self._flush_began: dict[asyncio.Task, float] = {}
        self._executor = self._new_executor()
        self._closed = False
        self.flush_count = 0
        self.batched_requests = 0
        #: Members dropped at flush time because their deadline passed.
        self.expired_requests = 0
        #: Times the worker executor was rebuilt after a runner death.
        self.worker_respawns = 0

    @staticmethod
    def _accepts_deadline(runner: Callable[..., list[Any]]) -> bool:
        """Whether ``runner`` takes a second ``task_deadline`` argument."""
        try:
            parameters = inspect.signature(runner).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False
        positional = [
            p for p in parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        return len(positional) >= 2 or any(
            p.kind is p.VAR_POSITIONAL for p in parameters.values()
        )

    @staticmethod
    def _new_executor() -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-flush"
        )

    # ------------------------------------------------------------------

    def submit(
        self,
        request: SolveRequest,
        future: asyncio.Future,
        deadline: float | None = None,
    ) -> None:
        """Queue one request; ``future`` resolves with its result.

        ``deadline`` is an absolute ``time.monotonic()`` instant; a
        member still queued when it passes is dropped at flush time
        (future resolves with :class:`RequestExpiredError`).

        A terminally failing request resolves its future with the
        engine's :class:`~repro.engine.FailedResult` envelope (the
        engine runs non-strict); only infrastructure errors — the
        runner itself raising, twice — surface as future exceptions.
        """
        if self._closed:
            future.set_exception(
                BatcherClosedError("service is shutting down")
            )
            return
        self._pending.append((request, future, deadline))
        loop = asyncio.get_running_loop()
        if len(self._pending) >= self.max_batch:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._start_flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._window_expired)

    def _window_expired(self) -> None:
        self._timer = None
        if self._pending:
            self._start_flush()

    def flush_pending(self) -> None:
        """Flush the queue right now (drain path: no window to wait)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending:
            self._start_flush()

    @property
    def busy(self) -> bool:
        """Whether any request is queued or any flush is computing."""
        return bool(self._pending or self._flushes)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next flush (pressure signal)."""
        return len(self._pending)

    @property
    def worker_lag(self) -> float:
        """Age in seconds of the oldest in-flight flush (0.0 if idle).

        The brownout controller reads this as the batch-worker lag: a
        flush that has been computing for a long time means new windows
        are piling up behind a slow (or wedged) engine.
        """
        if not self._flush_began:
            return 0.0
        return time.monotonic() - min(self._flush_began.values())

    def _start_flush(self) -> None:
        batch, self._pending = self._pending, []
        task = asyncio.get_running_loop().create_task(self._flush(batch))
        self._flushes.add(task)
        self._flush_began[task] = time.monotonic()

        def _done(finished: asyncio.Task) -> None:
            self._flushes.discard(finished)
            self._flush_began.pop(finished, None)

        task.add_done_callback(_done)

    # ------------------------------------------------------------------

    def _expire(
        self, batch: list[tuple[SolveRequest, asyncio.Future, float | None]]
    ) -> tuple[
        list[tuple[SolveRequest, asyncio.Future, float | None]],
        float | None,
    ]:
        """Drop already-expired members; compute the batch budget.

        Returns the live members and the wall-clock budget (seconds) to
        forward to the runner: the *latest* remaining deadline when
        every live member has one (an attempt running past it serves
        nobody), else None (some member is unbounded).
        """
        now = time.monotonic()
        live: list[tuple[SolveRequest, asyncio.Future, float | None]] = []
        for request, future, deadline in batch:
            if deadline is not None and now >= deadline:
                self.expired_requests += 1
                if not future.done():
                    future.set_exception(
                        RequestExpiredError(
                            "deadline passed before the batch flushed"
                        )
                    )
                continue
            live.append((request, future, deadline))
        budget: float | None = None
        if live and all(deadline is not None for _, _, deadline in live):
            budget = max(deadline for _, _, deadline in live) - now
        return live, budget

    def _run(
        self, requests: list[SolveRequest], budget: float | None
    ) -> list[Any]:
        # Arity is probed per call: tests swap ``_runner`` for plain
        # single-argument stubs after construction.
        if self._accepts_deadline(self._runner):
            return self._runner(requests, budget)
        return self._runner(requests)

    async def _flush(
        self,
        batch: list[tuple[SolveRequest, asyncio.Future, float | None]],
    ) -> None:
        loop = asyncio.get_running_loop()
        batch, budget = self._expire(batch)
        if not batch:
            return
        requests = [request for request, _, _ in batch]
        began = time.perf_counter()
        try:
            results = await loop.run_in_executor(
                self._executor, self._run, requests, budget
            )
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            raise
        except BaseException as first:  # noqa: BLE001 - supervised below
            # The runner itself died (infrastructure, not a solver
            # error).  Supervise: rebuild the worker executor and rerun
            # this batch once before giving up.
            if self._closed:
                self._relay_failure(batch, first)
                return
            self._respawn_executor()
            try:
                results = await loop.run_in_executor(
                    self._executor, self._run, requests, budget
                )
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except BaseException as second:  # noqa: BLE001 - relayed
                self._relay_failure(batch, second)
                return
        self.flush_count += 1
        self.batched_requests += len(batch)
        if self._observer is not None:
            self._observer(len(batch), time.perf_counter() - began)
        for (_, future, _), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    def _respawn_executor(self) -> None:
        self.worker_respawns += 1
        old, self._executor = self._executor, self._new_executor()
        old.shutdown(wait=False)

    @staticmethod
    def _relay_failure(
        batch: list[tuple[SolveRequest, asyncio.Future, float | None]],
        exc: BaseException,
    ) -> None:
        for _, future, _ in batch:
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop accepting work, fail the queue, drain in-flight flushes."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for _, future, _ in pending:
            if not future.done():
                future.set_exception(
                    BatcherClosedError("service is shutting down")
                )
        if self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)
        self._executor.shutdown(wait=False)
