"""Micro-batching: nearby requests become one engine batch.

Requests that arrive within ``window`` seconds of each other are
flushed as a single :meth:`~repro.engine.BatchSolver.evaluate_many`
call, so wire-level traffic inherits the engine's batch economics:
size sweeps collapse onto one shared Algorithm 1 Q-grid, cache misses
fan out over the process pool, and every flush produces one
:class:`~repro.engine.BatchMetrics`.

The flush runner executes on a single dedicated worker thread: the
engine is thread-safe, but serializing flushes keeps its metrics
attribution exact and lets the next batch accumulate while the current
one computes — under load the batches grow on their own, which is the
whole point of the window.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..api import SolveRequest
from ..exceptions import ComputationError

__all__ = ["MicroBatcher", "BatcherClosedError"]


class BatcherClosedError(ComputationError):
    """The service is shutting down; the request was not evaluated."""


class MicroBatcher:
    """Collects ``(request, future)`` pairs and flushes them together."""

    def __init__(
        self,
        runner: Callable[[list[SolveRequest]], list[Any]],
        *,
        window: float = 0.002,
        max_batch: int = 256,
        observer: Callable[[int, float], None] | None = None,
    ) -> None:
        self._runner = runner
        self.window = max(0.0, float(window))
        self.max_batch = max(1, int(max_batch))
        self._observer = observer
        self._pending: list[tuple[SolveRequest, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._flushes: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-flush"
        )
        self._closed = False
        self.flush_count = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------

    def submit(self, request: SolveRequest, future: asyncio.Future) -> None:
        """Queue one request; ``future`` resolves with its result.

        A terminally failing request resolves its future with the
        engine's :class:`~repro.engine.FailedResult` envelope (the
        engine runs non-strict); only infrastructure errors — the
        runner itself raising — surface as future exceptions.
        """
        if self._closed:
            future.set_exception(
                BatcherClosedError("service is shutting down")
            )
            return
        self._pending.append((request, future))
        loop = asyncio.get_running_loop()
        if len(self._pending) >= self.max_batch:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._start_flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._window_expired)

    def _window_expired(self) -> None:
        self._timer = None
        if self._pending:
            self._start_flush()

    def _start_flush(self) -> None:
        batch, self._pending = self._pending, []
        task = asyncio.get_running_loop().create_task(self._flush(batch))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _flush(
        self, batch: list[tuple[SolveRequest, asyncio.Future]]
    ) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _ in batch]
        began = time.perf_counter()
        try:
            results = await loop.run_in_executor(
                self._executor, self._runner, requests
            )
        except BaseException as exc:  # noqa: BLE001 - relayed to callers
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.flush_count += 1
        self.batched_requests += len(batch)
        if self._observer is not None:
            self._observer(len(batch), time.perf_counter() - began)
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop accepting work, fail the queue, drain in-flight flushes."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for _, future in pending:
            if not future.done():
                future.set_exception(
                    BatcherClosedError("service is shutting down")
                )
        if self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)
        self._executor.shutdown(wait=False)
