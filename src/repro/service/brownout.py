"""Brownout: staged, measurable degradation under overload.

The OBS burst-loss literature frames the pattern this daemon follows:
when the preferred resource path is exhausted, *convert* the work to a
cheaper path before dropping it.  The
:class:`ServicePressureController` watches the daemon's own saturation
signals — admission-gate occupancy, micro-batcher queue depth,
batch-worker lag, the disk-cache circuit breaker, and (inside a
cluster) the router-reported fleet pressure from dead shards — folds
them into one pressure score, and walks an ordered ladder of sheds:

==== =================== ===============================================
stage name                behavior
==== =================== ===============================================
0    ``normal``          full service
1    ``admission-shrink`` the gate's soft token limit shrinks by
                          ``shrink_factor`` (blocking probability rises
                          exactly as the multi-rate model predicts for
                          a smaller ``N``)
2    ``cheap-method``    solves are rewritten to the robust fallback
                          chain's cheapest path (MVA first); responses
                          are stamped ``"degraded": true``
3    ``stale-cache``     only cache hits are served (provenance-stamped
                          degraded); misses fast-503
4    ``fast-503``        every solve is cleared before the gate
==== =================== ===============================================

Escalation and recovery are hysteretic — the score must hold above
(below) its threshold for several consecutive evaluations — so the
ladder does not flap at the boundary.  Every transition is observable:
the controller reports stage, per-component pressure and a transition
count through the daemon's ``/metrics``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..exceptions import ConfigurationError
from ..logging import get_logger, kv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import BatchSolver
    from .batcher import MicroBatcher
    from .gate import AdmissionGate

__all__ = [
    "BrownoutConfig",
    "ServicePressureController",
    "STAGE_NAMES",
    "STAGE_NORMAL",
    "STAGE_ADMISSION_SHRINK",
    "STAGE_CHEAP_METHOD",
    "STAGE_STALE_CACHE",
    "STAGE_FAST_503",
]

logger = get_logger("service.brownout")

STAGE_NORMAL = 0
STAGE_ADMISSION_SHRINK = 1
STAGE_CHEAP_METHOD = 2
STAGE_STALE_CACHE = 3
STAGE_FAST_503 = 4

STAGE_NAMES = (
    "normal",
    "admission-shrink",
    "cheap-method",
    "stale-cache",
    "fast-503",
)


@dataclass(frozen=True)
class BrownoutConfig:
    """Tunables of the pressure controller."""

    #: Master switch; disabled leaves the daemon permanently at stage 0.
    enabled: bool = True
    #: Seconds between pressure evaluations.
    interval: float = 0.25
    #: Stage >= 1 shrinks the gate's soft limit to
    #: ``ceil(capacity * shrink_factor)``.
    shrink_factor: float = 0.5
    #: Batch-worker lag (age of the oldest in-flight flush, seconds)
    #: that counts as pressure 1.0.
    lag_budget: float = 2.0
    #: Escalate one stage after the score holds >= this ...
    raise_threshold: float = 0.85
    #: ... for this many consecutive evaluations.
    raise_after: int = 2
    #: Recover one stage after the score holds <= this ...
    lower_threshold: float = 0.55
    #: ... for this many consecutive evaluations (slower than raising:
    #: recovering into a still-saturated gate just flaps).
    lower_after: int = 4
    #: Pressure contributed by an open disk-cache breaker.  Chosen to
    #: sit between the thresholds: an open breaker *holds* a degraded
    #: stage but cannot escalate one on its own.
    breaker_pressure: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.shrink_factor <= 1.0:
            raise ConfigurationError(
                "shrink_factor must be in (0, 1]"
            )
        if not self.lower_threshold < self.raise_threshold:
            raise ConfigurationError(
                "lower_threshold must be < raise_threshold"
            )
        if self.interval <= 0 or self.lag_budget <= 0:
            raise ConfigurationError(
                "interval and lag_budget must be > 0"
            )
        if self.raise_after < 1 or self.lower_after < 1:
            raise ConfigurationError(
                "raise_after and lower_after must be >= 1"
            )


class ServicePressureController:
    """Walks the brownout ladder from live saturation signals.

    The controller is event-loop-confined like the gate: ``evaluate``
    runs on the daemon's loop (a periodic task the server owns), so
    plain attributes suffice.  Tests and benchmarks drive it directly
    with :meth:`force_stage` / :meth:`evaluate`.
    """

    def __init__(
        self,
        config: BrownoutConfig,
        *,
        gate: "AdmissionGate",
        batcher: "MicroBatcher",
        engine: "BatchSolver",
        on_transition: Callable[[int, int, float], None] | None = None,
    ) -> None:
        self.config = config
        self.gate = gate
        self.batcher = batcher
        self.engine = engine
        self.on_transition = on_transition
        self.stage = STAGE_NORMAL
        self.transitions = 0
        self.forced = False
        self.last_pressure: dict[str, float] = {"overall": 0.0}
        self._above = 0
        self._below = 0
        #: Pressure pushed down from a cluster router (the
        #: ``X-Fleet-Pressure`` request header): the excess load this
        #: worker absorbs for dead shards, ``d / (W - d)``.  A lone
        #: daemon never sees the header and stays at 0.  As a
        #: component it is capped at ``breaker_pressure`` (see
        #: :meth:`pressure`).
        self.fleet_pressure = 0.0

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def pressure(self) -> dict[str, float]:
        """Per-component pressure in ``[0, ~1]`` plus their max."""
        gate_occupancy = (
            self.gate.in_use / self.gate.capacity
            if self.gate.capacity else 0.0
        )
        queue_depth = self.batcher.queue_depth
        queue = queue_depth / self.batcher.max_batch
        lag = self.batcher.worker_lag / self.config.lag_budget
        breaker = (
            self.config.breaker_pressure
            if self._breaker_open() else 0.0
        )
        # Like the breaker: capped between the thresholds, so a
        # shrunken fleet *holds* a degraded stage but cannot walk the
        # ladder to fast-503 on its own — the load it actually absorbs
        # shows up in gate/queue/lag and escalates honestly.
        fleet = min(
            self.config.breaker_pressure,
            max(self.fleet_pressure, 0.0),
        )
        components = {
            "gate": gate_occupancy,
            "queue": min(queue, 1.0),
            "lag": min(lag, 1.0),
            "breaker": breaker,
            "fleet": fleet,
        }
        components["overall"] = max(components.values())
        return components

    def _breaker_open(self) -> bool:
        # NB: DiskCache defines __len__, so an *empty* cache is falsy —
        # compare against None, not truthiness.
        disk = getattr(self.engine, "disk", None)
        breaker = getattr(disk, "breaker", None) if disk is not None else None
        return breaker is not None and breaker.state == "open"

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    @property
    def stage_name(self) -> str:
        return STAGE_NAMES[self.stage]

    @property
    def degrade_method(self) -> bool:
        """Stage >= 2: rewrite solves onto the cheapest robust path."""
        return self.stage >= STAGE_CHEAP_METHOD

    @property
    def stale_only(self) -> bool:
        """Stage 3: serve cache hits only, clear misses."""
        return self.stage == STAGE_STALE_CACHE

    @property
    def shedding(self) -> bool:
        """Stage 4: clear every solve before the gate."""
        return self.stage >= STAGE_FAST_503

    def evaluate(self) -> int:
        """One hysteretic step of the controller; returns the stage."""
        if not self.config.enabled or self.forced:
            return self.stage
        components = self.pressure()
        self.last_pressure = components
        score = components["overall"]
        if score >= self.config.raise_threshold:
            self._above += 1
            self._below = 0
            if (
                self._above >= self.config.raise_after
                and self.stage < STAGE_FAST_503
            ):
                self._above = 0
                self._transition(self.stage + 1, score)
        elif score <= self.config.lower_threshold:
            self._below += 1
            self._above = 0
            if (
                self._below >= self.config.lower_after
                and self.stage > STAGE_NORMAL
            ):
                self._below = 0
                self._transition(self.stage - 1, score)
        else:
            self._above = 0
            self._below = 0
        return self.stage

    def force_stage(self, stage: int, *, hold: bool = True) -> None:
        """Pin the ladder at ``stage`` (tests, benchmarks, operators).

        With ``hold`` (default) the periodic evaluation stops moving
        the ladder until :meth:`release` is called.
        """
        if not 0 <= stage < len(STAGE_NAMES):
            raise ConfigurationError(
                f"brownout stage must be in [0, {len(STAGE_NAMES) - 1}], "
                f"got {stage}"
            )
        self.forced = hold
        if stage != self.stage:
            self._transition(stage, self.last_pressure.get("overall", 0.0))

    def release(self) -> None:
        """Resume automatic stage control after :meth:`force_stage`."""
        self.forced = False
        self._above = 0
        self._below = 0

    def _transition(self, new_stage: int, score: float) -> None:
        old = self.stage
        self.stage = new_stage
        self.transitions += 1
        self._apply_side_effects(old, new_stage)
        logger.warning(
            "brownout transition %s",
            kv(**{"from": STAGE_NAMES[old], "to": STAGE_NAMES[new_stage],
                  "pressure": round(score, 4)}),
        )
        if self.on_transition is not None:
            self.on_transition(old, new_stage, score)

    def _apply_side_effects(self, old: int, new: int) -> None:
        # Stage >= 1 holds the shrunken admission limit for the whole
        # degraded ladder; only a full recovery to stage 0 restores it.
        if new >= STAGE_ADMISSION_SHRINK and old < STAGE_ADMISSION_SHRINK:
            shrunk = max(
                1, int(self.gate.capacity * self.config.shrink_factor)
            )
            self.gate.set_limit(shrunk)
        elif new == STAGE_NORMAL and old > STAGE_NORMAL:
            self.gate.set_limit(self.gate.capacity)

    # ------------------------------------------------------------------

    async def run(self) -> None:
        """The periodic evaluation loop (owned by the daemon)."""
        while True:
            await asyncio.sleep(self.config.interval)
            self.evaluate()
