"""The typed configuration surface of the solve-serving daemon.

Six PRs of growth left the service knobs scattered over CLI flags,
``SolveService`` kwargs and brownout defaults.  This module is the
single typed surface that replaces all of them:

* :class:`ServiceConfig` — every knob of one daemon (wire, admission,
  batching, timeouts, brownout) plus the :class:`ClusterConfig` block
  describing the multi-worker topology (:mod:`repro.service.cluster`);
* loaders — :meth:`ServiceConfig.from_toml`,
  :meth:`ServiceConfig.from_env` and :meth:`ServiceConfig.from_args`
  each build a config from one source, and :meth:`ServiceConfig.load`
  layers them with fixed precedence **defaults < TOML < environment <
  command line**;
* validation — every bad value raises
  :class:`~repro.exceptions.ConfigurationError` at construction time,
  never at serve time;
* round-trip — :meth:`ServiceConfig.to_toml` renders a file that
  :meth:`from_toml` parses back to an equal config, so a running
  fleet's exact configuration can be checked into version control.

The legacy keyword paths (``SolveService(host=..., port=...)``,
``start_in_thread(gate_capacity=...)``) keep working behind
``DeprecationWarning`` shims in :mod:`repro.service.server`; new code
configures the service exclusively through this class.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import ConfigurationError
from .brownout import BrownoutConfig

__all__ = ["ClusterConfig", "ServiceConfig", "ENV_PREFIX"]

#: Prefix of every environment variable :meth:`ServiceConfig.from_env`
#: reads (e.g. ``REPRO_SERVICE_PORT``, ``REPRO_SERVICE_WORKERS``).
ENV_PREFIX = "REPRO_SERVICE_"

_SHARD_STRATEGIES = ("hash", "reuseport")
_START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True)
class ClusterConfig:
    """Topology of a multi-worker fleet (see :mod:`repro.service.cluster`).

    The default (``workers=1``) means "no cluster": ``serve`` runs the
    classic single-process daemon and none of the other fields matter.
    """

    #: Worker processes.  1 disables the cluster layer entirely.
    workers: int = 1
    #: ``"hash"`` — a router on the public port proxies each request to
    #: the worker owning its canonical cache key (consistent hashing),
    #: so single-flight coalescing and cache locality keep their
    #: contracts fleet-wide.  ``"reuseport"`` — every worker binds the
    #: public port with ``SO_REUSEPORT`` and the kernel spreads
    #: connections (no key affinity; coalescing is per-worker only).
    shard_strategy: str = "hash"
    #: Shared on-disk cache tier for all workers (each worker guards it
    #: with its own circuit breaker); None leaves workers memory-only
    #: unless ``REPRO_ENGINE_CACHE_DIR`` says otherwise.
    cache_dir: str | None = None
    #: Interface workers bind their per-shard ports on (hash mode).
    worker_host: str = "127.0.0.1"
    #: ``multiprocessing`` start method; None picks ``fork`` when the
    #: spawning process is still single-threaded (cheap, CLI path) and
    #: ``spawn`` otherwise (safe under test harness threads).
    start_method: str | None = None
    #: Seconds between supervisor health sweeps (liveness + respawn).
    health_interval: float = 0.5
    #: Respawn a crashed worker on the same shard slot.
    respawn: bool = True
    #: Give up respawning one shard after this many restarts.
    max_respawns: int = 5
    #: Virtual nodes per shard on the consistent-hash ring.
    hash_replicas: int = 64
    #: Seconds to wait for a spawned worker to report ready.
    spawn_timeout: float = 30.0
    #: Re-route a down shard's keys to the next live shard on the ring
    #: (stamped ``X-Shard-Failover``) instead of answering 503.
    failover: bool = True
    #: First respawn delay (seconds); doubles per consecutive respawn.
    respawn_backoff_base: float = 0.25
    #: Ceiling of the exponential respawn backoff (before jitter).
    respawn_backoff_cap: float = 5.0
    #: A worker death within this many seconds of becoming ready counts
    #: as a *flap* against the slot's crash-loop circuit breaker.
    flap_window: float = 5.0
    #: Consecutive flaps that trip the slot's breaker (respawns pause).
    flap_threshold: int = 3
    #: Seconds a tripped slot waits before one half-open probe respawn.
    flap_cooldown: float = 10.0
    #: Router-side budget (seconds) for one proxied worker roundtrip;
    #: a stalled worker yields a 503/failover instead of a hung client
    #: connection.  None or 0 disables the bound.
    proxy_timeout: float | None = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("cluster workers must be >= 1")
        if self.shard_strategy not in _SHARD_STRATEGIES:
            raise ConfigurationError(
                f"shard_strategy must be one of {_SHARD_STRATEGIES}, "
                f"got {self.shard_strategy!r}"
            )
        if self.start_method is not None \
                and self.start_method not in _START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.health_interval <= 0:
            raise ConfigurationError("health_interval must be > 0")
        if self.max_respawns < 0:
            raise ConfigurationError("max_respawns must be >= 0")
        if self.hash_replicas < 1:
            raise ConfigurationError("hash_replicas must be >= 1")
        if self.spawn_timeout <= 0:
            raise ConfigurationError("spawn_timeout must be > 0")
        if self.respawn_backoff_base <= 0:
            raise ConfigurationError("respawn_backoff_base must be > 0")
        if self.respawn_backoff_cap < self.respawn_backoff_base:
            raise ConfigurationError(
                "respawn_backoff_cap must be >= respawn_backoff_base"
            )
        if self.flap_window <= 0:
            raise ConfigurationError("flap_window must be > 0")
        if self.flap_threshold < 1:
            raise ConfigurationError("flap_threshold must be >= 1")
        if self.flap_cooldown < 0:
            raise ConfigurationError("flap_cooldown must be >= 0")
        if self.proxy_timeout is not None and self.proxy_timeout <= 0:
            raise ConfigurationError(
                "proxy_timeout must be > 0 (or None to disable)"
            )


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of one :class:`~repro.service.server.SolveService`
    (and, through :attr:`cluster`, of a whole worker fleet)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests read it back).
    port: int = 8377
    #: Admission tokens — the daemon's "number of ports".  Every
    #: admitted request holds its weight in tokens until it completes;
    #: a request that cannot get its tokens is cleared with a 503,
    #: never queued.
    gate_capacity: int = 64
    #: Tokens one ``/solve`` request holds.
    point_weight: int = 1
    #: Tokens per member of a ``/batch`` request (total clamped to the
    #: gate capacity, like ``a_r <= min(N1, N2)``).
    batch_member_weight: int = 1
    #: Seconds the micro-batcher waits for companions before flushing.
    batch_window: float = 0.002
    #: Flush immediately once this many requests are pending.
    max_batch: int = 256
    #: Forwarded to ``evaluate_many`` (None: the engine decides).
    parallel: bool | None = None
    #: Artificial per-request token-holding time (seconds) *after* the
    #: solve completes.  0 in production; load tests set it to emulate
    #: a call-holding time so the gate reproduces classical loss-system
    #: blocking (the cross-validation tests check it against Erlang B).
    min_hold: float = 0.0
    #: Floor of the 503 ``retry_after`` hint (seconds); the live hint
    #: tracks an EWMA of recent holding times above this floor.
    retry_after_floor: float = 0.05
    #: Wall-clock seconds a peer may take to deliver the request head
    #: (and, separately, the body) before the connection is closed with
    #: a 408 — the slow-loris bound.  None or 0 disables it.
    read_timeout: float | None = 10.0
    #: Seconds a peer may take to drain its reply before the transport
    #: is aborted.  None or 0 disables it.
    write_timeout: float | None = 10.0
    #: Default budget of :meth:`SolveService.drain`: seconds to wait
    #: for in-flight work before giving up and stopping anyway.
    drain_timeout: float = 10.0
    #: Serve several requests per TCP connection (HTTP/1.1 keep-alive).
    #: Peers that close after one exchange are unaffected.
    keepalive: bool = True
    #: Serve cache-hot solves straight off the engine's in-memory
    #: result cache on the event loop, skipping coalesce + micro-batch
    #: (byte-identical by the cache contract; disable to force every
    #: request through the full miss path).
    hot_cache_fast_path: bool = True
    #: Bind the listening socket with ``SO_REUSEPORT`` (the cluster's
    #: ``reuseport`` shard strategy sets this on every worker).
    reuse_port: bool = False
    #: Shard slot of this process inside a cluster (stamped on replies
    #: as ``X-Shard`` and inside 503 envelopes); None outside one.
    shard_index: int | None = None
    #: Brownout ladder tunables; ``BrownoutConfig(enabled=False)``
    #: pins the daemon at full service.
    brownout: BrownoutConfig = field(default_factory=BrownoutConfig)
    #: Multi-worker topology; ``ClusterConfig()`` means single-process.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def __post_init__(self) -> None:
        if self.gate_capacity < 1:
            raise ConfigurationError("gate_capacity must be >= 1")
        if self.point_weight < 1 or self.batch_member_weight < 1:
            raise ConfigurationError("admission weights must be >= 1")
        if self.drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be >= 0")
        if not isinstance(self.brownout, BrownoutConfig):
            raise ConfigurationError(
                "brownout must be a BrownoutConfig, got "
                f"{self.brownout!r}"
            )
        if not isinstance(self.cluster, ClusterConfig):
            raise ConfigurationError(
                f"cluster must be a ClusterConfig, got {self.cluster!r}"
            )
        if (
            self.cluster.workers > 1
            and self.cluster.shard_strategy == "reuseport"
            and self.port == 0
        ):
            raise ConfigurationError(
                "the reuseport shard strategy needs a fixed port "
                "(workers must agree on the address they share)"
            )

    # ------------------------------------------------------------------
    # Loaders
    # ------------------------------------------------------------------

    @classmethod
    def load(
        cls,
        toml_path: str | Path | None = None,
        environ: Mapping[str, str] | None = None,
        args: Any | None = None,
    ) -> "ServiceConfig":
        """Layer every source with fixed precedence.

        Defaults < TOML file < environment < command-line arguments;
        each later source only overrides the keys it actually sets.
        """
        overrides: dict = {}
        if toml_path is not None:
            overrides = _merge(overrides, _toml_overrides(toml_path))
        if environ is not None:
            overrides = _merge(overrides, _env_overrides(environ))
        if args is not None:
            overrides = _merge(overrides, _args_overrides(args))
        return _build(overrides)

    @classmethod
    def from_toml(cls, path: str | Path) -> "ServiceConfig":
        """Parse a ``[service]`` / ``[service.brownout]`` / ``[cluster]``
        TOML file (the format :meth:`to_toml` writes)."""
        return _build(_toml_overrides(path))

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "ServiceConfig":
        """Build from ``REPRO_SERVICE_*`` variables (unset keys default)."""
        return _build(_env_overrides(
            os.environ if environ is None else environ
        ))

    @classmethod
    def from_args(cls, args: Any) -> "ServiceConfig":
        """Build from a ``crossbar-repro serve`` argparse namespace."""
        return _build(_args_overrides(args))

    @classmethod
    def from_legacy_kwargs(cls, kwargs: dict) -> "ServiceConfig":
        """Build from the pre-1.2 flat keyword spelling (shim path)."""
        service_fields = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - service_fields)
        if unknown:
            raise ConfigurationError(
                f"unknown service option(s): {', '.join(unknown)}"
            )
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_toml(self) -> str:
        """Render this config as TOML; ``from_toml`` inverts it."""
        lines = ["[service]"]
        for name in _SERVICE_SCALARS:
            lines.extend(_toml_line(name, getattr(self, name)))
        lines.append("")
        lines.append("[service.brownout]")
        for f in fields(BrownoutConfig):
            lines.extend(_toml_line(f.name, getattr(self.brownout, f.name)))
        lines.append("")
        lines.append("[cluster]")
        for f in fields(ClusterConfig):
            lines.extend(_toml_line(f.name, getattr(self.cluster, f.name)))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON/TOML-compatible scalars)."""
        record = dataclasses.asdict(self)
        record.pop("shard_index", None)
        return record

    def for_shard(self, shard: int, port: int) -> "ServiceConfig":
        """The per-worker view of a cluster config: one shard, one port,
        bound on the worker interface, no nested cluster."""
        reuseport = self.cluster.shard_strategy == "reuseport"
        return replace(
            self,
            host=self.host if reuseport else self.cluster.worker_host,
            port=self.port if reuseport else port,
            reuse_port=reuseport,
            shard_index=shard,
            cluster=ClusterConfig(),
        )


# ----------------------------------------------------------------------
# Source readers (each returns a *partial* nested override dict)
# ----------------------------------------------------------------------

#: Scalar ServiceConfig fields settable from TOML/env/args (the nested
#: blocks travel under their own section names).
_SERVICE_SCALARS = tuple(
    f.name for f in fields(ServiceConfig)
    if f.name not in ("brownout", "cluster", "shard_index")
)

#: Fields where a non-positive number means "disabled" (stored None).
_NONE_WHEN_NON_POSITIVE = ("read_timeout", "write_timeout",
                           "proxy_timeout")
#: Fields where an empty string means None.
_NONE_WHEN_EMPTY = ("cache_dir", "start_method")


def _normalize(section: str, name: str, value: Any) -> Any:
    if name in _NONE_WHEN_NON_POSITIVE and isinstance(value, (int, float)) \
            and value <= 0:
        return None
    if name in _NONE_WHEN_EMPTY and value == "":
        return None
    return value


def _known(section: str, names: tuple[str, ...], record: Mapping) -> dict:
    unknown = sorted(set(record) - set(names))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) in [{section}]: {', '.join(unknown)}"
        )
    return {
        name: _normalize(section, name, value)
        for name, value in record.items()
    }


def _toml_overrides(path: str | Path) -> dict:
    import tomllib

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read service config {str(path)!r}: {exc}"
        ) from exc
    try:
        document = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(
            f"service config {str(path)!r} is not valid TOML: {exc}"
        ) from exc
    unknown = sorted(set(document) - {"service", "cluster"})
    if unknown:
        raise ConfigurationError(
            f"unknown top-level section(s) in {str(path)!r}: "
            f"{', '.join(unknown)} (expected [service] and [cluster])"
        )
    overrides: dict = {}
    service = dict(document.get("service", {}))
    brownout = service.pop("brownout", {})
    overrides.update(_known("service", _SERVICE_SCALARS, service))
    if brownout:
        overrides["brownout"] = _known(
            "service.brownout",
            tuple(f.name for f in fields(BrownoutConfig)),
            brownout,
        )
    cluster = document.get("cluster", {})
    if cluster:
        overrides["cluster"] = _known(
            "cluster",
            tuple(f.name for f in fields(ClusterConfig)),
            cluster,
        )
    return overrides


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(
        f"{name} must be a boolean (1/0/true/false), got {raw!r}"
    )


def _env_overrides(environ: Mapping[str, str]) -> dict:
    """Read ``REPRO_SERVICE_*`` variables into a partial override dict.

    Scalar service fields map directly (``REPRO_SERVICE_PORT``);
    cluster fields map by name too (``REPRO_SERVICE_WORKERS``,
    ``REPRO_SERVICE_CACHE_DIR``); ``REPRO_SERVICE_BROWNOUT`` toggles
    the ladder's ``enabled`` flag.
    """
    overrides: dict = {}
    cluster: dict = {}
    cluster_types = {f.name: f for f in fields(ClusterConfig)}
    service_types = {f.name: f for f in fields(ServiceConfig)}
    for key, raw in environ.items():
        if not key.startswith(ENV_PREFIX):
            continue
        name = key[len(ENV_PREFIX):].lower()
        if name == "brownout":
            overrides["brownout"] = {
                "enabled": _parse_bool(key, raw)
            }
            continue
        if name in cluster_types and name not in _SERVICE_SCALARS:
            cluster[name] = _coerce_env(key, raw, cluster_types[name])
        elif name in _SERVICE_SCALARS:
            overrides[name] = _coerce_env(key, raw, service_types[name])
        else:
            raise ConfigurationError(
                f"unknown service environment variable {key}"
            )
    if cluster:
        overrides["cluster"] = cluster
    return overrides


def _coerce_env(key: str, raw: str, spec: dataclasses.Field) -> Any:
    kind = str(spec.type)
    try:
        if "bool" in kind and "None" not in kind:
            value: Any = _parse_bool(key, raw)
        elif kind.startswith("int"):
            value = int(raw)
        elif kind.startswith("float"):
            value = float(raw)
        elif "bool | None" in kind:
            value = _parse_bool(key, raw)
        else:
            value = raw
    except ValueError as exc:
        raise ConfigurationError(
            f"{key} must parse as {kind}, got {raw!r}"
        ) from exc
    return _normalize("env", spec.name, value)


#: serve CLI destinations that feed the cluster block.
_ARG_CLUSTER_FIELDS = ("workers", "shard_strategy", "cache_dir",
                       "start_method")


def _args_overrides(args: Any) -> dict:
    """Read an argparse namespace (``None`` attrs mean "not given")."""
    overrides: dict = {}
    cluster: dict = {}
    for name in _SERVICE_SCALARS:
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = _normalize("args", name, value)
    for name in _ARG_CLUSTER_FIELDS:
        value = getattr(args, name, None)
        if value is not None:
            cluster[name] = _normalize("args", name, value)
    if getattr(args, "no_brownout", False):
        overrides["brownout"] = {"enabled": False}
    if getattr(args, "no_keepalive", False):
        overrides["keepalive"] = False
    if cluster:
        overrides["cluster"] = cluster
    return overrides


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def _merge(base: dict, extra: dict) -> dict:
    merged = dict(base)
    for key, value in extra.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _build(overrides: dict) -> ServiceConfig:
    overrides = dict(overrides)
    brownout = overrides.pop("brownout", None)
    cluster = overrides.pop("cluster", None)
    try:
        if brownout is not None:
            overrides["brownout"] = BrownoutConfig(**brownout)
        if cluster is not None:
            overrides["cluster"] = ClusterConfig(**cluster)
        return ServiceConfig(**overrides)
    except TypeError as exc:
        raise ConfigurationError(f"bad service configuration: {exc}") \
            from exc


def _toml_line(name: str, value: Any) -> list[str]:
    if value is None:
        if name in _NONE_WHEN_NON_POSITIVE:
            return [f"{name} = 0.0"]
        if name in _NONE_WHEN_EMPTY:
            return [f'{name} = ""']
        return []  # tri-state (e.g. parallel): omitted means default
    if isinstance(value, bool):
        return [f"{name} = {'true' if value else 'false'}"]
    if isinstance(value, (int, float)):
        return [f"{name} = {value!r}"]
    return [f'{name} = "{value}"']
