"""A small blocking client for the solve-serving daemon (stdlib only).

>>> from repro.service import ServiceClient
>>> client = ServiceClient("127.0.0.1", 8377)           # doctest: +SKIP
>>> client = ServiceClient(base_url="http://127.0.0.1:8377")  # doctest: +SKIP
>>> result = client.solve(request)                      # doctest: +SKIP

Every call opens a fresh connection and closes it afterwards, so one
client instance is safe to share across threads.  Pointed at a
cluster router, the client also learns the shard map: 503s carry the
rejecting shard (``AdmissionRejectedError.shard``, tallied per shard
in ``shard_retry_after``), hedged duplicates go to a different worker
than the one owning the request's key, and repeated failures from one
shard (``shard_failures``) force a refresh of the cached map — the
shard may have respawned onto a new port or died — instead of hedging
against a stale one.

Retry policy belongs to the caller, and this client makes it explicit:
by default ``solve`` raises :class:`AdmissionRejectedError` on a 503 —
carrying the structured ``retry_after`` hint — without retrying.  An
opt-in :class:`RetryPolicy` adds:

* **retries with exponential backoff** for 503 clears and transport
  errors, sleeping the *longer* of the server's ``retry_after`` hint
  and the deterministic backoff for that attempt (the server knows its
  own holding times better than any client-side curve);
* **hedged requests** — with ``hedge_after`` set, a second identical
  request launches if the first has not answered within the threshold;
  whichever answers first wins (solves are pure, so the results are
  byte-identical either way).

A 504 (:class:`DeadlineExceededError`) is never retried: the budget
the caller attached to the request is gone by definition.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from dataclasses import dataclass
from http.client import HTTPConnection
from typing import Any, Callable

from ..api import SolveRequest, SolveResult
from ..engine import FailedResult
from ..exceptions import ComputationError, ConfigurationError
from .protocol import decode_failed, decode_result

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "RemoteSolveError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceProtocolError",
]


class ServiceProtocolError(ComputationError):
    """The daemon replied with something the client cannot parse."""


class RemoteSolveError(ComputationError):
    """The engine terminally failed the request on the server side."""

    def __init__(self, failed: FailedResult) -> None:
        super().__init__(
            f"remote solve failed: {failed.error_type}: "
            f"{failed.error_message}"
        )
        self.failed = failed


class AdmissionRejectedError(ComputationError):
    """The daemon cleared the request (blocked-calls-cleared 503)."""

    def __init__(self, payload: dict) -> None:
        error = payload.get("error", {})
        super().__init__(
            error.get("message", "admission rejected (503)")
        )
        self.retry_after = float(error.get("retry_after", 0.0) or 0.0)
        self.blocking_ratio = float(error.get("blocking_ratio", 0.0) or 0.0)
        self.kind = str(error.get("kind", "admission_rejected"))
        #: Which cluster shard cleared the call (None on a single daemon).
        raw_shard = error.get("shard")
        self.shard: int | None = (
            int(raw_shard) if raw_shard is not None else None
        )
        self.payload = payload


class DeadlineExceededError(ComputationError):
    """The request's ``deadline_ms`` budget expired server-side (504)."""

    def __init__(self, payload: dict) -> None:
        error = payload.get("error", {})
        super().__init__(
            error.get("message", "deadline exceeded (504)")
        )
        self.phase = str(error.get("phase", ""))
        self.payload = payload


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry/hedging knobs (all off by default)."""

    #: Retries after the initial attempt for 503s and transport errors.
    max_retries: int = 0
    #: Base of the exponential backoff (seconds).
    backoff_base: float = 0.05
    #: Ceiling of one backoff sleep (seconds).
    backoff_cap: float = 2.0
    #: Launch a duplicate request if the first has not answered within
    #: this many seconds; None disables hedging.
    hedge_after: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff values must be >= 0")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigurationError("hedge_after must be > 0")

    def backoff(self, retry_number: int) -> float:
        """Deterministic sleep before retry ``retry_number`` (1-based)."""
        return min(
            self.backoff_cap,
            self.backoff_base * (2.0 ** (retry_number - 1)),
        )


class ServiceClient:
    """Blocking JSON-over-HTTP client for :mod:`repro.service`.

    Address either classic ``(host, port)`` style or ``base_url``
    style — ``ServiceClient(base_url="http://127.0.0.1:8377")`` — the
    natural spelling when the target is a cluster router rather than a
    daemon you started yourself.  Against a hash-sharded cluster the
    client discovers the shard map (:meth:`cluster_map`) and hedged
    requests go to a *different* worker than the one that owns the
    request's key, so a hot shard is never hedged against itself.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8377,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        base_url: str | None = None,
    ) -> None:
        if base_url is not None:
            host, port = self._parse_base_url(base_url)
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._sleep = sleep
        #: Observable retry/hedge counters (tests and capacity tuning).
        self.retries = 0
        self.hedges = 0
        self.hedges_won = 0
        #: Last ``retry_after`` hint per rejecting shard (``None`` key:
        #: single daemon / router-level rejections).
        self.shard_retry_after: dict[int | None, float] = {}
        #: Consecutive failures (503 or transport error) per shard
        #: since the last success; a success clears the whole table.
        self.shard_failures: dict[int | None, int] = {}
        #: Refresh the cached ``/cluster`` map once a shard racks up
        #: this many consecutive failures — it may be respawning on a
        #: new port, failing over, or declared dead, and hedging
        #: against a stale map just re-dials the corpse.
        self.map_refresh_after = 2
        #: Map refreshes forced by repeated shard failures.
        self.map_refreshes = 0
        # Cluster shard map, fetched lazily on first hedge; False means
        # "probed, not a hash cluster" so we never probe twice.
        self._cluster: dict | None | bool = None

    @staticmethod
    def _parse_base_url(base_url: str) -> tuple[str, int]:
        from urllib.parse import urlsplit

        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ConfigurationError(
                f"unsupported scheme {parts.scheme!r} in base_url "
                f"(this client speaks plain http)"
            )
        if not parts.hostname:
            raise ConfigurationError(
                f"base_url {base_url!r} has no host"
            )
        return parts.hostname, parts.port or 8377

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------

    def _roundtrip(
        self, method: str, path: str, payload: Any | None = None,
        address: tuple[str, int] | None = None,
    ) -> tuple[int, dict | str]:
        host, port = address if address is not None else (
            self.host, self.port
        )
        connection = HTTPConnection(host, port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                try:
                    return response.status, json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceProtocolError(
                        f"unparseable JSON reply ({exc})"
                    ) from exc
            return response.status, raw.decode("utf-8", "replace")
        finally:
            connection.close()

    def _check(self, status: int, payload: dict | str) -> dict:
        if not isinstance(payload, dict):
            raise ServiceProtocolError(
                f"expected a JSON object, got {type(payload).__name__} "
                f"(HTTP {status})"
            )
        if status == 503:
            raise AdmissionRejectedError(payload)
        if status == 504:
            raise DeadlineExceededError(payload)
        if status == 500 and payload.get("error", {}).get(
            "kind"
        ) == "solve_failed":
            raise RemoteSolveError(decode_failed(payload["error"]))
        if status != 200:
            message = payload.get("error", {}).get("message", payload)
            raise ServiceProtocolError(f"HTTP {status}: {message}")
        return payload

    # ------------------------------------------------------------------
    # Retry / hedge machinery
    # ------------------------------------------------------------------

    def _with_retries(
        self,
        call: Callable[..., dict],
        cache_key: str | None = None,
    ) -> dict:
        policy = self.retry
        attempt = 0
        while True:
            try:
                reply = self._maybe_hedged(call, cache_key)
                self.shard_failures.clear()
                return reply
            except AdmissionRejectedError as exc:
                # Remember the rejecting shard's own hint: each shard
                # is its own loss system with its own holding times.
                self.shard_retry_after[exc.shard] = exc.retry_after
                self._note_shard_failure(exc.shard)
                if attempt >= policy.max_retries:
                    raise
                # The server's hint is an EWMA of real holding times;
                # trust it when it is longer than our own curve.
                delay = max(exc.retry_after, policy.backoff(attempt + 1))
            except (ConnectionError, OSError):
                self._note_shard_failure(None)
                if attempt >= policy.max_retries:
                    raise
                delay = policy.backoff(attempt + 1)
            attempt += 1
            self.retries += 1
            if delay > 0:
                self._sleep(delay)

    def _note_shard_failure(self, shard: int | None) -> None:
        """Track consecutive per-shard failures; repeated ones mean
        the cached shard map is probably stale (the shard respawned
        onto a new port, is failing over, or is dead) — re-fetch it
        instead of retrying/hedging against a corpse."""
        count = self.shard_failures.get(shard, 0) + 1
        self.shard_failures[shard] = count
        if count < self.map_refresh_after:
            return
        if self._cluster in (None, False):
            return  # never probed, or probed and not a cluster
        self.cluster_map(refresh=True)
        self.map_refreshes += 1
        self.shard_failures[shard] = 0

    def _maybe_hedged(
        self, call: Callable[..., dict], cache_key: str | None
    ) -> dict:
        hedge_after = self.retry.hedge_after
        if hedge_after is None:
            return call()
        pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-client-hedge"
        )
        try:
            first = pool.submit(call)
            try:
                return first.result(hedge_after)
            except FutureTimeoutError:
                pass
            self.hedges += 1
            # Never hedge the owning shard against itself: on a hash
            # cluster the duplicate goes straight to a different worker
            # (solves are pure, so any worker answers byte-identically).
            second = pool.submit(call, self._hedge_address(cache_key))
            done, _ = wait({first, second}, return_when=FIRST_COMPLETED)
            winner = done.pop()
            if winner is second:
                self.hedges_won += 1
            return winner.result()
        finally:
            # Do not wait for the losing request; its thread dies once
            # the daemon answers (or its socket times out).
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Cluster awareness
    # ------------------------------------------------------------------

    def cluster_map(self, refresh: bool = False) -> dict | None:
        """The router's ``/cluster`` shard map, or None when the target
        is a single daemon (result is cached; ``refresh`` re-probes)."""
        if refresh or self._cluster is None:
            try:
                status, payload = self._roundtrip("GET", "/cluster")
            except (ConnectionError, OSError):
                return None
            self._cluster = (
                payload if status == 200 and isinstance(payload, dict)
                else False
            )
        return None if self._cluster is False else self._cluster

    def _hedge_address(
        self, cache_key: str | None
    ) -> tuple[str, int] | None:
        """A *different* shard's address for the hedged duplicate, or
        None (same front door) off-cluster or without a key."""
        if cache_key is None:
            return None
        chart = self.cluster_map()
        if not chart or chart.get("strategy") != "hash":
            return None
        shards = {
            entry["shard"]: (entry["host"], entry["port"])
            for entry in chart.get("shards", [])
            if entry.get("port")
        }
        workers = int(chart.get("workers", 0))
        if workers < 2:
            return None
        from .sharding import HashRing

        owner = HashRing(
            workers, int(chart.get("hash_replicas", 64))
        ).shard_for(cache_key)
        return shards.get((owner + 1) % workers)

    # ------------------------------------------------------------------

    def solve_raw(
        self, request: SolveRequest, deadline_ms: float | None = None
    ) -> dict:
        """One request; the full checked reply envelope.

        The envelope carries fields ``solve`` drops: ``coalesced``,
        ``elapsed_ms`` and — under brownout — the ``degraded`` /
        ``degraded_stage`` markers.
        """
        body: dict[str, Any] = {"request": request.to_dict()}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms

        def call(address: tuple[str, int] | None = None) -> dict:
            status, payload = self._roundtrip(
                "POST", "/solve", body, address=address
            )
            return self._check(status, payload)

        return self._with_retries(call, cache_key=request.cache_key)

    def solve(
        self, request: SolveRequest, deadline_ms: float | None = None
    ) -> SolveResult:
        """One request; byte-identical to a local ``repro.api.solve``."""
        payload = self.solve_raw(request, deadline_ms=deadline_ms)
        try:
            return decode_result(payload["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceProtocolError(
                f"malformed solve reply: {exc}"
            ) from exc

    def solve_many(
        self,
        requests: list[SolveRequest],
        deadline_ms: float | None = None,
    ) -> list[SolveResult | FailedResult]:
        """A batch; failed members come back as ``FailedResult``s."""
        body: dict[str, Any] = {
            "requests": [r.to_dict() for r in requests]
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms

        def call(address: tuple[str, int] | None = None) -> dict:
            status, payload = self._roundtrip(
                "POST", "/batch", body, address=address
            )
            return self._check(status, payload)

        payload = self._with_retries(
            call,
            cache_key=requests[0].cache_key if requests else None,
        )
        out: list[SolveResult | FailedResult] = []
        try:
            for item in payload["results"]:
                if item.get("failed") or item.get("kind") == "solve_failed":
                    out.append(decode_failed(item))
                else:
                    out.append(decode_result(item))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceProtocolError(
                f"malformed batch reply: {exc}"
            ) from exc
        return out

    def health(self) -> dict:
        """The ``/healthz`` report.  A degraded fleet answers 503
        with a full report body (``status``, ``dead_shards``) — that
        is the probe's answer, returned rather than raised; inspect
        ``payload["status"]``."""
        status, payload = self._roundtrip("GET", "/healthz")
        if status == 503 and isinstance(payload, dict) \
                and "status" in payload:
            return payload
        return self._check(status, payload)

    def metrics(self) -> str:
        """The raw Prometheus text page."""
        status, payload = self._roundtrip("GET", "/metrics")
        if status != 200 or not isinstance(payload, str):
            raise ServiceProtocolError(f"metrics scrape failed ({status})")
        return payload

    def metric_value(self, name: str, **labels: str) -> float:
        """Parse one sample off ``/metrics`` (exact ``repr`` floats)."""
        page = self.metrics()
        wanted = {f'{k}="{v}"' for k, v in labels.items()}
        for line in page.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            series, _, value = line.rpartition(" ")
            base, _, label_text = series.partition("{")
            if base != name:
                continue
            present = set(
                label_text.rstrip("}").split(",")
            ) if label_text else set()
            if wanted <= present:
                return float(value)
        raise ServiceProtocolError(
            f"metric {name}{sorted(wanted)} not found on /metrics"
        )
