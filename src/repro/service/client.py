"""A small blocking client for the solve-serving daemon (stdlib only).

>>> from repro.service import ServiceClient
>>> client = ServiceClient("127.0.0.1", 8377)           # doctest: +SKIP
>>> result = client.solve(request)                      # doctest: +SKIP

Every call opens a fresh connection (the daemon closes after each
response), so one client instance is safe to share across threads.
``solve`` raises :class:`AdmissionRejectedError` on a 503 — carrying
the structured ``retry_after`` hint — instead of silently retrying:
blocked calls are *cleared* and retry policy belongs to the caller.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any

from ..api import SolveRequest, SolveResult
from ..engine import FailedResult
from ..exceptions import ComputationError
from .protocol import decode_failed, decode_result

__all__ = [
    "AdmissionRejectedError",
    "RemoteSolveError",
    "ServiceClient",
    "ServiceProtocolError",
]


class ServiceProtocolError(ComputationError):
    """The daemon replied with something the client cannot parse."""


class RemoteSolveError(ComputationError):
    """The engine terminally failed the request on the server side."""

    def __init__(self, failed: FailedResult) -> None:
        super().__init__(
            f"remote solve failed: {failed.error_type}: "
            f"{failed.error_message}"
        )
        self.failed = failed


class AdmissionRejectedError(ComputationError):
    """The daemon cleared the request (blocked-calls-cleared 503)."""

    def __init__(self, payload: dict) -> None:
        error = payload.get("error", {})
        super().__init__(
            error.get("message", "admission rejected (503)")
        )
        self.retry_after = float(error.get("retry_after", 0.0) or 0.0)
        self.blocking_ratio = float(error.get("blocking_ratio", 0.0) or 0.0)
        self.payload = payload


class ServiceClient:
    """Blocking JSON-over-HTTP client for :mod:`repro.service`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8377,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _roundtrip(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, dict | str]:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                try:
                    return response.status, json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceProtocolError(
                        f"unparseable JSON reply ({exc})"
                    ) from exc
            return response.status, raw.decode("utf-8", "replace")
        finally:
            connection.close()

    def _check(self, status: int, payload: dict | str) -> dict:
        if not isinstance(payload, dict):
            raise ServiceProtocolError(
                f"expected a JSON object, got {type(payload).__name__} "
                f"(HTTP {status})"
            )
        if status == 503:
            raise AdmissionRejectedError(payload)
        if status == 500 and payload.get("error", {}).get(
            "kind"
        ) == "solve_failed":
            raise RemoteSolveError(decode_failed(payload["error"]))
        if status != 200:
            message = payload.get("error", {}).get("message", payload)
            raise ServiceProtocolError(f"HTTP {status}: {message}")
        return payload

    # ------------------------------------------------------------------

    def solve(self, request: SolveRequest) -> SolveResult:
        """One request; byte-identical to a local ``repro.api.solve``."""
        status, payload = self._roundtrip(
            "POST", "/solve", {"request": request.to_dict()}
        )
        payload = self._check(status, payload)
        try:
            return decode_result(payload["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceProtocolError(
                f"malformed solve reply: {exc}"
            ) from exc

    def solve_many(
        self, requests: list[SolveRequest]
    ) -> list[SolveResult | FailedResult]:
        """A batch; failed members come back as ``FailedResult``s."""
        status, payload = self._roundtrip(
            "POST", "/batch",
            {"requests": [r.to_dict() for r in requests]},
        )
        payload = self._check(status, payload)
        out: list[SolveResult | FailedResult] = []
        try:
            for item in payload["results"]:
                if item.get("failed") or item.get("kind") == "solve_failed":
                    out.append(decode_failed(item))
                else:
                    out.append(decode_result(item))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceProtocolError(
                f"malformed batch reply: {exc}"
            ) from exc
        return out

    def health(self) -> dict:
        status, payload = self._roundtrip("GET", "/healthz")
        return self._check(status, payload)

    def metrics(self) -> str:
        """The raw Prometheus text page."""
        status, payload = self._roundtrip("GET", "/metrics")
        if status != 200 or not isinstance(payload, str):
            raise ServiceProtocolError(f"metrics scrape failed ({status})")
        return payload

    def metric_value(self, name: str, **labels: str) -> float:
        """Parse one sample off ``/metrics`` (exact ``repr`` floats)."""
        page = self.metrics()
        wanted = {f'{k}="{v}"' for k, v in labels.items()}
        for line in page.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            series, _, value = line.rpartition(" ")
            base, _, label_text = series.partition("{")
            if base != name:
                continue
            present = set(
                label_text.rstrip("}").split(",")
            ) if label_text else set()
            if wanted <= present:
                return float(value)
        raise ServiceProtocolError(
            f"metric {name}{sorted(wanted)} not found on /metrics"
        )
