"""Single-flight request coalescing keyed by canonical cache keys.

Two concurrent requests for the same model are the same computation:
the canonical key (:mod:`repro.engine.keys`) already proves it, and
solves are pure, so the second caller can simply await the first
caller's in-flight future instead of entering the engine at all.  The
map holds *futures*, not results — completed work belongs to the
engine's caches; this layer only deduplicates the in-flight window,
which is exactly the window the engine's caches cannot cover.

Only ever touched from the service event loop (no locks needed).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

__all__ = ["SingleFlight"]


class SingleFlight:
    """An in-flight future per canonical key, with exact hit counts."""

    def __init__(self) -> None:
        self._flights: dict[str, asyncio.Future] = {}
        self.leaders = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._flights)

    def join(self, key: str) -> asyncio.Future | None:
        """The in-flight future for ``key``, if a leader is working."""
        future = self._flights.get(key)
        if future is not None:
            self.hits += 1
        return future

    def lead(
        self, key: str, loop: asyncio.AbstractEventLoop
    ) -> asyncio.Future:
        """Register a new leader future for ``key``.

        The entry removes itself the moment the future resolves (with a
        result *or* an exception): a later identical request starts a
        fresh flight — and is then served by the engine's result cache,
        so nothing is recomputed either way.
        """
        future: asyncio.Future = loop.create_future()
        self._flights[key] = future
        future.add_done_callback(self._evict(key, future))
        self.leaders += 1
        return future

    def _evict(
        self, key: str, future: asyncio.Future
    ) -> Callable[[Any], None]:
        def callback(_done: Any) -> None:
            if self._flights.get(key) is future:
                del self._flights[key]

        return callback
