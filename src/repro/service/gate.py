"""Weighted admission gate with blocked-calls-cleared semantics.

The daemon bounds its own concurrency exactly the way the paper's
crossbar bounds connections: a request class ``r`` "acquires ``a_r``
ports" (here: tokens) for its holding time, and a request that cannot
get its tokens *right now* is cleared — rejected with a structured
503 — never queued.  The gate therefore behaves as a multi-rate loss
system, and the ratio ``rejected / offered`` it reports is the served
analogue of the paper's blocking probability ``1 - B_r(N)`` (compare
it to :func:`repro.baselines.erlang.erlang_b` at the equivalent
offered load; the cross-validation tests do).

The gate is deliberately not a lock: it is only ever touched from the
service's event loop, so plain counters suffice and every statistic is
exact (no sampling, no races).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["AdmissionGate", "GateLease", "GateSnapshot"]


@dataclass(frozen=True)
class GateLease:
    """Proof of admission: the tokens one request holds until release."""

    weight: int
    admission_class: str


@dataclass(frozen=True)
class GateSnapshot:
    """Exact gate statistics at one instant."""

    capacity: int
    in_use: int
    peak_in_use: int
    offered: int
    admitted: int
    rejected: int
    released: int
    #: Soft admission limit (<= capacity); the brownout controller
    #: shrinks this under pressure.  Equals ``capacity`` when unshrunk.
    limit: int = 0

    @property
    def blocking_ratio(self) -> float:
        """Measured blocking probability ``rejected / offered``."""
        return self.rejected / self.offered if self.offered else 0.0


class AdmissionGate:
    """A bounded pool of admission tokens, blocked-calls-cleared.

    ``try_acquire`` either grants the full weight immediately or
    refuses (returning None) — there is no queue to build up under
    overload, so the daemon's memory footprint and latency stay
    bounded no matter the offered load.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"gate capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        #: Soft limit actually enforced by ``try_acquire``.  Starts at
        #: ``capacity``; the brownout controller shrinks it (stage 1,
        #: "admission-shrink") and restores it when pressure clears.
        #: Shrinking never evicts holders — ``in_use`` may exceed the
        #: limit transiently until leases drain.
        self.limit = capacity
        self.in_use = 0
        self.peak_in_use = 0
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.released = 0
        self._offered_by_class: dict[str, int] = {}
        self._rejected_by_class: dict[str, int] = {}

    # ------------------------------------------------------------------

    def effective_weight(self, weight: int) -> int:
        """Clamp a requested weight into ``[1, capacity]``.

        Mirrors the model's ``a_r <= min(N1, N2)`` admissibility bound:
        a sweep wider than the whole gate takes the whole gate rather
        than being permanently inadmissible.
        """
        return max(1, min(int(weight), self.capacity))

    def try_acquire(
        self, admission_class: str, weight: int
    ) -> GateLease | None:
        """Admit (and count) or clear (and count) one request."""
        weight = self.effective_weight(weight)
        self.offered += 1
        self._offered_by_class[admission_class] = (
            self._offered_by_class.get(admission_class, 0) + 1
        )
        if self.in_use + weight > self.limit:
            self.rejected += 1
            self._rejected_by_class[admission_class] = (
                self._rejected_by_class.get(admission_class, 0) + 1
            )
            return None
        self.in_use += weight
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        self.admitted += 1
        return GateLease(weight=weight, admission_class=admission_class)

    def release(self, lease: GateLease) -> None:
        self.in_use -= lease.weight
        self.released += 1
        if self.in_use < 0:  # pragma: no cover - double release is a bug
            raise ConfigurationError("admission gate released below zero")

    def set_limit(self, limit: int) -> int:
        """Clamp and apply a new soft admission limit; returns it.

        The limit lives in ``[1, capacity]``: the gate can be shrunk to
        a trickle but never closed outright (stage 4 of the brownout
        ladder rejects *before* the gate instead), and it can never
        exceed the configured capacity.
        """
        self.limit = max(1, min(int(limit), self.capacity))
        return self.limit

    # ------------------------------------------------------------------

    def offered_by_class(self) -> dict[str, int]:
        return dict(self._offered_by_class)

    def rejected_by_class(self) -> dict[str, int]:
        return dict(self._rejected_by_class)

    def snapshot(self) -> GateSnapshot:
        return GateSnapshot(
            capacity=self.capacity,
            in_use=self.in_use,
            peak_in_use=self.peak_in_use,
            offered=self.offered,
            admitted=self.admitted,
            rejected=self.rejected,
            released=self.released,
            limit=self.limit,
        )
