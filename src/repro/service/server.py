"""The asyncio solve-serving daemon.

One event loop owns everything: connections are parsed by
:mod:`repro.service.httpio`, admission-controlled by the
blocked-calls-cleared :class:`~repro.service.gate.AdmissionGate`,
deduplicated by the :class:`~repro.service.coalesce.SingleFlight` map,
and micro-batched by the :class:`~repro.service.batcher.MicroBatcher`
into :meth:`~repro.engine.BatchSolver.evaluate_many` calls running on
a dedicated worker thread.  The event loop itself never computes — it
only routes — so the daemon stays responsive (and ``/metrics`` stays
scrapeable) while the engine grinds through a cold sweep.

Endpoints
---------
* ``POST /solve`` — one :class:`~repro.api.SolveRequest` record;
* ``POST /batch`` — ``{"requests": [...]}``, admission-weighted by
  size (a sweep "acquires more ports" than a point solve, the paper's
  multi-rate ``a_r`` in miniature);
* ``GET /metrics`` — Prometheus text format;
* ``GET /healthz`` — liveness + engine/gate snapshots.

Byte identity is enforced by tests: a result served over this wire
compares equal to a direct :func:`repro.api.solve` on the same
request, coalesced, batched or cached.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from .. import __version__
from ..api import SolveRequest, SolveResult
from ..engine import BatchSolver, get_default_engine
from ..exceptions import ConfigurationError, CrossbarError
from ..logging import get_logger, kv
from ..methods import SolveMethod
from .batcher import BatcherClosedError, MicroBatcher, RequestExpiredError
from .brownout import (
    STAGE_NAMES,
    BrownoutConfig,
    ServicePressureController,
)
from .coalesce import SingleFlight
from .config import ClusterConfig, ServiceConfig
from .gate import AdmissionGate
from .httpio import (
    HttpError,
    HttpRequest,
    SlowClientError,
    read_request,
    write_response,
)
from .metrics import BATCH_SIZE_BUCKETS, MetricsRegistry
from .protocol import (
    decode_deadline_ms,
    decode_request,
    decode_request_list,
    encode_failed,
    encode_result,
    new_request_id,
)

__all__ = ["ServiceConfig", "ClusterConfig", "SolveService",
           "ServiceHandle", "serve", "start_in_thread"]

logger = get_logger("service")

_LEGACY_KWARGS_HINT = (
    "configuring the service through keyword arguments is deprecated "
    "and will be removed in 2.0; build a repro.service.ServiceConfig "
    "(or use ServiceConfig.load for TOML/env/CLI layering) and pass "
    "it as `config` instead"
)


def _config_from_legacy(
    config: ServiceConfig | None, kwargs: dict
) -> ServiceConfig | None:
    """Resolve the deprecated flat-kwargs spelling into a config."""
    if not kwargs:
        return config
    if config is not None:
        raise ConfigurationError(
            "pass either a ServiceConfig or legacy keyword arguments, "
            "not both"
        )
    warnings.warn(_LEGACY_KWARGS_HINT, DeprecationWarning, stacklevel=3)
    return ServiceConfig.from_legacy_kwargs(kwargs)


class _Instruments:
    """Every metric the daemon exports, built on one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        gate: AdmissionGate,
        engine: BatchSolver,
    ) -> None:
        self.registry = registry
        self.requests_total = registry.counter(
            "repro_service_requests_total",
            "Requests handled, by endpoint and HTTP status.",
        )
        self.request_seconds = registry.histogram(
            "repro_service_request_seconds",
            "Wall-clock request latency by endpoint (admitted or not).",
        )
        self.admission_offered = registry.counter(
            "repro_service_admission_offered_total",
            "Requests offered to the admission gate, by class.",
        )
        self.admission_rejected = registry.counter(
            "repro_service_admission_rejected_total",
            "Requests cleared (503) by the admission gate, by class.",
        )
        self.blocking_ratio = registry.gauge(
            "repro_service_admission_blocking_ratio",
            "Measured blocking probability: rejected / offered.",
        )
        self.blocking_ratio.set(lambda: gate.snapshot().blocking_ratio)
        self.gate_gauge = registry.gauge(
            "repro_service_gate_tokens",
            "Admission gate tokens by state.",
        )
        self.gate_gauge.set(lambda: gate.capacity, state="capacity")
        self.gate_gauge.set(lambda: gate.in_use, state="in_use")
        self.gate_gauge.set(lambda: gate.peak_in_use, state="peak")
        self.gate_gauge.set(lambda: gate.limit, state="limit")
        self.fast_path_hits = registry.counter(
            "repro_service_fast_path_hits_total",
            "Requests served off the in-memory cache on the event loop "
            "(no coalesce, no batch, no thread hop).",
        )
        self.coalesce_hits = registry.counter(
            "repro_service_coalesce_hits_total",
            "Requests that joined an identical in-flight computation.",
        )
        self.coalesce_leaders = registry.counter(
            "repro_service_coalesce_leaders_total",
            "Requests that led a new in-flight computation.",
        )
        self.batch_flushes = registry.counter(
            "repro_service_batch_flushes_total",
            "Micro-batch flushes into the engine.",
        )
        self.batch_size = registry.histogram(
            "repro_service_batch_size",
            "Requests per micro-batch flush.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self.solve_failures = registry.counter(
            "repro_service_solve_failures_total",
            "Requests that terminally failed in the engine.",
        )
        self.inflight = registry.gauge(
            "repro_service_inflight_requests",
            "Requests currently inside the daemon (admitted, unfinished).",
        )
        self._inflight_count = 0
        self.inflight.set(lambda: self._inflight_count)
        self.deadline_exceeded = registry.counter(
            "repro_service_deadline_exceeded_total",
            "Requests whose deadline_ms budget ran out (504), by phase.",
        )
        self.degraded_responses = registry.counter(
            "repro_service_degraded_responses_total",
            "Responses served degraded under brownout, by stage.",
        )
        self.brownout_transitions = registry.counter(
            "repro_service_brownout_transitions_total",
            "Brownout ladder stage transitions, labeled from -> to.",
        )
        self.brownout_shed = registry.counter(
            "repro_service_brownout_shed_total",
            "Solves cleared by the brownout ladder before the gate.",
        )
        self.slow_clients = registry.counter(
            "repro_service_slow_clients_total",
            "Connections aborted for stalled reads or undrained writes.",
        )

        engine_stat = registry.gauge(
            "repro_engine_stat",
            "Cumulative engine cache counters (see repro.engine).",
        )
        for stat in ("lookups", "memory_hits", "disk_hits", "solves",
                     "grid_reads", "hit_rate"):
            engine_stat.set(
                (lambda s=stat: engine.stats.snapshot()[s]), stat=stat
            )
        last_batch = registry.gauge(
            "repro_engine_last_batch",
            "BatchMetrics of the engine's most recent batch.",
        )
        for fname in ("requests", "memory_hits", "disk_hits", "grid_groups",
                      "grid_points", "solved", "elapsed", "hit_rate",
                      "retries", "timeouts", "hedges", "failed",
                      "tasks_lost", "pool_respawns", "breaker_trips"):
            last_batch.set(
                (lambda f=fname: self._last_batch_field(engine, f)),
                field=fname,
            )
        breaker = registry.gauge(
            "repro_engine_breaker_state",
            "Disk-cache circuit breaker state (one-hot).",
        )
        for state in ("closed", "open", "half-open", "disabled"):
            breaker.set(
                (lambda s=state: 1 if self._breaker_state(engine) == s
                 else 0),
                state=state,
            )
        info = registry.gauge(
            "repro_service_info", "Build information (constant 1)."
        )
        info.set(1, version=__version__)

    def bind_runtime(
        self,
        controller: ServicePressureController,
        batcher: MicroBatcher,
    ) -> None:
        """Gauges that need the controller/batcher (built after us)."""
        stage = self.registry.gauge(
            "repro_service_brownout_stage",
            "Brownout ladder stage (0=normal .. 4=fast-503).",
        )
        stage.set(lambda: controller.stage)
        pressure = self.registry.gauge(
            "repro_service_brownout_pressure",
            "Live pressure components driving the brownout ladder.",
        )
        for comp in ("gate", "queue", "lag", "breaker", "fleet",
                     "overall"):
            pressure.set(
                (lambda c=comp: controller.pressure()[c]), component=comp
            )
        batcher_gauge = self.registry.gauge(
            "repro_service_batcher",
            "Micro-batcher internals (queue, lag, supervision counters).",
        )
        batcher_gauge.set(lambda: batcher.queue_depth, field="queue_depth")
        batcher_gauge.set(lambda: batcher.worker_lag, field="worker_lag")
        batcher_gauge.set(
            lambda: batcher.worker_respawns, field="worker_respawns"
        )
        batcher_gauge.set(
            lambda: batcher.expired_requests, field="expired_requests"
        )

    @staticmethod
    def _last_batch_field(engine: BatchSolver, fname: str) -> float:
        metrics = engine.last_metrics
        if metrics is None:
            return 0.0
        return float(getattr(metrics, fname))

    @staticmethod
    def _breaker_state(engine: BatchSolver) -> str:
        metrics = engine.last_metrics
        if metrics is not None:
            return metrics.breaker_state
        if engine.disk is not None and engine.disk.breaker is not None:
            return engine.disk.breaker.state
        return "disabled"


@dataclass
class _Reply:
    """What a route handler produced, ready for the wire."""

    status: int
    payload: dict
    headers: dict[str, str] = field(default_factory=dict)


class SolveService:
    """The daemon: routes requests through gate -> coalesce -> batch."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        engine: BatchSolver | None = None,
        **legacy: Any,
    ) -> None:
        config = _config_from_legacy(config, legacy)
        self.config = config or ServiceConfig()
        self.engine = engine if engine is not None else get_default_engine()
        self.gate = AdmissionGate(self.config.gate_capacity)
        self.flights = SingleFlight()
        self.registry = MetricsRegistry()
        self.instruments = _Instruments(self.registry, self.gate, self.engine)
        self.batcher = MicroBatcher(
            self._run_batch,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            observer=self._observe_flush,
        )
        self.brownout = ServicePressureController(
            self.config.brownout,
            gate=self.gate,
            batcher=self.batcher,
            engine=self.engine,
            on_transition=self._on_brownout_transition,
        )
        self.instruments.bind_runtime(self.brownout, self.batcher)
        self._server: asyncio.base_events.Server | None = None
        self._started_at = time.monotonic()
        self._ewma_hold = 0.0
        self._draining = False
        #: writer -> "currently serving a request" (head read, reply
        #: not yet flushed).  Idle keep-alive connections are False.
        self._conn_busy: dict[asyncio.StreamWriter, bool] = {}
        self._brownout_task: asyncio.Task | None = None
        #: body bytes -> (decoded request, deadline budget).  Identical
        #: bytes decode identically, so hot traffic skips the JSON
        #: parse + request canonicalization on repeat sightings.
        self._parse_memo: dict[bytes, tuple[SolveRequest, float | None]] = {}
        # Canonical key -> serialized result JSON.  Solves are pure, so
        # a request's encoded result fragment never changes; hot repeat
        # requests splice it into the envelope instead of re-encoding.
        self._result_memo: dict[str, bytes] = {}
        self._shard_header = (
            None if self.config.shard_index is None
            else str(self.config.shard_index)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        bind_kwargs: dict[str, Any] = {}
        if self.config.reuse_port:
            bind_kwargs["reuse_port"] = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            **bind_kwargs,
        )
        self._started_at = time.monotonic()
        if self.config.brownout.enabled:
            self._brownout_task = asyncio.get_running_loop().create_task(
                self.brownout.run(), name="repro-brownout"
            )
        logger.info(
            "service listening %s",
            kv(host=self.host, port=self.port,
               gate_capacity=self.gate.capacity,
               batch_window=self.config.batch_window),
        )

    async def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown, phase one: finish what we admitted.

        Stops accepting connections, flushes the pending micro-batch
        immediately, and waits (up to ``timeout``, default
        ``config.drain_timeout``) for every admitted request — leaders
        *and* coalesced followers — to resolve.  Returns True when the
        daemon drained clean, False on timeout (callers stop anyway;
        the engine's supervisor fails the remnants with structured
        envelopes rather than leaking them).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.batcher.flush_pending()
        self._close_idle_connections()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while (
            self.instruments._inflight_count > 0
            or self._busy_connections > 0
            or self.batcher.busy
        ):
            if time.monotonic() >= deadline:
                logger.warning(
                    "drain timed out %s",
                    kv(inflight=self.instruments._inflight_count,
                       connections=self._busy_connections,
                       batcher_busy=self.batcher.busy, budget=budget),
                )
                return False
            self.batcher.flush_pending()
            self._close_idle_connections()
            await asyncio.sleep(0.005)
        self._close_idle_connections()
        logger.info("drain complete %s", kv(budget=budget))
        return True

    @property
    def _busy_connections(self) -> int:
        return sum(1 for busy in self._conn_busy.values() if busy)

    def _close_idle_connections(self) -> None:
        """Cut loose keep-alive connections with no request in flight.

        Drain must not wait on a peer that is merely holding a
        persistent connection open; a busy connection finishes its
        reply first (the serving loop then closes it itself because
        ``_draining`` is set).
        """
        for conn_writer, busy in list(self._conn_busy.items()):
            if not busy:
                conn_writer.close()

    async def stop(self) -> None:
        if self._brownout_task is not None:
            self._brownout_task.cancel()
            try:
                await self._brownout_task
            except asyncio.CancelledError:
                pass
            self._brownout_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn_writer in list(self._conn_busy):
            conn_writer.close()
        # Give keep-alive serving loops a beat to observe the EOF and
        # unwind, so the event loop does not die with pending handlers.
        for _ in range(10):
            if not self._conn_busy:
                break
            await asyncio.sleep(0.01)
        await self.batcher.close()
        logger.info(
            "service stopped %s",
            kv(**{
                "offered": self.gate.offered,
                "rejected": self.gate.rejected,
                "coalesce_hits": self.flights.hits,
            }),
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One TCP connection: serve requests until either side closes.

        With ``config.keepalive`` (the default) the connection persists
        across exchanges HTTP/1.1-style; a peer sending ``Connection:
        close``, any framing error, a drain in progress, or
        ``keepalive=False`` ends it after the current reply.
        """
        self._conn_busy[writer] = False
        try:
            while True:
                keep = await self._serve_one(reader, writer)
                if not keep:
                    break
        finally:
            self._conn_busy.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read, route and answer one request; True to keep the
        connection for another exchange."""
        began = time.perf_counter()
        endpoint = "unknown"
        status = 500
        keep = False
        request_id = new_request_id()
        try:
            try:
                http = await read_request(
                    reader, timeout=self.config.read_timeout
                )
            except HttpError as exc:
                status = exc.status
                if exc.status == 408:
                    # Slow loris: the peer held the connection without
                    # delivering a request.  It never reached the gate,
                    # so it holds no tokens; just cut it loose.
                    self.instruments.slow_clients.inc(direction="read")
                await self._write_error(
                    writer, exc.status,
                    "slow_client" if exc.status == 408 else "bad_request",
                    str(exc), request_id,
                )
                return False
            if http is None:  # clean disconnect between requests
                status = 0
                return False
            # Busy from head-read to reply-flushed, so drain() cannot
            # declare victory while a response is in flight.
            self._conn_busy[writer] = True
            endpoint = f"{http.method} {http.path}"
            fleet = http.headers.get("x-fleet-pressure")
            if fleet is not None:
                # The cluster router reports how much load this worker
                # absorbs for dead shards; feed it to the brownout
                # ladder so a shrunken fleet sheds instead of timing
                # out (see ServicePressureController.fleet_pressure).
                try:
                    self.brownout.fleet_pressure = min(
                        1.0, max(0.0, float(fleet))
                    )
                except ValueError:
                    pass
            keep = (
                self.config.keepalive
                and not self._draining
                and http.headers.get("connection", "").lower() != "close"
            )
            reply = await self._route(http, request_id)
            status = reply.status
            if self._draining:
                keep = False
            body = json.dumps(reply.payload).encode("utf-8") \
                if isinstance(reply.payload, dict) \
                else reply.payload
            content_type = reply.headers.pop(
                "Content-Type", "application/json"
            )
            reply.headers.setdefault("X-Request-Id", request_id)
            if self._shard_header is not None:
                reply.headers.setdefault("X-Shard", self._shard_header)
            await write_response(
                writer, status, body,
                content_type=content_type, extra_headers=reply.headers,
                timeout=self.config.write_timeout, close=not keep,
            )
            return keep
        except SlowClientError as exc:
            # The peer stopped draining its reply; abort the transport
            # so the connection cannot pin the daemon (tokens were
            # released before the write).
            self.instruments.slow_clients.inc(direction="write")
            logger.info(
                "slow client aborted %s",
                kv(request_id=request_id, endpoint=endpoint,
                   detail=str(exc)),
            )
            status = 499
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            # The peer vanished: work is done (and any gate tokens are
            # already released); only the reply is lost.
            if logger.isEnabledFor(logging.INFO):
                logger.info(
                    "client disconnected %s",
                    kv(request_id=request_id, endpoint=endpoint,
                       detail=type(exc).__name__),
                )
            status = 499
            return False
        except Exception:  # noqa: BLE001 - last-resort 500
            logger.exception("unhandled service error")
            status = 500
            try:
                await self._write_error(
                    writer, 500, "internal_error",
                    "unhandled service error", request_id,
                )
            except OSError:
                pass
            return False
        finally:
            if writer in self._conn_busy:
                self._conn_busy[writer] = False
            if status != 0:  # ignore empty keep-alive probes
                elapsed = time.perf_counter() - began
                self.instruments.requests_total.inc(
                    endpoint=endpoint, status=str(status)
                )
                self.instruments.request_seconds.observe(
                    elapsed, endpoint=endpoint
                )
                if logger.isEnabledFor(logging.INFO):
                    logger.info(
                        "request handled %s",
                        kv(request_id=request_id, endpoint=endpoint,
                           status=status, elapsed=elapsed),
                    )

    async def _write_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        kind: str,
        message: str,
        request_id: str,
        extra: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = {
            "id": request_id,
            "error": {"kind": kind, "message": message, **(extra or {})},
        }
        base_headers = {"X-Request-Id": request_id}
        if self._shard_header is not None:
            base_headers["X-Shard"] = self._shard_header
        if headers:
            base_headers.update(headers)
        await write_response(
            writer, status, json.dumps(payload).encode("utf-8"),
            extra_headers=base_headers,
            timeout=self.config.write_timeout,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, http: HttpRequest, request_id: str) -> _Reply:
        if http.path == "/metrics":
            if http.method != "GET":
                return self._method_not_allowed(request_id, "GET")
            return _Reply(
                200, self.registry.render().encode("utf-8"),
                {"Content-Type": MetricsRegistry.CONTENT_TYPE},
            )
        if http.path == "/healthz":
            if http.method != "GET":
                return self._method_not_allowed(request_id, "GET")
            return _Reply(200, self._health(request_id))
        if http.path == "/solve":
            if http.method != "POST":
                return self._method_not_allowed(request_id, "POST")
            return await self._handle_solve(http, request_id)
        if http.path == "/batch":
            if http.method != "POST":
                return self._method_not_allowed(request_id, "POST")
            return await self._handle_batch(http, request_id)
        return _Reply(404, {
            "id": request_id,
            "error": {"kind": "not_found",
                      "message": f"no route for {http.path}"},
        })

    def _method_not_allowed(self, request_id: str, allowed: str) -> _Reply:
        return _Reply(
            405,
            {"id": request_id,
             "error": {"kind": "method_not_allowed",
                       "message": f"use {allowed}"}},
            {"Allow": allowed},
        )

    def _health(self, request_id: str) -> dict:
        gate = self.gate.snapshot()
        return {
            "id": request_id,
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "shard": self.config.shard_index,
            "uptime_s": time.monotonic() - self._started_at,
            "brownout": {
                "stage": self.brownout.stage,
                "stage_name": self.brownout.stage_name,
                "transitions": self.brownout.transitions,
                "pressure": self.brownout.pressure(),
            },
            "gate": {
                "capacity": gate.capacity,
                "limit": gate.limit,
                "in_use": gate.in_use,
                "peak_in_use": gate.peak_in_use,
                "offered": gate.offered,
                "rejected": gate.rejected,
                "blocking_ratio": gate.blocking_ratio,
            },
            "coalesce": {
                "hits": self.flights.hits,
                "leaders": self.flights.leaders,
                "in_flight": len(self.flights),
            },
            "engine": self.engine.stats.snapshot(),
        }

    # ------------------------------------------------------------------
    # Solve endpoints
    # ------------------------------------------------------------------

    def _parse_body(self, http: HttpRequest) -> Any:
        try:
            return json.loads(http.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"request body is not JSON: {exc}") \
                from exc

    async def _handle_solve(
        self, http: HttpRequest, request_id: str
    ) -> _Reply:
        memo = (
            self._parse_memo.get(http.body)
            if self.config.hot_cache_fast_path else None
        )
        if memo is not None:
            request, budget = memo
        else:
            try:
                payload = self._parse_body(http)
                request = decode_request(payload)
                budget = decode_deadline_ms(payload)
            except CrossbarError as exc:
                return self._bad_request(request_id, str(exc))
            if (
                self.config.hot_cache_fast_path
                and len(self._parse_memo) < 4096
            ):
                self._parse_memo[http.body] = (request, budget)
        if self._draining:
            return self._shutting_down(request_id)
        if self.brownout.shedding:
            return self._shed(request_id, "solve")
        if self.brownout.stale_only:
            return self._serve_stale(request_id, request)
        request, degraded = self._maybe_degrade(request)
        deadline_at = (
            time.monotonic() + budget if budget is not None else None
        )
        lease = self.gate.try_acquire("solve", self.config.point_weight)
        self._count_admission("solve", lease is not None)
        if lease is None:
            return self._rejected(request_id, "solve")
        began = time.perf_counter()
        self.instruments._inflight_count += 1
        try:
            result, coalesced = await self._execute(
                request, deadline_at=deadline_at
            )
            if self.config.min_hold > 0.0:
                await asyncio.sleep(self.config.min_hold)
        except BatcherClosedError:
            return self._shutting_down(request_id)
        except RequestExpiredError:
            return self._deadline_exceeded(request_id, budget, "batch")
        except asyncio.TimeoutError:
            return self._deadline_exceeded(request_id, budget, "wait")
        finally:
            self.instruments._inflight_count -= 1
            self.gate.release(lease)
            self._note_hold(time.perf_counter() - began)
        if getattr(result, "failed", False):
            if budget is not None and result.error_type == "TaskDeadlineError":
                return self._deadline_exceeded(request_id, budget, "engine")
            self.instruments.solve_failures.inc()
            return _Reply(500, {
                "id": request_id,
                "error": encode_failed(result) | {
                    "message": result.error_message,
                },
            })
        elapsed_ms = (time.perf_counter() - began) * 1e3
        if degraded:
            reply = {
                "id": request_id,
                "result": encode_result(result),
                "coalesced": coalesced,
                "from_cache": result.from_cache,
                "elapsed_ms": elapsed_ms,
            }
            self._stamp_degraded(reply)
            return _Reply(200, reply)
        # Hot path: splice the memoized result fragment into the
        # envelope instead of re-encoding the result dict per request
        # (same bytes json.dumps would emit, without walking the tree).
        fragment = self._result_memo.get(request.cache_key)
        if fragment is None:
            fragment = json.dumps(encode_result(result)).encode("utf-8")
            if len(self._result_memo) < 4096:
                self._result_memo[request.cache_key] = fragment
        tail = (
            f', "coalesced": {"true" if coalesced else "false"}'
            f', "from_cache": {"true" if result.from_cache else "false"}'
            f', "elapsed_ms": {elapsed_ms!r}}}'
        )
        return _Reply(200, (
            f'{{"id": "{request_id}", "result": '.encode("utf-8")
            + fragment + tail.encode("utf-8")
        ))

    async def _handle_batch(
        self, http: HttpRequest, request_id: str
    ) -> _Reply:
        try:
            payload = self._parse_body(http)
            requests = decode_request_list(payload)
            budget = decode_deadline_ms(payload)
        except CrossbarError as exc:
            return self._bad_request(request_id, str(exc))
        if self._draining:
            return self._shutting_down(request_id)
        if self.brownout.shedding:
            return self._shed(request_id, "batch")
        if self.brownout.stale_only:
            return self._serve_stale_batch(request_id, requests)
        degraded = False
        rewritten = []
        for request in requests:
            request, was_degraded = self._maybe_degrade(request)
            degraded = degraded or was_degraded
            rewritten.append(request)
        requests = rewritten
        deadline_at = (
            time.monotonic() + budget if budget is not None else None
        )
        weight = self.config.batch_member_weight * len(requests)
        lease = self.gate.try_acquire("batch", weight)
        self._count_admission("batch", lease is not None)
        if lease is None:
            return self._rejected(request_id, "batch")
        began = time.perf_counter()
        self.instruments._inflight_count += 1
        try:
            outcomes = await asyncio.gather(
                *(self._execute(r, deadline_at=deadline_at)
                  for r in requests)
            )
            if self.config.min_hold > 0.0:
                await asyncio.sleep(self.config.min_hold)
        except BatcherClosedError:
            return self._shutting_down(request_id)
        except RequestExpiredError:
            return self._deadline_exceeded(request_id, budget, "batch")
        except asyncio.TimeoutError:
            return self._deadline_exceeded(request_id, budget, "wait")
        finally:
            self.instruments._inflight_count -= 1
            self.gate.release(lease)
            self._note_hold(time.perf_counter() - began)
        items = []
        failures = coalesced_count = 0
        for result, coalesced in outcomes:
            coalesced_count += coalesced
            if getattr(result, "failed", False):
                failures += 1
                self.instruments.solve_failures.inc()
                items.append(encode_failed(result) | {"failed": True})
            else:
                items.append(encode_result(result))
        reply = {
            "id": request_id,
            "results": items,
            "failed": failures,
            "coalesced": coalesced_count,
            "admission_weight": lease.weight,
            "elapsed_ms": (time.perf_counter() - began) * 1e3,
        }
        if degraded:
            self._stamp_degraded(reply)
        return _Reply(200, reply)

    def _bad_request(self, request_id: str, message: str) -> _Reply:
        return _Reply(400, {
            "id": request_id,
            "error": {"kind": "bad_request", "message": message},
        })

    # ------------------------------------------------------------------
    # Brownout and deadline envelopes
    # ------------------------------------------------------------------

    def _maybe_degrade(self, request: SolveRequest) -> tuple[SolveRequest, bool]:
        """Stage >= 2: rewrite the solve onto the cheapest robust path.

        The robust facade's fallback chain is ordered cheapest-first
        (MVA leads), so ``SolveMethod.ROBUST`` *is* the degraded path —
        the daemon converts work instead of dropping it.  A request
        already asking for ROBUST is served as-is and not marked
        degraded (it got exactly what it asked for).
        """
        if not self.brownout.degrade_method:
            return request, False
        if request.method is SolveMethod.ROBUST:
            return request, False
        return replace(request, method=SolveMethod.ROBUST), True

    def _stamp_degraded(self, reply: dict) -> None:
        reply["degraded"] = True
        reply["degraded_stage"] = self.brownout.stage_name
        self.instruments.degraded_responses.inc(
            stage=self.brownout.stage_name
        )

    def _shed(self, request_id: str, admission_class: str) -> _Reply:
        """Stage 4: clear the request before it touches the gate."""
        self.instruments.brownout_shed.inc(
            **{"class": admission_class}
        )
        retry_after = self._retry_after()
        error = {
            "kind": "brownout_rejected",
            "message": (
                "service is shedding load (brownout stage "
                f"{self.brownout.stage_name}); retry after the hint"
            ),
            "brownout_stage": self.brownout.stage_name,
            "retry_after": retry_after,
        }
        if self.config.shard_index is not None:
            error["shard"] = self.config.shard_index
        return _Reply(503, {
            "id": request_id,
            "error": error,
        }, {"Retry-After": str(max(1, math.ceil(retry_after)))})

    def _serve_stale(self, request_id: str, request: SolveRequest) -> _Reply:
        """Stage 3: a cache hit (stamped degraded) or a fast 503."""
        hit = self.engine.cached_result(request)
        if hit is None:
            return self._shed(request_id, "solve")
        reply = {
            "id": request_id,
            "result": encode_result(hit),
            "coalesced": False,
            "from_cache": True,
            "elapsed_ms": 0.0,
        }
        self._stamp_degraded(reply)
        return _Reply(200, reply)

    def _serve_stale_batch(
        self, request_id: str, requests: list[SolveRequest]
    ) -> _Reply:
        """Stage 3 for ``/batch``: hits served, misses marked failed."""
        items = []
        failures = 0
        for request in requests:
            hit = self.engine.cached_result(request)
            if hit is None:
                failures += 1
                items.append({
                    "failed": True,
                    "kind": "degraded_unavailable",
                    "request": request.to_dict(),
                    "error_type": "BrownoutError",
                    "error_message": (
                        "stale-cache stage: not cached, not solving"
                    ),
                })
            else:
                items.append(encode_result(hit))
        reply = {
            "id": request_id,
            "results": items,
            "failed": failures,
            "coalesced": 0,
            "admission_weight": 0,
            "elapsed_ms": 0.0,
        }
        self._stamp_degraded(reply)
        return _Reply(200, reply)

    def _deadline_exceeded(
        self, request_id: str, budget: float | None, phase: str
    ) -> _Reply:
        """Structured 504: the client's budget ran out, work was shed."""
        self.instruments.deadline_exceeded.inc(phase=phase)
        return _Reply(504, {
            "id": request_id,
            "error": {
                "kind": "deadline_exceeded",
                "message": (
                    "the request's deadline_ms budget expired in the "
                    f"{phase} phase"
                ),
                "deadline_ms": (
                    budget * 1e3 if budget is not None else None
                ),
                "phase": phase,
            },
        })

    def _on_brownout_transition(
        self, old: int, new: int, score: float
    ) -> None:
        self.instruments.brownout_transitions.inc(
            **{"from": STAGE_NAMES[old], "to": STAGE_NAMES[new]}
        )

    def _shutting_down(self, request_id: str) -> _Reply:
        return _Reply(503, {
            "id": request_id,
            "error": {"kind": "shutting_down",
                      "message": "service is shutting down"},
        }, {"Retry-After": "1"})

    def _count_admission(self, admission_class: str, admitted: bool) -> None:
        self.instruments.admission_offered.inc(
            **{"class": admission_class}
        )
        if not admitted:
            self.instruments.admission_rejected.inc(
                **{"class": admission_class}
            )

    def _rejected(self, request_id: str, admission_class: str) -> _Reply:
        """Blocked-calls-cleared: structured 503, no queueing."""
        gate = self.gate.snapshot()
        retry_after = self._retry_after()
        if logger.isEnabledFor(logging.INFO):
            logger.info(
                "request cleared %s",
                kv(request_id=request_id, admission_class=admission_class,
                   in_use=gate.in_use, capacity=gate.capacity,
                   retry_after=retry_after),
            )
        error = {
            "kind": "admission_rejected",
            "message": (
                "admission gate is full; the request was cleared "
                "(not queued) -- retry after the hint"
            ),
            "admission_class": admission_class,
            "retry_after": retry_after,
            "gate_capacity": gate.capacity,
            "gate_in_use": gate.in_use,
            "offered": gate.offered,
            "rejected": gate.rejected,
            "blocking_ratio": gate.blocking_ratio,
        }
        if self.config.shard_index is not None:
            error["shard"] = self.config.shard_index
        return _Reply(503, {
            "id": request_id,
            "error": error,
        }, {"Retry-After": str(max(1, math.ceil(retry_after)))})

    def _note_hold(self, elapsed: float) -> None:
        self._ewma_hold = (
            elapsed if self._ewma_hold == 0.0
            else 0.8 * self._ewma_hold + 0.2 * elapsed
        )

    def _retry_after(self) -> float:
        return max(self.config.retry_after_floor, self._ewma_hold)

    # ------------------------------------------------------------------
    # Execution: coalesce -> micro-batch -> engine
    # ------------------------------------------------------------------

    async def _execute(
        self,
        request: SolveRequest,
        deadline_at: float | None = None,
    ) -> tuple[Any, bool]:
        """One request's result plus whether it coalesced.

        Identical in-flight requests share a single engine computation:
        the first becomes the leader (its future is resolved by the
        batcher), later ones await the same future — including across a
        batch-window boundary while the leader's flush is still
        computing.  A leader's terminal failure resolves the future
        with the engine's :class:`~repro.engine.FailedResult`, so
        followers receive the same envelope instead of hanging.

        ``deadline_at`` (absolute ``time.monotonic()``) carries the
        client's ``deadline_ms`` budget: the batcher drops the request
        if it expires before its flush, and the await itself is bounded
        (``asyncio.TimeoutError``) — the shield keeps a shared flight
        alive for its other waiters when this one gives up.
        """
        if self.config.hot_cache_fast_path:
            # Cache-hot requests never leave the event loop: a pure
            # in-memory lookup (no disk, no lock, no thread hop) serves
            # the same bytes the batcher would.  Admission was already
            # charged by the caller, so the loss-system contract holds.
            hit = self.engine.cached_result(request, memory_only=True)
            if hit is not None:
                self.instruments.fast_path_hits.inc()
                return hit, False
        key = request.cache_key
        future = self.flights.join(key)
        if future is not None:
            self.instruments.coalesce_hits.inc()
            return await self._await_flight(future, deadline_at), True
        loop = asyncio.get_running_loop()
        future = self.flights.lead(key, loop)
        self.instruments.coalesce_leaders.inc()
        self.batcher.submit(request, future, deadline_at)
        return await self._await_flight(future, deadline_at), False

    @staticmethod
    async def _await_flight(
        future: asyncio.Future, deadline_at: float | None
    ) -> Any:
        shielded = asyncio.shield(future)
        if deadline_at is None:
            return await shielded
        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            shielded.cancel()
            raise asyncio.TimeoutError
        return await asyncio.wait_for(shielded, remaining)

    def _run_batch(
        self,
        requests: list[SolveRequest],
        task_deadline: float | None = None,
    ) -> list[Any]:
        """The flush runner (worker thread): one engine batch.

        ``task_deadline`` is the remaining wall-clock budget the
        micro-batcher computed from its members' deadlines (None when
        any member is unbounded); the engine bounds each fresh solve
        attempt by it.
        """
        return self.engine.evaluate_many(
            requests, parallel=self.config.parallel, strict=False,
            task_deadline=task_deadline,
        )

    def _observe_flush(self, batch_size: int, elapsed: float) -> None:
        self.instruments.batch_flushes.inc()
        self.instruments.batch_size.observe(float(batch_size))


# ----------------------------------------------------------------------
# Hosting helpers
# ----------------------------------------------------------------------


async def _serve_async(
    config: ServiceConfig,
    engine: BatchSolver | None = None,
    on_started: Callable[[SolveService], None] | None = None,
) -> None:
    service = SolveService(config, engine=engine)
    await service.start()
    if on_started is not None:
        # Cluster workers report their bound (possibly ephemeral) port
        # to the supervisor through this hook.
        on_started(service)
    loop = asyncio.get_running_loop()
    stop_now = asyncio.Event()
    signals_seen = 0

    def _on_signal() -> None:
        # First signal: graceful drain (stop accepting, finish what was
        # admitted, resolve coalesced followers).  Second: force exit.
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen == 1:
            logger.warning("shutdown signal received; draining")

            async def _drain_then_stop() -> None:
                await service.drain()
                stop_now.set()

            loop.create_task(_drain_then_stop())
        else:
            logger.warning("second shutdown signal; forcing exit")
            stop_now.set()

    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _on_signal)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform

    try:
        forever = loop.create_task(service.serve_forever())
        stopper = loop.create_task(stop_now.wait())
        await asyncio.wait(
            {forever, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        if not stopper.done() and service._draining:
            # The listener closing is a *consequence* of the drain, not
            # the end of it: keep the loop alive until the drain (or a
            # second, forcing signal) sets stop_now, so in-flight
            # replies are written before asyncio.run cancels tasks.
            await stopper
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        for task in (forever, stopper):
            task.cancel()
        await asyncio.gather(forever, stopper, return_exceptions=True)
        for sig in installed:
            loop.remove_signal_handler(sig)
        await service.stop()


def serve(
    config: ServiceConfig | None = None,
    engine: BatchSolver | None = None,
    on_started: Callable[[SolveService], None] | None = None,
    **legacy: Any,
) -> None:
    """Run the daemon in the current thread until interrupted."""
    config = _config_from_legacy(config, legacy)
    asyncio.run(_serve_async(config or ServiceConfig(), engine, on_started))


class ServiceHandle:
    """A daemon running on its own thread/event loop (tests, benchmarks)."""

    def __init__(
        self,
        service: SolveService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def drain(self, timeout: float | None = None) -> bool:
        """Run the graceful drain on the service loop; True if clean."""
        if not self.thread.is_alive():
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(timeout), self.loop
        )
        budget = (
            timeout if timeout is not None
            else self.service.config.drain_timeout
        )
        return future.result(budget + 5.0)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop serving, drain flushes, join the thread."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: ServiceConfig | None = None,
    engine: BatchSolver | None = None,
    **legacy: Any,
) -> ServiceHandle:
    """Start a daemon on a fresh daemon thread; returns its handle.

    The default config binds an ephemeral port (``port=0``); read it
    back from ``handle.port``.
    """
    config = _config_from_legacy(config, legacy)
    config = config or ServiceConfig(port=0)
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = SolveService(config, engine=engine)
        try:
            loop.run_until_complete(service.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["service"], box["loop"] = service, loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(service.stop())
            loop.close()

    thread = threading.Thread(
        target=runner, daemon=True, name="repro-service"
    )
    thread.start()
    if not started.wait(15.0):  # pragma: no cover - startup hang guard
        raise RuntimeError("service did not start within 15s")
    if "error" in box:
        raise box["error"]
    return ServiceHandle(box["service"], box["loop"], thread)
