"""Sharded multi-worker serving: supervisor, router, federation.

The single daemon (:mod:`repro.service.server`) is bounded by one
event loop; this module multiplies it the way the paper's crossbar
multiplies throughput — parallel independent fabric paths:

* a :class:`ClusterSupervisor` forks N worker processes, each hosting
  the full admission/coalesce/micro-batch pipeline on its own port;
* requests are **sharded by canonical cache key**: a thin asyncio
  router on the public port proxies each ``/solve``/``/batch`` to the
  worker owning its key on a consistent-hash ring
  (:mod:`repro.service.sharding`), so single-flight coalescing and
  cache locality keep their contracts fleet-wide;
* workers share one on-disk cache tier (``cluster.cache_dir``); the
  ``.tmp-<pid>`` write protocol makes concurrent writers safe and each
  worker guards the directory with its *own* circuit breaker;
* lifecycle — ready handshake over a multiprocessing queue, periodic
  liveness sweeps, respawn-on-crash into the same shard slot (the ring
  keys off shard indices, so routing is stable across respawns), and a
  fleet-wide SIGTERM drain that lets every worker finish admitted work
  (PR 6 semantics) before exit;
* observability — ``GET /metrics`` on the router federates every
  worker's Prometheus page with a ``shard="i"`` label injected into
  each series; ``GET /healthz`` aggregates worker healths; ``GET
  /cluster`` publishes the shard map so smart clients can route
  themselves.

With ``shard_strategy="reuseport"`` there is no router: every worker
binds the public port with ``SO_REUSEPORT`` and the kernel spreads
connections (no key affinity, no federation endpoint — cheapest wire
path, weakest contracts).

Entry points: :func:`serve_cluster` (CLI), and
:func:`start_cluster_in_thread` -> :class:`ClusterHandle` for tests
and benchmarks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from .. import __version__
from ..engine import BatchSolver
from ..engine.batch import EngineConfig
from ..exceptions import ConfigurationError
from ..logging import get_logger, kv
from .config import ServiceConfig
from .httpio import HttpError, HttpRequest, read_request, write_response
from .protocol import decode_request, decode_request_list, new_request_id
from .server import serve
from .sharding import HashRing

__all__ = [
    "ClusterHandle",
    "ClusterSupervisor",
    "serve_cluster",
    "start_cluster_in_thread",
]

logger = get_logger("service.cluster")

#: Cap of the router's body-bytes -> shard memo (hot keys repeat).
_ROUTE_CACHE_MAX = 4096


# ----------------------------------------------------------------------
# Worker process entry point (module-level: picklable under "spawn")
# ----------------------------------------------------------------------


def _worker_main(
    config: ServiceConfig,
    shard: int,
    cache_dir: str | None,
    ready_queue: Any,
) -> None:
    """One worker: the classic daemon plus a ready handshake.

    ``config`` is already the per-shard view (``ServiceConfig.for_shard``):
    single-process, shard index stamped, ephemeral port in hash mode or
    the shared ``SO_REUSEPORT`` port in reuseport mode.
    """
    if cache_dir:
        # Both spellings so the engine's own from_env picks it up and
        # explicit construction below stays authoritative.
        os.environ["REPRO_ENGINE_CACHE_DIR"] = cache_dir
    engine_config = EngineConfig.from_env()
    if cache_dir:
        engine_config = dataclasses.replace(
            engine_config, disk_cache=cache_dir
        )
    engine = BatchSolver(engine_config)

    def on_started(service: Any) -> None:
        ready_queue.put(("ready", shard, service.port, os.getpid()))

    serve(config, engine=engine, on_started=on_started)


# ----------------------------------------------------------------------
# Supervisor internals
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    """Supervisor-side record of one shard slot."""

    shard: int
    process: Any
    port: int | None = None
    pid: int | None = None
    respawns: int = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _WorkerPool:
    """Keep-alive connections from the router to one worker."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    async def acquire(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if writer.is_closing():
            writer.close()
        else:
            self._idle.append((reader, writer))

    def close(self) -> None:
        for _, writer in self._idle:
            writer.close()
        self._idle.clear()


async def _read_reply(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP response off a worker connection."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConfigurationError(f"worker spoke garbage: {lines[0]!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _label_shard(text: str, shard: int, keep_comments: bool) -> str:
    """Inject ``shard="i"`` into every Prometheus sample line."""
    label = f'shard="{shard}"'
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if keep_comments:
                out.append(line)
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            out.append(f"{name}{{{label},{rest}")
        else:
            name, _, value = line.partition(" ")
            out.append(f"{name}{{{label}}} {value}")
    return "\n".join(out)


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


class ClusterSupervisor:
    """Owns the worker fleet and (in hash mode) the routing front door."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.cluster.workers < 1:
            raise ConfigurationError("a cluster needs at least one worker")
        self.config = config
        self.cluster = config.cluster
        self.ring = HashRing(
            self.cluster.workers, self.cluster.hash_replicas
        )
        self._ctx = multiprocessing.get_context(self._pick_start_method())
        self._ready: Any = self._ctx.Queue()
        self.workers: dict[int, _Worker] = {}
        self._pools: dict[int, _WorkerPool] = {}
        self._router: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._draining = False
        self._started_at = time.monotonic()
        self._route_cache: dict[bytes, int] = {}
        #: requests proxied per shard (balance checks in smoke tests).
        self.proxied: dict[int, int] = {
            shard: 0 for shard in range(self.cluster.workers)
        }

    def _pick_start_method(self) -> str:
        if self.cluster.start_method is not None:
            return self.cluster.start_method
        # fork is cheap and inherits the warmed interpreter, but is
        # only safe while this process is single-threaded (the test
        # harness runs the supervisor on a thread -> spawn).
        if (
            "fork" in multiprocessing.get_all_start_methods()
            and threading.active_count() == 1
        ):
            return "fork"
        return "spawn"

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._started_at = time.monotonic()
        for shard in range(self.cluster.workers):
            self._spawn(shard)
        await self._collect_ready(set(range(self.cluster.workers)))
        if self.cluster.shard_strategy == "hash":
            self._router = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="repro-cluster-health"
        )
        logger.info(
            "cluster up %s",
            kv(workers=self.cluster.workers,
               strategy=self.cluster.shard_strategy,
               host=self.host, port=self.port,
               cache_dir=self.cluster.cache_dir),
        )

    def _spawn(self, shard: int, respawns: int = 0) -> None:
        worker_config = self.config.for_shard(shard, port=0)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_config, shard, self.cluster.cache_dir,
                  self._ready),
            name=f"repro-worker-{shard}",
        )
        process.start()
        self.workers[shard] = _Worker(
            shard=shard, process=process, respawns=respawns
        )

    async def _collect_ready(self, pending: set[int]) -> None:
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.cluster.spawn_timeout
        while pending:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise RuntimeError(
                    f"workers {sorted(pending)} did not report ready "
                    f"within {self.cluster.spawn_timeout:.3g}s"
                )
            try:
                message = await loop.run_in_executor(
                    None, self._ready.get, True, min(budget, 0.5)
                )
            except queue_mod.Empty:
                continue
            shard = self._note_ready(message)
            pending.discard(shard)

    def _note_ready(self, message: tuple) -> int:
        kind, shard, port, pid = message
        worker = self.workers.get(shard)
        if worker is None:
            return shard
        worker.port = port
        worker.pid = pid
        old_pool = self._pools.get(shard)
        if old_pool is not None:
            old_pool.close()
        self._pools[shard] = _WorkerPool(
            self.config.host
            if self.cluster.shard_strategy == "reuseport"
            else self.cluster.worker_host,
            port,
        )
        logger.info(
            "worker ready %s", kv(shard=shard, port=port, pid=pid)
        )
        return shard

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cluster.health_interval)
            # Late ready messages (respawned workers) update the map.
            while True:
                try:
                    self._note_ready(self._ready.get_nowait())
                except queue_mod.Empty:
                    break
            if self._draining:
                continue
            for shard, worker in self.workers.items():
                if worker.alive:
                    continue
                if (
                    not self.cluster.respawn
                    or worker.respawns >= self.cluster.max_respawns
                ):
                    continue
                logger.warning(
                    "worker died; respawning %s",
                    kv(shard=shard, pid=worker.pid,
                       respawns=worker.respawns + 1),
                )
                pool = self._pools.pop(shard, None)
                if pool is not None:
                    pool.close()
                self._spawn(shard, respawns=worker.respawns + 1)

    async def drain(self, timeout: float | None = None) -> bool:
        """Fleet-wide graceful shutdown: every worker drains (PR 6
        semantics — admitted work finishes), then exits."""
        self._draining = True
        if self._router is not None:
            self._router.close()
            await self._router.wait_closed()
            self._router = None
        for worker in self.workers.values():
            if worker.alive:
                worker.process.terminate()  # SIGTERM -> worker drain
        budget = (
            self.config.drain_timeout if timeout is None else timeout
        )
        deadline = time.monotonic() + budget
        clean = True
        for worker in self.workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            await asyncio.get_running_loop().run_in_executor(
                None, worker.process.join, remaining
            )
            if worker.alive:
                clean = False
        if not clean:
            logger.warning("fleet drain timed out %s", kv(budget=budget))
        else:
            logger.info("fleet drained %s", kv(budget=budget))
        return clean

    async def stop(self) -> None:
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._router is not None:
            self._router.close()
            await self._router.wait_closed()
            self._router = None
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()
        for worker in self.workers.values():
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers.values():
            worker.process.join(5.0)
            if worker.alive:  # pragma: no cover - stuck worker guard
                worker.process.kill()
                worker.process.join(1.0)
        self._ready.close()
        logger.info("cluster stopped %s", kv(proxied=sum(
            self.proxied.values()
        )))

    async def serve_forever(self) -> None:
        if self._router is not None:
            await self._router.serve_forever()
        else:  # reuseport mode: nothing to accept here, just park
            await asyncio.Event().wait()

    # -- addressing -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The public port (resolves ``port=0`` through the router)."""
        if self._router is not None and self._router.sockets:
            return self._router.sockets[0].getsockname()[1]
        return self.config.port

    def shard_map(self) -> dict:
        return {
            "strategy": self.cluster.shard_strategy,
            "workers": self.cluster.workers,
            "hash_replicas": self.cluster.hash_replicas,
            "draining": self._draining,
            "shards": [
                {
                    "shard": worker.shard,
                    "host": (
                        self.config.host
                        if self.cluster.shard_strategy == "reuseport"
                        else self.cluster.worker_host
                    ),
                    "port": worker.port,
                    "pid": worker.pid,
                    "alive": worker.alive,
                    "respawns": worker.respawns,
                    "proxied": self.proxied.get(worker.shard, 0),
                }
                for worker in self.workers.values()
            ],
        }

    # -- routing --------------------------------------------------------

    def _shard_for_body(self, path: str, body: bytes) -> int:
        """The shard owning a request body's canonical key.

        A ``/batch`` routes by its first member's key (documented in
        docs/service.md) — the single-flight contract only needs
        per-key affinity for ``/solve``-shaped work.  Unparseable
        bodies route to shard 0, whose worker produces the canonical
        400 envelope.
        """
        memo = self._route_cache.get(body)
        if memo is not None:
            return memo
        try:
            payload = json.loads(body.decode("utf-8"))
            if path == "/batch":
                key = decode_request_list(payload)[0].cache_key
            else:
                key = decode_request(payload).cache_key
            shard = self.ring.shard_for(key)
        except Exception:  # noqa: BLE001 - worker owns error reporting
            shard = 0
        if len(self._route_cache) < _ROUTE_CACHE_MAX:
            self._route_cache[body] = shard
        return shard

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                if not await self._serve_one(reader, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_id = new_request_id()
        try:
            http = await read_request(
                reader, timeout=self.config.read_timeout
            )
        except HttpError as exc:
            await self._write_json(
                writer, exc.status,
                {"id": request_id,
                 "error": {"kind": "bad_request", "message": str(exc)}},
                close=True,
            )
            return False
        if http is None:
            return False
        keep = (
            self.config.keepalive
            and not self._draining
            and http.headers.get("connection", "").lower() != "close"
        )
        if http.path in ("/solve", "/batch"):
            keep = await self._proxy(http, writer, keep, request_id)
        elif http.path == "/cluster":
            await self._write_json(
                writer, 200,
                {"id": request_id, **self.shard_map()}, close=not keep,
            )
        elif http.path == "/healthz":
            await self._write_json(
                writer, 200, await self._aggregate_health(request_id),
                close=not keep,
            )
        elif http.path == "/metrics":
            body = (await self._federate_metrics()).encode("utf-8")
            await write_response(
                writer, 200, body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                extra_headers={"X-Request-Id": request_id},
                timeout=self.config.write_timeout, close=not keep,
            )
        else:
            await self._write_json(
                writer, 404,
                {"id": request_id,
                 "error": {"kind": "not_found",
                           "message": f"no route for {http.path}"}},
                close=not keep,
            )
        return keep

    async def _proxy(
        self,
        http: HttpRequest,
        writer: asyncio.StreamWriter,
        keep: bool,
        request_id: str,
    ) -> bool:
        shard = self._shard_for_body(http.path, http.body)
        try:
            status, headers, body = await self._roundtrip(shard, http)
        except (ConnectionError, OSError, asyncio.IncompleteReadError,
                ConfigurationError):
            await self._write_json(
                writer, 503,
                {"id": request_id,
                 "error": {
                     "kind": "shard_unavailable",
                     "message": (
                         f"worker for shard {shard} is unavailable "
                         "(crashed or respawning); retry"
                     ),
                     "shard": shard,
                     "retry_after": self.cluster.health_interval * 2,
                 }},
                close=not keep,
                extra={"Retry-After": "1"},
            )
            return keep
        self.proxied[shard] = self.proxied.get(shard, 0) + 1
        passthrough = {
            name: headers[key]
            for key, name in (
                ("x-request-id", "X-Request-Id"),
                ("x-shard", "X-Shard"),
                ("retry-after", "Retry-After"),
                ("allow", "Allow"),
            )
            if (key in headers)
        }
        await write_response(
            writer, status, body,
            content_type=headers.get("content-type", "application/json"),
            extra_headers=passthrough,
            timeout=self.config.write_timeout, close=not keep,
        )
        return keep

    async def _roundtrip(
        self, shard: int, http: HttpRequest
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward one request to a worker over a pooled connection."""
        last_error: Exception | None = None
        for attempt in (0, 1):
            pool = await self._pool_for(shard)
            conn_reader, conn_writer = await pool.acquire()
            try:
                head = (
                    f"{http.method} {http.path} HTTP/1.1\r\n"
                    f"Host: shard-{shard}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(http.body)}\r\n"
                    "Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
                conn_writer.write(head + http.body)
                await conn_writer.drain()
                status, headers, body = await _read_reply(conn_reader)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                conn_writer.close()
                last_error = exc
                if attempt == 0:
                    # The worker may have just died; give the health
                    # loop one beat to respawn it, then retry once.
                    await asyncio.sleep(self.cluster.health_interval)
                    continue
                raise
            if headers.get("connection", "").lower() == "close":
                conn_writer.close()
            else:
                pool.release(conn_reader, conn_writer)
            return status, headers, body
        raise last_error  # pragma: no cover - loop always raises/returns

    async def _pool_for(self, shard: int) -> _WorkerPool:
        deadline = time.monotonic() + self.cluster.spawn_timeout
        while True:
            pool = self._pools.get(shard)
            worker = self.workers.get(shard)
            if (
                pool is not None and worker is not None and worker.alive
                and worker.port == pool.port
            ):
                return pool
            if pool is not None:
                return pool  # stale but usable: roundtrip retries cover
            if time.monotonic() >= deadline:
                raise ConnectionError(f"no pool for shard {shard}")
            await asyncio.sleep(self.cluster.health_interval / 2)

    # -- fan-in endpoints ----------------------------------------------

    async def _worker_get(
        self, shard: int, path: str
    ) -> tuple[int, dict[str, str], bytes]:
        return await self._roundtrip(
            shard, HttpRequest(method="GET", path=path, query="")
        )

    async def _aggregate_health(self, request_id: str) -> dict:
        shards = []
        degraded = False
        for shard, worker in self.workers.items():
            entry: dict[str, Any] = {
                "shard": shard,
                "alive": worker.alive,
                "respawns": worker.respawns,
            }
            try:
                status, _, body = await self._worker_get(shard, "/healthz")
                entry["health"] = json.loads(body.decode("utf-8"))
                entry["status"] = (
                    entry["health"].get("status", "unknown")
                    if status == 200 else "unreachable"
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    ValueError, ConfigurationError):
                entry["status"] = "unreachable"
            if entry["status"] not in ("ok", "draining"):
                degraded = True
            shards.append(entry)
        return {
            "id": request_id,
            "status": (
                "draining" if self._draining
                else ("degraded" if degraded else "ok")
            ),
            "version": __version__,
            "uptime_s": time.monotonic() - self._started_at,
            "strategy": self.cluster.shard_strategy,
            "workers": shards,
        }

    async def _federate_metrics(self) -> str:
        parts = []
        for shard in sorted(self.workers):
            try:
                status, _, body = await self._worker_get(shard, "/metrics")
                if status != 200:
                    raise ConnectionError(f"metrics status {status}")
                parts.append(_label_shard(
                    body.decode("utf-8"), shard,
                    keep_comments=(shard == min(self.workers)),
                ))
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    ConfigurationError):
                parts.append(f"# shard {shard} unavailable")
        parts.append(
            "# TYPE repro_cluster_proxied_total counter\n" + "\n".join(
                f'repro_cluster_proxied_total{{shard="{shard}"}} {count}'
                for shard, count in sorted(self.proxied.items())
            )
        )
        return "\n".join(parts) + "\n"

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool,
        extra: dict[str, str] | None = None,
    ) -> None:
        await write_response(
            writer, status, json.dumps(payload).encode("utf-8"),
            extra_headers=extra,
            timeout=self.config.write_timeout, close=close,
        )


# ----------------------------------------------------------------------
# Hosting helpers
# ----------------------------------------------------------------------


async def _serve_cluster_async(
    config: ServiceConfig,
    on_started: Any | None = None,
) -> None:
    supervisor = ClusterSupervisor(config)
    await supervisor.start()
    if on_started is not None:
        on_started(supervisor)
    loop = asyncio.get_running_loop()
    stop_now = asyncio.Event()
    signals_seen = 0

    def _on_signal() -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen == 1:
            logger.warning("shutdown signal received; draining fleet")

            async def _drain_then_stop() -> None:
                await supervisor.drain()
                stop_now.set()

            loop.create_task(_drain_then_stop())
        else:
            logger.warning("second shutdown signal; forcing exit")
            stop_now.set()

    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _on_signal)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

    forever = loop.create_task(supervisor.serve_forever())
    stopper = loop.create_task(stop_now.wait())
    try:
        await asyncio.wait(
            {forever, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        for task in (forever, stopper):
            task.cancel()
        await asyncio.gather(forever, stopper, return_exceptions=True)
        for sig in installed:
            loop.remove_signal_handler(sig)
        await supervisor.stop()


def serve_cluster(config: ServiceConfig) -> None:
    """Run a worker fleet until interrupted (``workers=1`` falls back
    to the classic single-process daemon)."""
    if config.cluster.workers <= 1:
        serve(config)
        return
    asyncio.run(_serve_cluster_async(config))


class ClusterHandle:
    """A cluster running on its own thread/loop (tests, benchmarks)."""

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.supervisor = supervisor
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def drain(self, timeout: float | None = None) -> bool:
        if not self.thread.is_alive():
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.supervisor.drain(timeout), self.loop
        )
        budget = (
            timeout if timeout is not None
            else self.supervisor.config.drain_timeout
        )
        return future.result(budget + 10.0)

    def stop(self, timeout: float = 30.0) -> None:
        if self.thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.supervisor.stop(), self.loop
            )
            try:
                future.result(timeout)
            finally:
                self.loop.call_soon_threadsafe(self.loop.stop)
                self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("cluster thread did not stop in time")

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster_in_thread(config: ServiceConfig) -> ClusterHandle:
    """Start a cluster on a fresh thread; returns its handle.

    The default hash strategy supports ``port=0`` (read the router's
    bound port back from ``handle.port``).  The supervisor thread is
    multi-threaded territory, so workers start via ``spawn`` unless
    the config forces a method.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        supervisor = ClusterSupervisor(config)
        try:
            loop.run_until_complete(supervisor.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["supervisor"], box["loop"] = supervisor, loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(supervisor.stop())
            loop.close()

    thread = threading.Thread(
        target=runner, daemon=True, name="repro-cluster"
    )
    thread.start()
    budget = config.cluster.spawn_timeout + 15.0
    if not started.wait(budget):  # pragma: no cover - startup hang guard
        raise RuntimeError(f"cluster did not start within {budget:.0f}s")
    if "error" in box:
        raise box["error"]
    return ClusterHandle(box["supervisor"], box["loop"], thread)
