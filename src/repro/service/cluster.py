"""Sharded multi-worker serving: supervisor, router, federation.

The single daemon (:mod:`repro.service.server`) is bounded by one
event loop; this module multiplies it the way the paper's crossbar
multiplies throughput — parallel independent fabric paths:

* a :class:`ClusterSupervisor` forks N worker processes, each hosting
  the full admission/coalesce/micro-batch pipeline on its own port;
* requests are **sharded by canonical cache key**: a thin asyncio
  router on the public port proxies each ``/solve``/``/batch`` to the
  worker owning its key on a consistent-hash ring
  (:mod:`repro.service.sharding`), so single-flight coalescing and
  cache locality keep their contracts fleet-wide;
* workers share one on-disk cache tier (``cluster.cache_dir``); the
  ``.tmp-<pid>`` write protocol makes concurrent writers safe and each
  worker guards the directory with its *own* circuit breaker;
* lifecycle — ready handshake over a multiprocessing queue, periodic
  liveness sweeps, respawn-on-crash into the same shard slot (the ring
  keys off shard indices, so routing is stable across respawns), and a
  fleet-wide SIGTERM drain that lets every worker finish admitted work
  (PR 6 semantics) before exit;
* self-healing — while a shard's worker is down its keys **fail over**
  to the next live shard on the ring (replies carry
  ``X-Shard-Failover`` so the cache-locality cost is observable, and
  the slot takes its keyspace back the moment it is live again);
  respawns back off exponentially with deterministic jitter, and a
  per-slot crash-loop circuit breaker (:mod:`repro.engine.breaker`
  semantics) pauses slots that flap — die within ``flap_window`` of
  becoming ready — until a cooldown probe; ``max_respawns`` exhaustion
  is a first-class **dead shard** state surfaced on ``/cluster``,
  ``/healthz`` (non-200) and the ``repro_cluster_shard_dead`` gauge,
  and fed to every worker's brownout controller via the
  ``X-Fleet-Pressure`` header so a shrunken fleet sheds load instead
  of timing out;
* observability — ``GET /metrics`` on the router federates every
  worker's Prometheus page with a ``shard="i"`` label injected into
  each series; ``GET /healthz`` aggregates worker healths; ``GET
  /cluster`` publishes the shard map so smart clients can route
  themselves.

With ``shard_strategy="reuseport"`` there is no router: every worker
binds the public port with ``SO_REUSEPORT`` and the kernel spreads
connections (no key affinity, no federation endpoint — cheapest wire
path, weakest contracts).

Entry points: :func:`serve_cluster` (CLI), and
:func:`start_cluster_in_thread` -> :class:`ClusterHandle` for tests
and benchmarks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from .. import __version__
from ..engine import BatchSolver
from ..engine.batch import EngineConfig
from ..engine.breaker import CircuitBreaker
from ..exceptions import ConfigurationError
from ..logging import get_logger, kv
from .config import ServiceConfig
from .httpio import HttpError, HttpRequest, read_request, write_response
from .protocol import decode_request, decode_request_list, new_request_id
from .server import serve
from .sharding import HashRing, ring_point

__all__ = [
    "ClusterHandle",
    "ClusterSupervisor",
    "serve_cluster",
    "start_cluster_in_thread",
]

logger = get_logger("service.cluster")

#: Cap of the router's body-bytes -> shard memo (hot keys repeat).
_ROUTE_CACHE_MAX = 4096


# ----------------------------------------------------------------------
# Worker process entry point (module-level: picklable under "spawn")
# ----------------------------------------------------------------------


def _worker_main(
    config: ServiceConfig,
    shard: int,
    cache_dir: str | None,
    ready_queue: Any,
) -> None:
    """One worker: the classic daemon plus a ready handshake.

    ``config`` is already the per-shard view (``ServiceConfig.for_shard``):
    single-process, shard index stamped, ephemeral port in hash mode or
    the shared ``SO_REUSEPORT`` port in reuseport mode.
    """
    if cache_dir:
        # Both spellings so the engine's own from_env picks it up and
        # explicit construction below stays authoritative.
        os.environ["REPRO_ENGINE_CACHE_DIR"] = cache_dir
    engine_config = EngineConfig.from_env()
    if cache_dir:
        engine_config = dataclasses.replace(
            engine_config, disk_cache=cache_dir
        )
    engine = BatchSolver(engine_config)

    def on_started(service: Any) -> None:
        ready_queue.put(("ready", shard, service.port, os.getpid()))

    serve(config, engine=engine, on_started=on_started)


# ----------------------------------------------------------------------
# Supervisor internals
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    """Supervisor-side record of one shard slot."""

    shard: int
    process: Any
    port: int | None = None
    pid: int | None = None
    respawns: int = 0
    #: Terminal: respawn disabled or ``max_respawns`` exhausted.
    dead: bool = False
    #: ``time.monotonic()`` of the ready handshake (flap detection).
    ready_at: float | None = None
    #: First health sweep that saw the process down (None while up).
    died_at: float | None = None
    #: Earliest ``time.monotonic()`` the next respawn may happen.
    next_spawn_at: float = 0.0
    #: Chaos hook: respawns additionally held until this instant.
    hold_until: float = 0.0
    #: The slot survived ``flap_window`` after ready (breaker credited).
    settled: bool = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _WorkerPool:
    """Keep-alive connections from the router to one worker.

    An idle socket only knows it is stale (its worker died and a new
    process owns the port — or nothing does) when a write fails, so
    the supervisor **flushes** the pool whenever a worker death is
    detected or a pooled roundtrip errors: the next acquire dials a
    fresh connection instead of replaying the crash against another
    corpse from the old process.  ``close()`` additionally retires the
    pool for good — connections released after that (in-flight during
    a respawn swap) are closed, not cached into a dead pool.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._closed = False
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    async def acquire(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed or writer.is_closing():
            writer.close()
        else:
            self._idle.append((reader, writer))

    def flush(self) -> None:
        """Drop every idle socket; the pool itself stays usable."""
        for _, writer in self._idle:
            writer.close()
        self._idle.clear()

    def close(self) -> None:
        self._closed = True
        self.flush()


async def _read_reply(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP response off a worker connection."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConfigurationError(f"worker spoke garbage: {lines[0]!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _label_shard(text: str, shard: int, keep_comments: bool) -> str:
    """Inject ``shard="i"`` into every Prometheus sample line."""
    label = f'shard="{shard}"'
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if keep_comments:
                out.append(line)
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            out.append(f"{name}{{{label},{rest}")
        else:
            name, _, value = line.partition(" ")
            out.append(f"{name}{{{label}}} {value}")
    return "\n".join(out)


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


class ClusterSupervisor:
    """Owns the worker fleet and (in hash mode) the routing front door."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.cluster.workers < 1:
            raise ConfigurationError("a cluster needs at least one worker")
        self.config = config
        self.cluster = config.cluster
        self.ring = HashRing(
            self.cluster.workers, self.cluster.hash_replicas
        )
        self._ctx = multiprocessing.get_context(self._pick_start_method())
        self._ready: Any = self._ctx.Queue()
        self.workers: dict[int, _Worker] = {}
        self._pools: dict[int, _WorkerPool] = {}
        self._router: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._draining = False
        self._started_at = time.monotonic()
        self._route_cache: dict[bytes, tuple[int, ...]] = {}
        #: requests proxied per shard (balance checks in smoke tests).
        self.proxied: dict[int, int] = {
            shard: 0 for shard in range(self.cluster.workers)
        }
        #: requests re-routed away from each (down) owner shard.
        self.failovers: dict[int, int] = {
            shard: 0 for shard in range(self.cluster.workers)
        }
        #: Per-slot crash-loop breakers.  These outlive the _Worker
        #: records (a respawn replaces the record) so consecutive
        #: flaps accumulate across process generations.
        self._flap_breakers: dict[int, CircuitBreaker] = {
            shard: CircuitBreaker(
                failure_threshold=self.cluster.flap_threshold,
                cooldown=self.cluster.flap_cooldown,
                name=f"shard-{shard}-flap",
            )
            for shard in range(self.cluster.workers)
        }

    def _pick_start_method(self) -> str:
        if self.cluster.start_method is not None:
            return self.cluster.start_method
        # fork is cheap and inherits the warmed interpreter, but is
        # only safe while this process is single-threaded (the test
        # harness runs the supervisor on a thread -> spawn).
        if (
            "fork" in multiprocessing.get_all_start_methods()
            and threading.active_count() == 1
        ):
            return "fork"
        return "spawn"

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._started_at = time.monotonic()
        for shard in range(self.cluster.workers):
            self._spawn(shard)
        await self._collect_ready(set(range(self.cluster.workers)))
        if self.cluster.shard_strategy == "hash":
            self._router = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="repro-cluster-health"
        )
        logger.info(
            "cluster up %s",
            kv(workers=self.cluster.workers,
               strategy=self.cluster.shard_strategy,
               host=self.host, port=self.port,
               cache_dir=self.cluster.cache_dir),
        )

    def _spawn(self, shard: int, respawns: int = 0) -> None:
        worker_config = self.config.for_shard(shard, port=0)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_config, shard, self.cluster.cache_dir,
                  self._ready),
            name=f"repro-worker-{shard}",
        )
        process.start()
        self.workers[shard] = _Worker(
            shard=shard, process=process, respawns=respawns
        )

    async def _collect_ready(self, pending: set[int]) -> None:
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.cluster.spawn_timeout
        while pending:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise RuntimeError(
                    f"workers {sorted(pending)} did not report ready "
                    f"within {self.cluster.spawn_timeout:.3g}s"
                )
            try:
                message = await loop.run_in_executor(
                    None, self._ready.get, True, min(budget, 0.5)
                )
            except queue_mod.Empty:
                continue
            shard = self._note_ready(message)
            pending.discard(shard)

    def _note_ready(self, message: tuple) -> int:
        kind, shard, port, pid = message
        worker = self.workers.get(shard)
        if worker is None:
            return shard
        worker.port = port
        worker.pid = pid
        worker.ready_at = time.monotonic()
        worker.settled = False
        old_pool = self._pools.get(shard)
        if old_pool is not None:
            old_pool.close()
        self._pools[shard] = _WorkerPool(
            self.config.host
            if self.cluster.shard_strategy == "reuseport"
            else self.cluster.worker_host,
            port,
        )
        logger.info(
            "worker ready %s", kv(shard=shard, port=port, pid=pid)
        )
        return shard

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cluster.health_interval)
            # Late ready messages (respawned workers) update the map.
            while True:
                try:
                    self._note_ready(self._ready.get_nowait())
                except queue_mod.Empty:
                    break
            if self._draining:
                continue
            now = time.monotonic()
            for shard, worker in self.workers.items():
                if worker.dead:
                    continue
                breaker = self._flap_breakers[shard]
                if worker.alive:
                    # A slot that held flap_window after ready pays
                    # the breaker back (closes a half-open probe).
                    if (
                        not worker.settled
                        and worker.ready_at is not None
                        and now - worker.ready_at
                        >= self.cluster.flap_window
                    ):
                        worker.settled = True
                        breaker.record_success()
                    continue
                if worker.died_at is None:
                    self._note_death(shard, worker, now)
                    continue
                if (
                    not self.cluster.respawn
                    or worker.respawns >= self.cluster.max_respawns
                ):
                    self._declare_dead(shard, worker)
                    continue
                if now < max(worker.next_spawn_at, worker.hold_until):
                    continue  # exponential backoff / chaos hold
                if not breaker.allow():
                    continue  # crash-looping: wait for a cooldown probe
                logger.warning(
                    "respawning worker %s",
                    kv(shard=shard, respawns=worker.respawns + 1,
                       flap_state=breaker.state),
                )
                self._spawn(shard, respawns=worker.respawns + 1)

    def _note_death(
        self, shard: int, worker: _Worker, now: float
    ) -> None:
        """First sweep after a worker died: flush its pool, classify
        the death against the slot's flap breaker, arm the backoff."""
        worker.died_at = now
        pool = self._pools.get(shard)
        if pool is not None:
            pool.flush()
        uptime = (
            now - worker.ready_at if worker.ready_at is not None else 0.0
        )
        breaker = self._flap_breakers[shard]
        if worker.ready_at is None or uptime < self.cluster.flap_window:
            breaker.record_failure(
                f"shard {shard} died {uptime:.2f}s after ready"
            )
        elif not worker.settled:
            breaker.record_success()
        delay = self._respawn_delay(shard, worker.respawns)
        worker.next_spawn_at = now + delay
        logger.warning(
            "worker died %s",
            kv(shard=shard, pid=worker.pid, uptime=round(uptime, 3),
               backoff=round(delay, 3), flap_state=breaker.state),
        )

    def _respawn_delay(self, shard: int, respawns: int) -> float:
        """Exponential backoff with deterministic jitter: the jitter
        factor in [1, 1.25) derives from the (shard, generation) pair
        the same way ring positions do, so two slots felled by one
        fault never thundering-herd their respawns in lockstep — and a
        rerun of a seeded chaos plan sees identical timing."""
        delay = min(
            self.cluster.respawn_backoff_cap,
            self.cluster.respawn_backoff_base * (2 ** respawns),
        )
        jitter = ring_point(f"respawn:{shard}:{respawns}") % 1000 / 4000
        return delay * (1.0 + jitter)

    def _declare_dead(self, shard: int, worker: _Worker) -> None:
        if worker.dead:
            return
        worker.dead = True
        pool = self._pools.pop(shard, None)
        if pool is not None:
            pool.close()
        logger.error(
            "shard dead (respawns exhausted) %s",
            kv(shard=shard, respawns=worker.respawns,
               max_respawns=self.cluster.max_respawns,
               failover=self.cluster.failover),
        )

    @property
    def dead_shards(self) -> list[int]:
        return sorted(
            shard for shard, worker in self.workers.items() if worker.dead
        )

    def _fleet_pressure(self) -> float:
        """Overload factor the survivors absorb: with ``d`` of ``W``
        shards dead, failover multiplies each survivor's load by
        ``W/(W-d)`` — pressure is the excess ``d/(W-d)``, clamped to 1
        (all-dead degenerates to full pressure)."""
        dead = len(self.dead_shards)
        if dead == 0:
            return 0.0
        live = self.cluster.workers - dead
        if live <= 0:
            return 1.0
        return min(1.0, dead / live)

    async def drain(self, timeout: float | None = None) -> bool:
        """Fleet-wide graceful shutdown: every worker drains (PR 6
        semantics — admitted work finishes), then exits."""
        self._draining = True
        if self._router is not None:
            self._router.close()
            await self._router.wait_closed()
            self._router = None
        for worker in self.workers.values():
            if worker.alive:
                worker.process.terminate()  # SIGTERM -> worker drain
        budget = (
            self.config.drain_timeout if timeout is None else timeout
        )
        deadline = time.monotonic() + budget
        clean = True
        for worker in self.workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            await asyncio.get_running_loop().run_in_executor(
                None, worker.process.join, remaining
            )
            if worker.alive:
                clean = False
        if not clean:
            logger.warning("fleet drain timed out %s", kv(budget=budget))
        else:
            logger.info("fleet drained %s", kv(budget=budget))
        return clean

    async def stop(self) -> None:
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._router is not None:
            self._router.close()
            await self._router.wait_closed()
            self._router = None
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()
        for worker in self.workers.values():
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers.values():
            worker.process.join(5.0)
            if worker.alive:  # pragma: no cover - stuck worker guard
                worker.process.kill()
                worker.process.join(1.0)
        self._ready.close()
        logger.info("cluster stopped %s", kv(proxied=sum(
            self.proxied.values()
        )))

    async def serve_forever(self) -> None:
        if self._router is not None:
            await self._router.serve_forever()
        else:  # reuseport mode: nothing to accept here, just park
            await asyncio.Event().wait()

    # -- addressing -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The public port (resolves ``port=0`` through the router)."""
        if self._router is not None and self._router.sockets:
            return self._router.sockets[0].getsockname()[1]
        return self.config.port

    def _slot_state(self, worker: _Worker) -> str:
        if worker.dead:
            return "dead"
        if worker.alive:
            return "live" if worker.port is not None else "spawning"
        if self._flap_breakers[worker.shard].state == "open":
            return "flapping"
        return "backoff"

    def shard_map(self) -> dict:
        return {
            "strategy": self.cluster.shard_strategy,
            "workers": self.cluster.workers,
            "hash_replicas": self.cluster.hash_replicas,
            "draining": self._draining,
            "failover": self.cluster.failover,
            "dead_shards": self.dead_shards,
            "shards": [
                {
                    "shard": worker.shard,
                    "host": (
                        self.config.host
                        if self.cluster.shard_strategy == "reuseport"
                        else self.cluster.worker_host
                    ),
                    "port": worker.port,
                    "pid": worker.pid,
                    "alive": worker.alive,
                    "dead": worker.dead,
                    "state": self._slot_state(worker),
                    "respawns": worker.respawns,
                    "proxied": self.proxied.get(worker.shard, 0),
                    "failovers": self.failovers.get(worker.shard, 0),
                    "flap_breaker": {
                        "state": self._flap_breakers[worker.shard].state,
                        "trips": self._flap_breakers[worker.shard].trips,
                    },
                }
                for worker in self.workers.values()
            ],
        }

    # -- routing --------------------------------------------------------

    def _shard_for_body(self, path: str, body: bytes) -> tuple[int, ...]:
        """The ring preference of a request body's canonical key —
        owner first, then the failover order.

        A ``/batch`` routes by its first member's key (documented in
        docs/service.md) — the single-flight contract only needs
        per-key affinity for ``/solve``-shaped work.  Unparseable
        bodies route to shard 0, whose worker produces the canonical
        400 envelope.
        """
        memo = self._route_cache.get(body)
        if memo is not None:
            return memo
        try:
            payload = json.loads(body.decode("utf-8"))
            if path == "/batch":
                key = decode_request_list(payload)[0].cache_key
            else:
                key = decode_request(payload).cache_key
            preference = self.ring.preference(key)
        except Exception:  # noqa: BLE001 - worker owns error reporting
            preference = tuple(range(self.cluster.workers))
        if len(self._route_cache) < _ROUTE_CACHE_MAX:
            self._route_cache[body] = preference
        return preference

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                if not await self._serve_one(reader, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_id = new_request_id()
        try:
            http = await read_request(
                reader, timeout=self.config.read_timeout
            )
        except HttpError as exc:
            await self._write_json(
                writer, exc.status,
                {"id": request_id,
                 "error": {"kind": "bad_request", "message": str(exc)}},
                close=True,
            )
            return False
        if http is None:
            return False
        keep = (
            self.config.keepalive
            and not self._draining
            and http.headers.get("connection", "").lower() != "close"
        )
        if http.path in ("/solve", "/batch"):
            keep = await self._proxy(http, writer, keep, request_id)
        elif http.path == "/cluster":
            await self._write_json(
                writer, 200,
                {"id": request_id, **self.shard_map()}, close=not keep,
            )
        elif http.path == "/healthz":
            payload = await self._aggregate_health(request_id)
            await self._write_json(
                writer,
                503 if payload.get("dead_shards") else 200,
                payload,
                close=not keep,
            )
        elif http.path == "/metrics":
            body = (await self._federate_metrics()).encode("utf-8")
            await write_response(
                writer, 200, body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                extra_headers={"X-Request-Id": request_id},
                timeout=self.config.write_timeout, close=not keep,
            )
        else:
            await self._write_json(
                writer, 404,
                {"id": request_id,
                 "error": {"kind": "not_found",
                           "message": f"no route for {http.path}"}},
                close=not keep,
            )
        return keep

    def _routable(self, shard: int) -> bool:
        """A shard the router can usefully dial right now."""
        worker = self.workers.get(shard)
        return (
            worker is not None
            and not worker.dead
            and worker.alive
            and worker.port is not None
            and shard in self._pools
        )

    async def _proxy(
        self,
        http: HttpRequest,
        writer: asyncio.StreamWriter,
        keep: bool,
        request_id: str,
    ) -> bool:
        preference = self._shard_for_body(http.path, http.body)
        owner = preference[0]
        if self.cluster.failover:
            # The ring with down shards skipped: the owner's keyspace
            # drains onto its clockwise successors and snaps back the
            # moment the owner is live again.
            order = [s for s in preference if self._routable(s)] or [owner]
        else:
            order = [owner]
        shard = owner
        answered = False
        for shard in order:
            try:
                status, headers, body = await self._roundtrip(shard, http)
                answered = True
                break
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    ConfigurationError):
                continue
        if not answered:
            await self._write_json(
                writer, 503,
                {"id": request_id,
                 "error": {
                     "kind": "shard_unavailable",
                     "message": (
                         f"worker for shard {owner} is unavailable "
                         "(crashed or respawning) and no live peer "
                         "could take the key; retry"
                     ),
                     "shard": owner,
                     "retry_after": self.cluster.health_interval * 2,
                 }},
                close=not keep,
                extra={"Retry-After": "1"},
            )
            return keep
        self.proxied[shard] = self.proxied.get(shard, 0) + 1
        passthrough = {
            name: headers[key]
            for key, name in (
                ("x-request-id", "X-Request-Id"),
                ("x-shard", "X-Shard"),
                ("retry-after", "Retry-After"),
                ("allow", "Allow"),
            )
            if (key in headers)
        }
        if shard != owner:
            self.failovers[owner] = self.failovers.get(owner, 0) + 1
            passthrough["X-Shard-Failover"] = str(owner)
        await write_response(
            writer, status, body,
            content_type=headers.get("content-type", "application/json"),
            extra_headers=passthrough,
            timeout=self.config.write_timeout, close=not keep,
        )
        return keep

    async def _roundtrip(
        self, shard: int, http: HttpRequest
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward one request to a worker over a pooled connection.

        Each attempt is bounded by ``cluster.proxy_timeout`` so a
        stalled worker (e.g. SIGSTOP) costs the client a fast 503 or
        a failover, never a hung connection.  Any transport error
        flushes the shard's idle pool: every pooled socket shares the
        dead peer, and retrying through the next corpse would burn the
        retry budget without ever dialing the respawned process.
        """
        last_error: Exception | None = None
        for attempt in (0, 1):
            pool = await self._pool_for(shard)
            conn_reader, conn_writer = await pool.acquire()
            try:
                head = (
                    f"{http.method} {http.path} HTTP/1.1\r\n"
                    f"Host: shard-{shard}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(http.body)}\r\n"
                    f"X-Fleet-Pressure: {self._fleet_pressure():.6f}\r\n"
                    "Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
                conn_writer.write(head + http.body)
                await conn_writer.drain()
                status, headers, body = await asyncio.wait_for(
                    _read_reply(conn_reader),
                    timeout=self.cluster.proxy_timeout,
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                conn_writer.close()
                pool.flush()
                if isinstance(exc, asyncio.TimeoutError):
                    # Stalled, not freshly dead — a second attempt
                    # would just stall again; fail over now.
                    raise ConnectionError(
                        f"shard {shard} did not answer within "
                        f"{self.cluster.proxy_timeout}s"
                    ) from exc
                last_error = exc
                if attempt == 0:
                    # The worker may have just died; give the health
                    # loop one beat to respawn it, then retry once.
                    await asyncio.sleep(self.cluster.health_interval)
                    continue
                raise exc
            if headers.get("connection", "").lower() == "close":
                conn_writer.close()
            else:
                pool.release(conn_reader, conn_writer)
            return status, headers, body
        raise last_error  # pragma: no cover - loop always raises/returns

    async def _pool_for(self, shard: int) -> _WorkerPool:
        deadline = time.monotonic() + self.cluster.spawn_timeout
        while True:
            worker = self.workers.get(shard)
            if worker is not None and worker.dead:
                raise ConnectionError(f"shard {shard} is dead")
            pool = self._pools.get(shard)
            if (
                pool is not None and worker is not None and worker.alive
                and worker.port == pool.port
            ):
                return pool
            if pool is not None:
                return pool  # stale but usable: roundtrip retries cover
            if time.monotonic() >= deadline:
                raise ConnectionError(f"no pool for shard {shard}")
            await asyncio.sleep(self.cluster.health_interval / 2)

    # -- fan-in endpoints ----------------------------------------------

    async def _worker_get(
        self, shard: int, path: str
    ) -> tuple[int, dict[str, str], bytes]:
        return await self._roundtrip(
            shard, HttpRequest(method="GET", path=path, query="")
        )

    async def _aggregate_health(self, request_id: str) -> dict:
        shards = []
        degraded = False
        for shard, worker in self.workers.items():
            entry: dict[str, Any] = {
                "shard": shard,
                "alive": worker.alive,
                "dead": worker.dead,
                "state": self._slot_state(worker),
                "respawns": worker.respawns,
            }
            if worker.dead:
                entry["status"] = "dead"
                degraded = True
                shards.append(entry)
                continue
            try:
                status, _, body = await self._worker_get(shard, "/healthz")
                entry["health"] = json.loads(body.decode("utf-8"))
                entry["status"] = (
                    entry["health"].get("status", "unknown")
                    if status == 200 else "unreachable"
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    ValueError, ConfigurationError):
                entry["status"] = "unreachable"
            if entry["status"] not in ("ok", "draining"):
                degraded = True
            shards.append(entry)
        return {
            "id": request_id,
            "status": (
                "draining" if self._draining
                else ("degraded" if degraded else "ok")
            ),
            "version": __version__,
            "uptime_s": time.monotonic() - self._started_at,
            "strategy": self.cluster.shard_strategy,
            "dead_shards": self.dead_shards,
            "fleet_pressure": self._fleet_pressure(),
            "workers": shards,
        }

    async def _federate_metrics(self) -> str:
        parts = []
        for shard in sorted(self.workers):
            if self.workers[shard].dead:
                parts.append(f"# shard {shard} dead")
                continue
            try:
                status, _, body = await self._worker_get(shard, "/metrics")
                if status != 200:
                    raise ConnectionError(f"metrics status {status}")
                parts.append(_label_shard(
                    body.decode("utf-8"), shard,
                    keep_comments=(shard == min(self.workers)),
                ))
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    ConfigurationError):
                parts.append(f"# shard {shard} unavailable")
        parts.append(
            "# TYPE repro_cluster_proxied_total counter\n" + "\n".join(
                f'repro_cluster_proxied_total{{shard="{shard}"}} {count}'
                for shard, count in sorted(self.proxied.items())
            )
        )
        parts.append(
            "# TYPE repro_cluster_failover_total counter\n" + "\n".join(
                f'repro_cluster_failover_total{{shard="{shard}"}} {count}'
                for shard, count in sorted(self.failovers.items())
            )
        )
        dead = set(self.dead_shards)
        parts.append(
            "# TYPE repro_cluster_shard_dead gauge\n" + "\n".join(
                f'repro_cluster_shard_dead{{shard="{shard}"}} '
                f"{1 if shard in dead else 0}"
                for shard in sorted(self.workers)
            )
        )
        return "\n".join(parts) + "\n"

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool,
        extra: dict[str, str] | None = None,
    ) -> None:
        await write_response(
            writer, status, json.dumps(payload).encode("utf-8"),
            extra_headers=extra,
            timeout=self.config.write_timeout, close=close,
        )


# ----------------------------------------------------------------------
# Hosting helpers
# ----------------------------------------------------------------------


async def _serve_cluster_async(
    config: ServiceConfig,
    on_started: Any | None = None,
) -> None:
    supervisor = ClusterSupervisor(config)
    await supervisor.start()
    if on_started is not None:
        on_started(supervisor)
    loop = asyncio.get_running_loop()
    stop_now = asyncio.Event()
    signals_seen = 0

    def _on_signal() -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen == 1:
            logger.warning("shutdown signal received; draining fleet")

            async def _drain_then_stop() -> None:
                await supervisor.drain()
                stop_now.set()

            loop.create_task(_drain_then_stop())
        else:
            logger.warning("second shutdown signal; forcing exit")
            stop_now.set()

    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _on_signal)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

    forever = loop.create_task(supervisor.serve_forever())
    stopper = loop.create_task(stop_now.wait())
    try:
        await asyncio.wait(
            {forever, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        for task in (forever, stopper):
            task.cancel()
        await asyncio.gather(forever, stopper, return_exceptions=True)
        for sig in installed:
            loop.remove_signal_handler(sig)
        await supervisor.stop()


def serve_cluster(config: ServiceConfig) -> None:
    """Run a worker fleet until interrupted (``workers=1`` falls back
    to the classic single-process daemon)."""
    if config.cluster.workers <= 1:
        serve(config)
        return
    asyncio.run(_serve_cluster_async(config))


class ClusterHandle:
    """A cluster running on its own thread/loop (tests, benchmarks)."""

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.supervisor = supervisor
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- chaos hooks (ClusterFaultInjector drives these) ---------------

    @property
    def cache_dir(self) -> str | None:
        """The fleet's shared disk-cache directory (None: memory-only)."""
        return self.supervisor.cluster.cache_dir

    def shard_pid(self, shard: int) -> int | None:
        """Pid of the shard's current live worker (None while down)."""
        worker = self.supervisor.workers.get(shard)
        return worker.pid if worker is not None and worker.alive else None

    def kill_shard(self, shard: int) -> bool:
        """SIGKILL the shard's current worker; False if already down."""
        pid = self.shard_pid(shard)
        if pid is None:
            return False
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            return False
        return True

    def hold_respawn(self, shard: int, seconds: float) -> None:
        """Keep the slot down at least ``seconds`` beyond its backoff —
        while held, its old port refuses connections (the
        ``worker-refuse`` chaos fault pairs this with a kill)."""
        until = time.monotonic() + seconds

        def _set() -> None:
            worker = self.supervisor.workers.get(shard)
            if worker is not None:
                worker.hold_until = max(worker.hold_until, until)

        self.loop.call_soon_threadsafe(_set)

    def flap_breaker(self, shard: int) -> dict:
        """Snapshot of the slot's crash-loop breaker."""
        return self.supervisor._flap_breakers[shard].snapshot()

    def drain(self, timeout: float | None = None) -> bool:
        if not self.thread.is_alive():
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.supervisor.drain(timeout), self.loop
        )
        budget = (
            timeout if timeout is not None
            else self.supervisor.config.drain_timeout
        )
        return future.result(budget + 10.0)

    def stop(self, timeout: float = 30.0) -> None:
        if self.thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.supervisor.stop(), self.loop
            )
            try:
                future.result(timeout)
            finally:
                self.loop.call_soon_threadsafe(self.loop.stop)
                self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("cluster thread did not stop in time")

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster_in_thread(config: ServiceConfig) -> ClusterHandle:
    """Start a cluster on a fresh thread; returns its handle.

    The default hash strategy supports ``port=0`` (read the router's
    bound port back from ``handle.port``).  The supervisor thread is
    multi-threaded territory, so workers start via ``spawn`` unless
    the config forces a method.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        supervisor = ClusterSupervisor(config)
        try:
            loop.run_until_complete(supervisor.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["supervisor"], box["loop"] = supervisor, loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(supervisor.stop())
            loop.close()

    thread = threading.Thread(
        target=runner, daemon=True, name="repro-cluster"
    )
    thread.start()
    budget = config.cluster.spawn_timeout + 15.0
    if not started.wait(budget):  # pragma: no cover - startup hang guard
        raise RuntimeError(f"cluster did not start within {budget:.0f}s")
    if "error" in box:
        raise box["error"]
    return ClusterHandle(box["supervisor"], box["loop"], thread)
