"""First-passage analysis: how long until the switch first blocks?

Complements the stationary measures with a transient quantity operators
ask about directly: starting from a given state (default: empty), the
expected time until the system first enters a state where a class-``r``
request *could not* be accommodated (``k.A > capacity - a_r``).

Standard absorbing-chain computation: with ``T`` the set of transient
(non-blocking) states and ``Q_T`` the generator restricted to ``T``,
the vector of expected hitting times solves ``Q_T h = -1``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .generator import build_generator
from .statespace import IndexedStateSpace

__all__ = ["mean_time_to_blocking"]


def mean_time_to_blocking(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int = 0,
    initial: Sequence[int] | None = None,
) -> float:
    """Expected time until class ``r`` first finds the fabric full.

    "Full" means the *capacity* cannot fit another class-``r``
    connection (``k.A > capacity - a_r``) — the time-congestion event.
    Returns ``inf`` when no blocking state is reachable (e.g. the
    offered traffic cannot fill the fabric: finite sources below
    capacity).
    """
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    if not 0 <= r < len(classes):
        raise ConfigurationError(f"class index {r} out of range")
    space = IndexedStateSpace.build(dims, classes)
    if initial is None:
        initial = tuple([0] * len(classes))
    else:
        initial = tuple(initial)
        if initial not in space.index:
            raise ConfigurationError(f"initial state {initial} infeasible")

    a = classes[r].a
    threshold = dims.capacity - a
    transient = [
        i
        for i, state in enumerate(space.states)
        if space.occupancy(state) <= threshold
    ]
    if space.occupancy(initial) > threshold:
        return 0.0  # already blocking

    generator = build_generator(space).tocsc()
    sub = generator[np.ix_(transient, transient)]
    # If no probability ever leaves the transient set, the hitting time
    # is infinite: detect via the row sums of the restricted generator.
    leak = np.asarray(
        generator[np.ix_(transient, [
            i for i in range(len(space.states)) if i not in set(transient)
        ])].sum(axis=1)
    ).ravel() if len(transient) < len(space.states) else np.zeros(
        len(transient)
    )
    if not np.any(leak > 0.0):
        return float("inf")

    rhs = -np.ones(len(transient))
    hitting = splinalg.spsolve(sparse.csc_matrix(sub), rhs)
    position = transient.index(space.index[initial])
    value = float(hitting[position])
    if not np.isfinite(value) or value < 0:
        return float("inf")
    return value
