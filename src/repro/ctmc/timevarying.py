"""Piecewise-stationary (time-varying traffic) transient analysis.

Real optical interconnects see traffic *profiles* — a reconfiguration,
a daily cycle, a failover burst — not one stationary mix.  This module
chains the uniformization engine across a schedule of traffic mixes:
within each segment the generator is constant, and the distribution at
a segment boundary seeds the next segment.

All mixes in a schedule must share the bandwidth vector ``(a_r)`` (the
state space is the set of concurrency vectors, which depends only on
the ``a_r``), but rates ``alpha/beta/mu`` may change arbitrarily —
including classes being switched off (``alpha = 0``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..core.state import SwitchDimensions, permutation
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .generator import build_generator
from .statespace import IndexedStateSpace

__all__ = ["TrafficSchedule", "piecewise_transient", "blocking_profile"]


@dataclass(frozen=True)
class TrafficSchedule:
    """A sequence of ``(duration, classes)`` segments."""

    segments: tuple[tuple[float, tuple[TrafficClass, ...]], ...]

    @classmethod
    def build(
        cls,
        segments: Sequence[tuple[float, Sequence[TrafficClass]]],
    ) -> "TrafficSchedule":
        if not segments:
            raise ConfigurationError("schedule needs at least one segment")
        packed = []
        signature = None
        for duration, classes in segments:
            if duration <= 0:
                raise ConfigurationError(
                    f"segment duration must be > 0, got {duration}"
                )
            classes = tuple(classes)
            if not classes:
                raise ConfigurationError("segment has no traffic classes")
            sig = tuple(c.a for c in classes)
            if signature is None:
                signature = sig
            elif sig != signature:
                raise ConfigurationError(
                    "all segments must share the bandwidth vector (a_r): "
                    f"{signature} vs {sig}"
                )
            packed.append((float(duration), classes))
        return cls(tuple(packed))

    @property
    def total_duration(self) -> float:
        return math.fsum(d for d, _ in self.segments)


def _propagate(
    pi: np.ndarray,
    gen: sparse.csr_matrix,
    duration: float,
    tol: float = 1e-12,
) -> np.ndarray:
    """Uniformized ``pi(t + duration)`` from ``pi(t)`` under ``gen``."""
    lam = float((-gen.diagonal()).max()) * 1.05 + 1e-12
    if lam <= 0 or duration == 0.0:
        return pi
    transition = sparse.identity(gen.shape[0], format="csr") + gen / lam
    lt = lam * duration
    log_weight = -lt
    weight = math.exp(log_weight)
    acc = weight * pi
    used = weight
    vec = pi
    j = 0
    max_terms = int(lt + 20.0 * math.sqrt(lt + 25.0)) + 50
    while used < 1.0 - tol and j < max_terms:
        j += 1
        vec = vec @ transition
        log_weight += math.log(lt) - math.log(j)
        weight = math.exp(log_weight)
        acc = acc + weight * vec
        used += weight
    acc = np.maximum(acc, 0.0)
    return acc / acc.sum()


def piecewise_transient(
    dims: SwitchDimensions,
    schedule: TrafficSchedule,
    initial: Sequence[int] | None = None,
    checkpoints_per_segment: int = 1,
) -> list[tuple[float, dict[tuple[int, ...], float]]]:
    """Distribution snapshots along a traffic schedule.

    Returns ``(time, distribution)`` pairs: ``checkpoints_per_segment``
    evenly spaced snapshots inside each segment (the last one exactly
    at the segment boundary).
    """
    if checkpoints_per_segment < 1:
        raise ConfigurationError(
            f"checkpoints_per_segment must be >= 1, got "
            f"{checkpoints_per_segment}"
        )
    first_classes = schedule.segments[0][1]
    space = IndexedStateSpace.build(dims, first_classes)
    n = len(space)
    pi = np.zeros(n)
    if initial is None:
        initial = tuple([0] * len(first_classes))
    else:
        initial = tuple(initial)
        if initial not in space.index:
            raise ConfigurationError(f"initial state {initial} infeasible")
    pi[space.index[initial]] = 1.0

    snapshots: list[tuple[float, dict[tuple[int, ...], float]]] = []
    now = 0.0
    for duration, classes in schedule.segments:
        segment_space = IndexedStateSpace.build(dims, classes)
        if segment_space.states != space.states:
            raise ConfigurationError(
                "segment state space changed; bandwidth vectors must match"
            )
        gen = build_generator(segment_space)
        step = duration / checkpoints_per_segment
        for _ in range(checkpoints_per_segment):
            pi = _propagate(pi, gen, step)
            now += step
            snapshots.append((now, dict(zip(space.states, pi))))
    return snapshots


def blocking_profile(
    dims: SwitchDimensions,
    schedule: TrafficSchedule,
    r: int = 0,
    checkpoints_per_segment: int = 4,
) -> list[tuple[float, float]]:
    """Port-pair blocking of class ``r`` over a traffic schedule.

    For each snapshot, the probability that a specific set of ``a_r``
    inputs and outputs is not entirely idle (the transient analogue of
    ``1 - B_r``).
    """
    first_classes = schedule.segments[0][1]
    if not 0 <= r < len(first_classes):
        raise ConfigurationError(f"class index {r} out of range")
    a = first_classes[r].a
    full = permutation(dims.n1, a) * permutation(dims.n2, a)
    if full == 0:
        return [
            (t, 1.0)
            for t, _ in piecewise_transient(
                dims, schedule, checkpoints_per_segment=checkpoints_per_segment
            )
        ]
    out = []
    for t, dist in piecewise_transient(
        dims, schedule, checkpoints_per_segment=checkpoints_per_segment
    ):
        acceptance = 0.0
        for state, p in dist.items():
            used = sum(k * c.a for k, c in zip(state, first_classes))
            acceptance += (
                p
                * permutation(dims.n1 - used, a)
                * permutation(dims.n2 - used, a)
                / full
            )
        out.append((t, 1.0 - acceptance))
    return out
