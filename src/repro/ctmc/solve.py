"""Stationary distribution of the raw Markov chain.

Solves ``pi Q = 0, sum pi = 1`` for the generator built from the model's
transition rates — **without** using reversibility or the product form.
Agreement with :func:`repro.core.productform.solve_brute_force` (and
hence with Algorithms 1/2) verifies the paper's eq. 2 end to end.

Two solvers:

* ``method="direct"`` — sparse LU on the normalized linear system
  (one balance equation replaced by the normalization constraint);
* ``method="power"`` — uniformized power iteration
  ``P = I + Q/Lambda``, robust for very large spaces where a direct
  factorization is too dense.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from ..core.productform import StateDistribution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, ConvergenceError
from .generator import build_generator
from .statespace import IndexedStateSpace

__all__ = ["solve_ctmc", "stationary_vector"]


def _solve_direct(gen: sparse.csr_matrix) -> np.ndarray:
    n = gen.shape[0]
    system = gen.transpose().tolil()
    system[n - 1, :] = 1.0  # replace last equation with normalization
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    solution = splinalg.spsolve(system.tocsr(), rhs)
    return np.asarray(solution)


def _solve_power(
    gen: sparse.csr_matrix, tol: float, max_iter: int
) -> np.ndarray:
    n = gen.shape[0]
    diag = -gen.diagonal()
    lam = float(diag.max()) * 1.01 + 1e-12
    transition = sparse.identity(n, format="csr") + gen / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new = pi @ transition
        new /= new.sum()
        if np.max(np.abs(new - pi)) < tol:
            return new
        pi = new
    raise ConvergenceError(
        f"power iteration did not converge in {max_iter} iterations"
    )


def stationary_vector(
    space: IndexedStateSpace,
    method: str = "direct",
    tol: float = 1e-13,
    max_iter: int = 2_000_000,
) -> np.ndarray:
    """Stationary probabilities aligned with ``space.states``."""
    gen = build_generator(space)
    if method == "direct":
        pi = _solve_direct(gen)
    elif method == "power":
        pi = _solve_power(gen, tol, max_iter)
    else:
        raise ConfigurationError(
            f"unknown method {method!r}; expected 'direct' or 'power'"
        )
    pi = np.maximum(pi, 0.0)
    total = pi.sum()
    if total <= 0.0:
        raise ConvergenceError("stationary solve produced a zero vector")
    return pi / total


def solve_ctmc(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    method: str = "direct",
) -> StateDistribution:
    """Solve the raw chain and return the full state distribution.

    The result type is shared with the brute-force product-form
    reference, so every measure (blocking, concurrency, congestion
    variants, detailed-balance residual) is available on it.
    """
    space = IndexedStateSpace.build(dims, classes)
    pi = stationary_vector(space, method=method)
    # log G is a product-form notion; reconstruct it for compatibility
    # from pi(0) = Psi(0)/G = 1/G.
    zero_index = space.index[tuple([0] * len(space.classes))]
    p0 = float(pi[zero_index])
    log_g = -np.log(p0) if p0 > 0 else np.inf
    return StateDistribution(
        dims=dims,
        classes=space.classes,
        states=space.states,
        probabilities=tuple(float(p) for p in pi),
        log_g=float(log_g),
    )
