"""Transient analysis of the crossbar chain by uniformization.

The paper analyzes steady state only; this module adds the standard
uniformization (Jensen's method) computation of ``pi(t)`` from any
initial state, which lets users study *how fast* an optical switch
settles to its stationary blocking level after, e.g., a traffic-mix
change — and gives the test suite a way to verify that the transient
distribution converges to the product form.

Uniformization: with ``Lambda >= max_i |Q[i,i]|`` and
``P = I + Q/Lambda``,

    ``pi(t) = sum_{j>=0} e^(-Lambda t) (Lambda t)^j / j!  *  pi(0) P^j``

truncated when the Poisson tail falls below ``tol``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import sparse

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .generator import build_generator
from .statespace import IndexedStateSpace

__all__ = ["transient_distribution", "time_to_stationarity"]


def transient_distribution(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    t: float,
    initial: Sequence[int] | None = None,
    tol: float = 1e-12,
) -> dict[tuple[int, ...], float]:
    """``pi(t)`` starting from ``initial`` (default: the empty switch).

    Returns a mapping state -> probability at time ``t``.
    """
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    space = IndexedStateSpace.build(dims, classes)
    n = len(space)
    if initial is None:
        initial = tuple([0] * len(space.classes))
    else:
        initial = tuple(initial)
        if initial not in space.index:
            raise ConfigurationError(f"initial state {initial} not feasible")

    gen = build_generator(space)
    lam = float((-gen.diagonal()).max()) * 1.05 + 1e-12
    transition = sparse.identity(n, format="csr") + gen / lam

    pi0 = np.zeros(n)
    pi0[space.index[initial]] = 1.0
    if t == 0.0 or lam == 0.0:
        return dict(zip(space.states, pi0))

    # Poisson weights e^{-lt}(lt)^j/j! accumulated until the mass used
    # exceeds 1 - tol.
    lt = lam * t
    log_weight = -lt  # j = 0
    weight = math.exp(log_weight)
    acc = weight * pi0
    used = weight
    vec = pi0
    j = 0
    max_terms = int(lt + 20.0 * math.sqrt(lt + 25.0)) + 50
    while used < 1.0 - tol and j < max_terms:
        j += 1
        vec = vec @ transition
        log_weight += math.log(lt) - math.log(j)
        weight = math.exp(log_weight)
        acc = acc + weight * vec
        used += weight
    acc = np.maximum(acc, 0.0)
    acc /= acc.sum()
    return dict(zip(space.states, acc))


def time_to_stationarity(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    epsilon: float = 1e-6,
    horizon: float = 200.0,
) -> float:
    """Smallest (binary-searched) ``t`` with ``||pi(t) - pi||_1 < epsilon``.

    Starts from the empty switch.  Returns ``inf`` when the horizon is
    insufficient — callers should widen it for very slow chains.
    """
    from .solve import solve_ctmc

    target = solve_ctmc(dims, classes)
    stationary = np.array(target.probabilities)
    order = {s: i for i, s in enumerate(target.states)}

    def distance(t: float) -> float:
        dist = transient_distribution(dims, classes, t)
        vec = np.zeros(len(order))
        for s, p in dist.items():
            vec[order[s]] = p
        return float(np.abs(vec - stationary).sum())

    if distance(horizon) >= epsilon:
        return math.inf
    lo, hi = 0.0, horizon
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if distance(mid) < epsilon:
            hi = mid
        else:
            lo = mid
        if hi - lo < 1e-9 * max(1.0, hi):
            break
    return hi
