"""Sparse generator matrix of the crossbar's Markov chain.

Transition rates come straight from the model definition (paper,
Section 2):

* acceptance of a class-``r`` request in state ``k`` (``k.A`` pairs
  busy) happens with intensity

      ``q(k, k + 1_r) = lambda_r(k_r) P(N1 - k.A, a_r) P(N2 - k.A, a_r)``

  — the linear BPP rate per (ordered) input/output tuple times the
  number of tuples whose ports are all idle.  For ``a_r = 1`` this is
  the paper's ``(N1 - k.A)(N2 - k.A) lambda_r(k_r)``;

* teardown of one of ``k_r`` connections:
  ``q(k, k - 1_r) = k_r mu_r``.

Blocked requests are cleared and do not appear in the chain.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..core.state import permutation
from .statespace import IndexedStateSpace

__all__ = ["build_generator", "transition_rates"]


def transition_rates(
    space: IndexedStateSpace, state: tuple[int, ...]
) -> list[tuple[tuple[int, ...], float]]:
    """All outgoing transitions ``(next_state, rate)`` from ``state``."""
    dims = space.dims
    used = space.occupancy(state)
    out: list[tuple[tuple[int, ...], float]] = []
    for r, cls in enumerate(space.classes):
        if used + cls.a <= dims.capacity:
            rate = cls.rate(state[r]) * permutation(
                dims.n1 - used, cls.a
            ) * permutation(dims.n2 - used, cls.a)
            if rate > 0.0:
                up = list(state)
                up[r] += 1
                out.append((tuple(up), rate))
        if state[r] > 0:
            down = list(state)
            down[r] -= 1
            out.append((tuple(down), state[r] * cls.mu))
    return out


def build_generator(space: IndexedStateSpace) -> sparse.csr_matrix:
    """The generator ``Q`` with ``Q[i, j]`` the rate ``i -> j`` and
    ``Q[i, i] = -sum_j Q[i, j]`` (rows sum to zero)."""
    n = len(space)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i, state in enumerate(space.states):
        total = 0.0
        for target, rate in transition_rates(space, state):
            j = space.index[target]
            rows.append(i)
            cols.append(j)
            vals.append(rate)
            total += rate
        rows.append(i)
        cols.append(i)
        vals.append(-total)
    return sparse.csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))), shape=(n, n)
    )
