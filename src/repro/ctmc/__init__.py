"""Raw continuous-time Markov-chain substrate.

Solves the crossbar's CTMC directly from its transition rates — no
reversibility, no product form — as an independent verification of the
paper's analytical solution, plus transient (uniformization) analysis
the paper does not cover.
"""

from .firstpassage import mean_time_to_blocking
from .generator import build_generator, transition_rates
from .solve import solve_ctmc, stationary_vector
from .statespace import IndexedStateSpace
from .timevarying import TrafficSchedule, blocking_profile, piecewise_transient
from .transient import time_to_stationarity, transient_distribution

__all__ = [
    "IndexedStateSpace",
    "TrafficSchedule",
    "blocking_profile",
    "build_generator",
    "mean_time_to_blocking",
    "piecewise_transient",
    "solve_ctmc",
    "stationary_vector",
    "time_to_stationarity",
    "transient_distribution",
    "transition_rates",
]
