"""Indexed state space for the raw Markov-chain formulation.

The product-form result (paper eq. 2) is a theorem *about* the
underlying continuous-time Markov chain.  This package solves that
chain directly from its transition rates — without assuming
reversibility or product form — providing an independent check of the
paper's central claim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.state import SwitchDimensions, iter_states
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError

__all__ = ["IndexedStateSpace"]


@dataclass(frozen=True)
class IndexedStateSpace:
    """Bijection between states of ``Gamma(N)`` and matrix indices."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    states: tuple[tuple[int, ...], ...]
    index: dict[tuple[int, ...], int]

    @classmethod
    def build(
        cls, dims: SwitchDimensions, classes: Sequence[TrafficClass]
    ) -> "IndexedStateSpace":
        classes = tuple(classes)
        if not classes:
            raise ConfigurationError("at least one traffic class is required")
        states = tuple(iter_states(dims, classes))
        index = {s: i for i, s in enumerate(states)}
        return cls(dims=dims, classes=classes, states=states, index=index)

    def __len__(self) -> int:
        return len(self.states)

    def occupancy(self, state: Sequence[int]) -> int:
        """``k . A`` for a state."""
        return sum(k * c.a for k, c in zip(state, self.classes))
