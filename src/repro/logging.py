"""Structured, opt-in logging for the crossbar library.

The library is silent by default (a :class:`logging.NullHandler` is
attached to the ``"repro"`` root logger), following the standard advice
for libraries.  Applications opt in either by configuring the stdlib
``logging`` module themselves or by calling :func:`configure`, which
attaches a stream handler with a structured ``key=value`` formatter::

    >>> from repro.logging import configure, get_logger
    >>> configure("DEBUG")                          # doctest: +SKIP
    >>> get_logger("robust").info(
    ...     "solver attempt %s", kv(solver="mva", status="ok"))  # doctest: +SKIP

Every module in the package logs through :func:`get_logger` so one
logger hierarchy (``repro``, ``repro.robust``, ``repro.sim``, ...)
controls the whole library.  Events are single lines of
``key=value`` pairs after a free-text message, grep- and
machine-friendly without requiring a JSON dependency.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

__all__ = [
    "LOGGER_NAME",
    "StructuredFormatter",
    "configure",
    "get_logger",
    "kv",
]

#: Name of the package's root logger; submodule loggers are children.
LOGGER_NAME = "repro"

#: Marker attribute set on handlers installed by :func:`configure` so
#: repeated calls reconfigure instead of stacking duplicate handlers.
_HANDLER_TAG = "_repro_structured_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger, or a child logger ``repro.<name>``."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def kv(**fields: Any) -> str:
    """Render keyword arguments as a stable ``key=value`` event string.

    Values containing whitespace (or ``=``) are ``repr()``-quoted so the
    line stays unambiguously parseable; floats are compacted with
    ``%.6g``.  Keys are emitted in the order given.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
            if not text or any(c.isspace() for c in text) or "=" in text:
                text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


class StructuredFormatter(logging.Formatter):
    """One event per line: ``ts=... level=... logger=... msg``."""

    def format(self, record: logging.LogRecord) -> str:
        prefix = kv(
            ts=self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            level=record.levelname,
            logger=record.name,
        )
        message = record.getMessage()
        if record.exc_info:
            message = f"{message}\n{self.formatException(record.exc_info)}"
        return f"{prefix} {message}"


def configure(
    level: int | str = logging.INFO, stream: TextIO | None = None
) -> logging.Logger:
    """Attach a structured stream handler to the package logger.

    Idempotent: calling again replaces the previously installed handler
    (so tests and CLI flags can adjust the level or stream freely)
    without touching handlers installed by the application.
    Returns the configured root package logger.
    """
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(StructuredFormatter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


# Libraries must never emit "No handlers could be found" warnings nor
# write to stderr unless asked to: stay silent until configured.
get_logger().addHandler(logging.NullHandler())
