"""Command-line interface: reproduce any paper experiment from a shell.

Examples
--------
::

    crossbar-repro figure1
    crossbar-repro figure4
    crossbar-repro table2 --set 1
    crossbar-repro solve --n 32 --poisson 0.001 --pascal 0.0005:0.3
    crossbar-repro simulate --n 8 --poisson 0.05 --horizon 2000
    crossbar-repro multistage --stages 3 --n 8 --poisson 0.01

(also available as ``python -m repro ...``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core.state import SwitchDimensions
from .core.traffic import TrafficClass
from .exceptions import ConfigurationError, CrossbarError
from .methods import SolveMethod
from .multistage import TandemNetwork, analyze_tandem
from .reporting.tables import format_table
from .sim import compare_with_analysis, run_replications
from .workloads import (
    figure1,
    figure2,
    figure3,
    figure4,
    table1_rows,
    table2_rows,
)

__all__ = ["main", "build_parser"]


def _parse_classes(args: argparse.Namespace) -> list[TrafficClass]:
    """Build traffic classes from ``--poisson``/``--pascal``/``--bernoulli``.

    * ``--poisson RHO[:A]`` — Poisson class with per-pair load RHO;
    * ``--pascal ALPHA:BETA[:A]`` — peaky class;
    * ``--bernoulli SOURCES:RATE[:A]`` — smooth finite-source class.
    """
    classes: list[TrafficClass] = []
    for spec in args.poisson or []:
        parts = spec.split(":")
        rho = float(parts[0])
        a = int(parts[1]) if len(parts) > 1 else 1
        classes.append(
            TrafficClass.poisson(rho, a=a, name=f"poisson-{len(classes)}")
        )
    for spec in args.pascal or []:
        parts = spec.split(":")
        if len(parts) < 2:
            raise CrossbarError(
                f"--pascal needs ALPHA:BETA[:A], got {spec!r}"
            )
        a = int(parts[2]) if len(parts) > 2 else 1
        classes.append(
            TrafficClass(
                alpha=float(parts[0]), beta=float(parts[1]), a=a,
                name=f"pascal-{len(classes)}",
            )
        )
    for spec in args.bernoulli or []:
        parts = spec.split(":")
        if len(parts) < 2:
            raise CrossbarError(
                f"--bernoulli needs SOURCES:RATE[:A], got {spec!r}"
            )
        a = int(parts[2]) if len(parts) > 2 else 1
        classes.append(
            TrafficClass.bernoulli(
                int(parts[0]), float(parts[1]), a=a,
                name=f"bernoulli-{len(classes)}",
            )
        )
    if not classes:
        raise CrossbarError(
            "specify at least one class via --poisson/--pascal/--bernoulli"
        )
    return classes


def _add_traffic_arguments(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument(
        "--n", type=int, required=required, help="switch size N"
    )
    parser.add_argument("--n2", type=int, help="outputs (default: N)")
    parser.add_argument(
        "--poisson", action="append", metavar="RHO[:A]",
        help="add a Poisson class (repeatable)",
    )
    parser.add_argument(
        "--pascal", action="append", metavar="ALPHA:BETA[:A]",
        help="add a peaky (Pascal) class (repeatable)",
    )
    parser.add_argument(
        "--bernoulli", action="append", metavar="SOURCES:RATE[:A]",
        help="add a smooth (Bernoulli) class (repeatable)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crossbar-repro",
        description=(
            "Asynchronous multi-rate crossbar analysis "
            "(Stirpe & Pinsky, SIGCOMM 1992 reproduction)"
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    resilience = parser.add_argument_group(
        "engine resilience",
        "fault-tolerance knobs of the batch engine (global; place "
        "before the subcommand)",
    )
    resilience.add_argument(
        "--max-retries", type=int, default=None, metavar="K",
        help="retries per request for transient failures "
             "(0 disables retrying; default: engine default)",
    )
    resilience.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="abandon and retry any solve attempt running longer than "
             "this (default: no deadline)",
    )
    resilience.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="launch a duplicate of a straggling parallel task after "
             "this long (default: no hedging)",
    )
    resilience.add_argument(
        "--no-hedging", action="store_true",
        help="disable hedged duplicates even if --hedge-after is set",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in ("figure1", "figure2", "figure3", "figure4"):
        p = sub.add_parser(fig, help=f"reproduce {fig} as a text table")
        p.add_argument(
            "--precision", type=int, default=6, help="digits to print"
        )
        p.add_argument(
            "--plot", action="store_true",
            help="also render an ASCII chart",
        )

    sub.add_parser("table1", help="Table 1: printed vs formula loads")

    p = sub.add_parser("table2", help="Table 2: revenue analysis")
    p.add_argument(
        "--set", type=int, default=0, choices=(0, 1, 2),
        dest="param_set", help="parameter set (row group) of Table 2",
    )

    p = sub.add_parser("solve", help="solve an arbitrary configuration")
    _add_traffic_arguments(p, required=False)
    p.add_argument(
        "--method", default=SolveMethod.CONVOLUTION.value,
        choices=tuple(
            m.value for m in SolveMethod
            # robust has its own subcommand; the series solver does not
            # expose the full summary/JSON measure set.
            if m not in (SolveMethod.ROBUST, SolveMethod.SERIES)
        ),
        help="algorithm",
    )
    p.add_argument(
        "--config", help="JSON model file (see repro.io); overrides --n "
        "and the class flags",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the solution as JSON instead of a table",
    )

    p = sub.add_parser("simulate", help="simulate and compare with analysis")
    _add_traffic_arguments(p)
    p.add_argument("--horizon", type=float, default=2000.0)
    p.add_argument("--warmup", type=float, default=200.0)
    p.add_argument("--replications", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("multistage", help="tandem network reduced-load analysis")
    _add_traffic_arguments(p)
    p.add_argument("--stages", type=int, default=2)

    p = sub.add_parser(
        "asymptotic",
        help="O(1) large-system approximation (for very large N)",
    )
    _add_traffic_arguments(p)

    p = sub.add_parser(
        "report",
        help="regenerate every figure/table + reproduction summary",
    )
    p.add_argument(
        "--output", default="reproduction-report",
        help="output directory (default: ./reproduction-report)",
    )

    p = sub.add_parser(
        "validate",
        help="cross-check every feasible solver on a configuration",
    )
    _add_traffic_arguments(p)

    p = sub.add_parser(
        "robust",
        help="resilient solve: fallback chain, degraded mode, availability",
    )
    _add_traffic_arguments(p)
    p.add_argument(
        "--failed-inputs", default="", metavar="PORTS",
        help="comma-separated dead input ports (e.g. 0,3): also print "
             "degraded-mode measures",
    )
    p.add_argument(
        "--failed-outputs", default="", metavar="PORTS",
        help="comma-separated dead output ports",
    )
    p.add_argument(
        "--availability", type=float, metavar="A",
        help="per-port availability in [0, 1]: also print "
             "availability-weighted long-run measures",
    )
    p.add_argument(
        "--availability-out", type=float, metavar="A",
        help="output-side availability (default: --availability)",
    )
    p.add_argument(
        "--routing", default="reroute", choices=("reroute", "oblivious"),
        help="how sources react to failures (default: reroute)",
    )
    p.add_argument(
        "--budget", type=float, metavar="SECONDS",
        help="wall-clock budget for the whole solver chain",
    )
    p.add_argument(
        "--solver-budget", type=float, metavar="SECONDS",
        help="wall-clock budget per solver attempt",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="structured log lines for every solver attempt",
    )

    p = sub.add_parser(
        "batch",
        help="evaluate a batch of solve requests through the engine",
    )
    _add_traffic_arguments(p, required=False)
    p.add_argument(
        "--sizes", metavar="N1,N2,...",
        help="comma-separated square sizes to sweep with the class flags",
    )
    p.add_argument(
        "--requests", metavar="FILE",
        help="JSON file with a list of solve-request records "
             "(overrides --n/--sizes and the class flags)",
    )
    p.add_argument(
        "--method", default=SolveMethod.CONVOLUTION.value,
        choices=tuple(
            m.value for m in SolveMethod if m is not SolveMethod.SERIES
        ),
        help="algorithm for --sizes sweeps",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit results as JSON instead of a table",
    )
    p.add_argument(
        "--metrics-json", metavar="PATH", dest="metrics_json",
        help="dump the run's BatchMetrics as JSON to PATH "
             "('-' for stdout)",
    )
    p.add_argument(
        "--parallel", action="store_true", default=None,
        help="force process-pool fan-out for cache misses",
    )

    p = sub.add_parser(
        "serve",
        help="run the solve-serving daemon or a sharded cluster of them "
             "(see docs/service.md)",
    )
    # Every knob defaults to "not given" so ServiceConfig.load() can
    # layer defaults < --config TOML < REPRO_SERVICE_* env < flags.
    p.add_argument(
        "--config", metavar="FILE", default=None,
        help="TOML service config ([service] / [service.brownout] / "
             "[cluster] sections; flags and env override it)",
    )
    p.add_argument("--host", default=None)
    p.add_argument("--port", type=int, default=None)
    p.add_argument(
        "--gate-capacity", type=int, default=None, metavar="TOKENS",
        help="admission tokens; full gate => 503, blocked calls cleared "
             "(default 64)",
    )
    p.add_argument(
        "--point-weight", type=int, default=None, metavar="TOKENS",
        help="tokens one /solve request holds (default 1)",
    )
    p.add_argument(
        "--batch-member-weight", type=int, default=None, metavar="TOKENS",
        help="tokens per member of a /batch request (default 1)",
    )
    p.add_argument(
        "--batch-window", type=float, default=None, metavar="SECONDS",
        help="micro-batch collection window (default 2ms)",
    )
    p.add_argument(
        "--max-batch", type=int, default=None, metavar="N",
        help="flush as soon as this many requests are pending",
    )
    p.add_argument(
        "--min-hold", type=float, default=None, metavar="SECONDS",
        help="artificial admission-token holding time (load emulation; "
             "default 0)",
    )
    p.add_argument(
        "--read-timeout", type=float, default=None, metavar="SECONDS",
        help="slow-loris bound: close connections that take longer than "
             "this to deliver a request head or body (0 disables; "
             "default 10)",
    )
    p.add_argument(
        "--write-timeout", type=float, default=None, metavar="SECONDS",
        help="abort connections whose peer stops draining the reply "
             "(0 disables; default 10)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="how long a SIGTERM drain waits for in-flight work before "
             "stopping anyway (default 10)",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes; above 1 runs the sharded cluster "
             "supervisor (default 1)",
    )
    p.add_argument(
        "--shard-strategy", default=None, metavar="MODE",
        choices=("hash", "reuseport"),
        help="cluster routing: 'hash' (consistent-hash router over "
             "canonical keys, the default) or 'reuseport' (kernel "
             "SO_REUSEPORT spraying; needs a fixed --port)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared disk-cache directory handed to every worker",
    )
    p.add_argument(
        "--start-method", default=None, metavar="METHOD",
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for workers (default: auto)",
    )
    p.add_argument(
        "--no-brownout", action="store_true",
        help="disable the brownout ladder (serve at full fidelity until "
             "the gate alone sheds load)",
    )
    p.add_argument(
        "--no-keepalive", action="store_true",
        help="close every connection after one response (pre-1.2 wire "
             "behavior)",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="structured request logs on stderr",
    )

    p = sub.add_parser(
        "loadgen",
        help="drive a daemon or cluster with a declarative load spec "
             "and print the merged report",
    )
    p.add_argument(
        "--spec", metavar="FILE", default=None,
        help="TOML load spec ([loadgen] section; defaults used if "
             "omitted)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377)
    p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="override the spec's measured duration",
    )
    p.add_argument(
        "--mode", default=None, choices=("open", "closed"),
        help="override the spec's arrival mode",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of a summary table",
    )

    p = sub.add_parser(
        "hotspot",
        help="hot-spot skew sweep (exact lumped chain, Poisson a=1)",
    )
    p.add_argument("--n", type=int, required=True, help="switch size N")
    p.add_argument("--n2", type=int, help="outputs (default: N)")
    p.add_argument(
        "--rho", type=float, required=True, help="per-pair Poisson load"
    )
    p.add_argument(
        "--factors", default="1,2,4,8",
        help="comma-separated skew factors (default 1,2,4,8)",
    )

    p = sub.add_parser(
        "verify",
        help="differential + metamorphic verification campaign "
             "(see docs/testing.md)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="fuzzer seed; a campaign is reproducible from it (default 0)",
    )
    p.add_argument(
        "--budget", default="60s", metavar="DURATION",
        help="fuzzing time budget, e.g. 30s, 2m, 0.5h (default 60s)",
    )
    p.add_argument(
        "--max-configs", type=int, default=None, metavar="N",
        help="stop fuzzing after N configs even with budget left",
    )
    p.add_argument(
        "--max-side", type=int, default=12, metavar="N",
        help="largest switch side the fuzzer samples (default 12)",
    )
    p.add_argument(
        "--repro-dir", default="verify-repros", metavar="DIR",
        help="where shrunk JSON reproducers are written (default "
             "verify-repros/)",
    )
    p.add_argument(
        "--skip-named", action="store_true",
        help="skip the Table 1 / Table 2 paper configurations",
    )
    p.add_argument(
        "--skip-fuzz", action="store_true",
        help="only check the named paper configurations",
    )
    p.add_argument(
        "--invariant", action="append", metavar="NAME", dest="invariants",
        help="restrict to one invariant (repeatable; default: all)",
    )
    p.add_argument(
        "--list-invariants", action="store_true",
        help="print the invariant registry and exit",
    )

    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Install a default engine honoring the resilience flags.

    Touches nothing when no flag was passed, so programmatic callers
    (and tests) keep whatever engine is already installed.
    """
    overrides: dict = {}
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = max(0, args.max_retries)
    if getattr(args, "task_deadline", None) is not None:
        overrides["task_deadline"] = args.task_deadline
    if getattr(args, "hedge_after", None) is not None:
        overrides["hedge_after"] = args.hedge_after
    if getattr(args, "no_hedging", False):
        overrides["hedge_after"] = None
    if not overrides:
        return
    from dataclasses import replace as _replace

    from .engine import BatchSolver, EngineConfig, set_default_engine

    set_default_engine(
        BatchSolver(_replace(EngineConfig.from_env(), **overrides))
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_engine(args)
    try:
        return _dispatch(args)
    except CrossbarError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "verify":
        from .verify import runner as verify_runner
        from .verify.invariants import INVARIANTS

        if args.list_invariants:
            for inv in INVARIANTS.values():
                print(f"{inv.name}  [{inv.paper_ref}]")
                print(f"    {inv.description}")
            return 0
        options = verify_runner.VerifyOptions(
            seed=args.seed,
            budget_seconds=verify_runner.parse_budget(args.budget),
            max_configs=args.max_configs,
            repro_dir=args.repro_dir,
            skip_named=args.skip_named,
            skip_fuzz=args.skip_fuzz,
            invariants=tuple(args.invariants) if args.invariants else None,
            max_side=args.max_side,
        )
        report = verify_runner.run_verify(options, echo=print)
        print(report.render())
        return 0 if report.passed else 1

    if args.command in ("figure1", "figure2", "figure3", "figure4"):
        builder = {
            "figure1": figure1,
            "figure2": figure2,
            "figure3": figure3,
            "figure4": figure4,
        }[args.command]
        figure = builder()
        print(figure.render(precision=args.precision))
        if args.plot:
            from .reporting import render_ascii_chart

            print()
            print(render_ascii_chart(figure))
        return 0

    if args.command == "report":
        from .experiments import generate_report

        checks = generate_report(args.output)
        for check in checks:
            print(check.render())
        passed = sum(c.passed for c in checks)
        print(f"\n{passed}/{len(checks)} reproduction criteria pass; "
              f"artifacts in {args.output}/")
        return 0 if passed == len(checks) else 1

    if args.command == "table1":
        print(
            format_table(
                ["N", "rho~1 (paper)", "rho~1 (formula)",
                 "rho~2 (paper)", "rho~2 (formula)"],
                table1_rows(),
                title="Table 1: Figure 4 input loads",
            )
        )
        return 0

    if args.command == "table2":
        rows = table2_rows(args.param_set)
        print(
            format_table(
                ["N", "dW/drho1", "paper", "dW/db2", "paper",
                 "blocking", "paper", "W", "paper"],
                [
                    [
                        r["N"], r["dW_drho1"], r["paper_dW_drho1"],
                        r["dW_dburstiness2"], r["paper_dW_dburstiness2"],
                        r["blocking"], r["paper_blocking"],
                        r["revenue"], r["paper_revenue"],
                    ]
                    for r in rows
                ],
                title=f"Table 2, parameter set {args.param_set} "
                      "(computed vs paper)",
            )
        )
        return 0

    if args.command == "hotspot":
        from .core.traffic import TrafficClass
        from .extensions import solve_hot_spot

        dims = SwitchDimensions(args.n, args.n2 or args.n)
        cls = TrafficClass.poisson(args.rho, name="poisson")
        rows = []
        for token in args.factors.split(","):
            factor = float(token)
            solution = solve_hot_spot(dims, cls, factor=factor)
            rows.append(
                [
                    factor,
                    solution.blocking(),
                    solution.hot_request_blocking(),
                    solution.cold_request_blocking(),
                    solution.hot_output_utilization(),
                ]
            )
        print(
            format_table(
                ["factor", "blocking", "hot-request B", "cold-request B",
                 "hot-output util"],
                rows,
                title=f"Hot-spot sweep on {dims} (rho={args.rho:g})",
            )
        )
        return 0

    if args.command == "batch":
        return _cmd_batch(args)

    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)

    if args.command == "solve" and getattr(args, "config", None):
        from .io import load_model

        model = load_model(args.config)
        dims, classes = model.dims, list(model.classes)
    else:
        if args.n is None:
            raise CrossbarError("--n is required (or pass --config)")
        dims = SwitchDimensions(args.n, args.n2 or args.n)
        classes = _parse_classes(args)

    if args.command == "solve":
        from .api import SolveRequest
        from .engine import get_default_engine

        solution = get_default_engine().solution_for(
            SolveRequest(dims, tuple(classes), args.method)
        )
        if args.as_json:
            import json

            from .io import solution_to_dict

            print(json.dumps(solution_to_dict(solution), indent=2))
        else:
            print(solution.summary())
        return 0

    if args.command == "simulate":
        summary = run_replications(
            dims, classes, horizon=args.horizon, warmup=args.warmup,
            replications=args.replications, seed=args.seed,
        )
        comparison = compare_with_analysis(summary, classes)
        rows = [
            [
                c["name"],
                c["acceptance_sim"].estimate,
                c["acceptance_analytical"],
                c["acceptance_covered"],
                c["concurrency_sim"].estimate,
                c["concurrency_analytical"],
                c["concurrency_covered"],
            ]
            for c in comparison["classes"]
        ]
        print(
            format_table(
                ["class", "accept(sim)", "accept(ana)", "in CI",
                 "E(sim)", "E(ana)", "in CI"],
                rows,
                title=f"Simulation vs analysis on {dims} "
                      f"({summary.replications} replications)",
            )
        )
        return 0

    if args.command == "validate":
        from .validation import cross_validate

        report = cross_validate(dims, classes)
        print(report.render())
        return 0 if report.consistent else 1

    if args.command == "robust":
        from .robust import (
            FailureMask,
            availability_weighted_measures,
            solve_degraded,
            solve_robust,
        )

        if args.verbose:
            import logging

            from .logging import configure

            configure(logging.DEBUG)

        def parse_ports(spec: str) -> list[int]:
            try:
                return [int(tok) for tok in spec.split(",") if tok.strip()]
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad port list {spec!r}: expected comma-separated "
                    "integers"
                ) from exc

        result = solve_robust(
            dims, classes,
            total_budget=args.budget, solver_budget=args.solver_budget,
        )
        print(result.diagnostics.render())
        print()
        rows = [
            [
                cls.name or f"class-{r}",
                result.solution.blocking(r),
                result.solution.concurrency(r),
                result.solution.call_acceptance(r),
            ]
            for r, cls in enumerate(classes)
        ]
        print(
            format_table(
                ["class", "blocking", "E", "acceptance"],
                rows,
                title=f"Healthy {dims} via {result.method}",
            )
        )
        mask = FailureMask.from_ports(
            parse_ports(args.failed_inputs), parse_ports(args.failed_outputs)
        )
        if not mask.is_healthy:
            print()
            print(
                solve_degraded(
                    dims, classes, mask, routing=args.routing
                ).render()
            )
        if args.availability is not None:
            print()
            print(
                availability_weighted_measures(
                    dims, classes, args.availability,
                    args.availability_out, routing=args.routing,
                ).render()
            )
        return 0

    if args.command == "asymptotic":
        from .core.asymptotic import solve_asymptotic

        approx = solve_asymptotic(dims, classes)
        rows = [
            [
                cls.name or f"class-{r}",
                approx.concurrency(r),
                approx.blocking(r),
            ]
            for r, cls in enumerate(classes)
        ]
        print(
            format_table(
                ["class", "E (approx)", "blocking (approx)"],
                rows,
                title=f"Large-system approximation on {dims} "
                      f"(utilization {approx.utilization():.4g}, "
                      f"{approx.iterations} bisection steps)",
            )
        )
        return 0

    if args.command == "multistage":
        network = TandemNetwork.uniform(args.stages, dims)
        result = analyze_tandem(network, classes)
        rows = [
            [s + 1] + list(stage)
            for s, stage in enumerate(result.stage_blocking)
        ]
        print(
            format_table(
                ["stage"] + [c.name or f"class-{r}"
                             for r, c in enumerate(result.classes)],
                rows,
                title=f"Per-stage blocking, {args.stages} stages of {dims} "
                      f"({result.iterations} fixed-point iterations)",
            )
        )
        for r, cls in enumerate(result.classes):
            print(
                f"end-to-end blocking[{cls.name or r}] = "
                f"{result.end_to_end_blocking(r):.6g}"
            )
        return 0

    raise CrossbarError(f"unhandled command {args.command!r}")


def _cmd_batch(args: argparse.Namespace) -> int:
    """``crossbar-repro batch``: one engine batch, metrics on request."""
    import json
    from pathlib import Path

    from .api import SolveRequest
    from .engine import get_default_engine

    if args.requests:
        try:
            payload = json.loads(Path(args.requests).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CrossbarError(
                f"cannot read request file {args.requests!r}: {exc}"
            ) from exc
        if isinstance(payload, dict):
            payload = payload.get("requests")
        if not isinstance(payload, list) or not payload:
            raise CrossbarError(
                "request file must hold a non-empty list of request "
                "records (or {'requests': [...]})"
            )
        try:
            requests = [SolveRequest.from_dict(rec) for rec in payload]
        except (KeyError, TypeError, ValueError) as exc:
            raise CrossbarError(f"malformed request record: {exc}") from exc
    else:
        classes = _parse_classes(args)
        if args.sizes:
            try:
                sizes = [
                    int(tok) for tok in args.sizes.split(",") if tok.strip()
                ]
            except ValueError as exc:
                raise CrossbarError(
                    f"bad --sizes {args.sizes!r}: expected comma-separated "
                    "integers"
                ) from exc
        elif args.n is not None:
            sizes = [args.n]
        else:
            raise CrossbarError(
                "batch needs --requests, or class flags with --sizes/--n"
            )
        requests = [
            SolveRequest(
                SwitchDimensions(n, args.n2 or n), tuple(classes),
                args.method,
            )
            for n in sizes
        ]

    engine = get_default_engine()
    results = engine.evaluate_many(requests, parallel=args.parallel)
    metrics = engine.last_metrics

    if args.metrics_json:
        text = json.dumps(metrics.to_dict(), indent=2) + "\n"
        if args.metrics_json == "-":
            print(text, end="")
        else:
            Path(args.metrics_json).write_text(text)

    failed = sum(1 for r in results if getattr(r, "failed", False))
    if args.as_json:
        records = [
            (r.to_dict() | {"failed": True})
            if getattr(r, "failed", False) else r.to_dict()
            for r in results
        ]
        print(json.dumps(records, indent=2))
    else:
        rows = []
        for request, result in zip(requests, results):
            if getattr(result, "failed", False):
                rows.append([
                    f"{request.dims.n1}x{request.dims.n2}",
                    request.method.value,
                    f"FAILED: {result.error_type}", "-", "-",
                ])
            else:
                rows.append([
                    f"{request.dims.n1}x{request.dims.n2}",
                    result.solved_by or request.method.value,
                    " / ".join(f"{b:.6g}" for b in result.blocking),
                    result.revenue,
                    result.utilization,
                ])
        print(
            format_table(
                ["dims", "method", "blocking (per class)", "W",
                 "utilization"],
                rows,
                title=f"Batch of {len(requests)} requests "
                      f"(hit-rate {metrics.hit_rate:.0%}, "
                      f"{metrics.grid_points} grid-served, "
                      f"{metrics.solved} solved)",
            )
        )
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``crossbar-repro serve``: run the daemon (or cluster) until
    interrupted.  Config precedence: defaults < ``--config`` TOML <
    ``REPRO_SERVICE_*`` env < explicit flags."""
    import os

    from .service import ServiceConfig, serve, serve_cluster

    if args.verbose:
        import logging as _logging

        from .logging import configure

        configure(_logging.INFO)
    config = ServiceConfig.load(
        toml_path=args.config, environ=os.environ, args=args
    )
    workers = config.cluster.workers
    if workers > 1:
        print(
            f"serving cluster on http://{config.host}:{config.port} "
            f"({workers} workers, {config.cluster.shard_strategy} "
            f"sharding, gate {config.gate_capacity} tokens/worker; "
            f"Ctrl-C to stop)"
        )
    else:
        print(
            f"serving on http://{config.host}:{config.port} "
            f"(gate {config.gate_capacity} tokens, "
            f"window {config.batch_window:g}s; Ctrl-C to stop)"
        )
    try:
        # On 3.11+ asyncio.run turns Ctrl-C into a cancellation that the
        # daemon absorbs as its clean-shutdown path, so serve() returns
        # normally; older loops re-raise KeyboardInterrupt instead.
        if workers > 1:
            serve_cluster(config)
        else:
            serve(config)
    except KeyboardInterrupt:
        pass
    print("interrupted; shut down cleanly")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """``crossbar-repro loadgen``: run a load spec, print the report."""
    import dataclasses as _dataclasses
    import json as _json

    from .loadgen import LoadSpec, run_load

    spec = (
        LoadSpec.from_toml(args.spec) if args.spec is not None
        else LoadSpec()
    )
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.mode is not None:
        overrides["mode"] = args.mode
    if overrides:
        spec = _dataclasses.replace(spec, **overrides)
    report = run_load(spec, args.host, args.port)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    record = report.to_dict()
    print(
        f"{spec.mode} loop, {spec.generators} generator(s) x "
        f"{spec.connections} connections, {report.duration:.1f}s"
    )
    print(
        f"offered {report.offered}  completed {report.completed}  "
        f"rejected {report.rejected}  errors {report.errors}"
    )
    print(
        f"throughput {report.throughput_rps:.1f} req/s   "
        f"blocking {report.blocking_measured:.4f}"
    )
    latency = record["latency_ms"]
    print(
        f"latency ms: mean {latency['mean']:.2f}  "
        f"p50 {latency['p50']:.2f}  p90 {latency['p90']:.2f}  "
        f"p99 {latency['p99']:.2f}"
    )
    for shard, counts in sorted(report.per_shard.items()):
        label = "unsharded" if shard < 0 else f"shard {shard}"
        print(
            f"  {label}: ok {counts['ok']}  "
            f"rejected {counts['rejected']}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
