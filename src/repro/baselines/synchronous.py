"""The synchronous (slotted) crossbar — the paper's contrast model.

Section 2 contrasts the asynchronous crossbar with "the well known
synchronous (slotted) crossbar model which has been suggested as an
implementation of non-blocking ATM switches" (Patel 1981, ref. [26]).
This module implements that classical baseline so the two switching
disciplines can be compared on one axis system:

* each slot, every input independently holds a fresh packet with
  probability ``p`` (Bernoulli loading);
* each packet addresses an output uniformly at random;
* every output grants one of its contenders; the rest are dropped
  (unbuffered — same blocked-calls-cleared spirit as the asynchronous
  model).

Classical results implemented and Monte-Carlo-validated here:

* per-output carried load (throughput)
  ``q = 1 - (1 - p/N2)^{N1}``;
* packet acceptance probability ``q N2 / (p N1)``;
* the famous saturation limit ``1 - 1/e ~ 0.632`` as ``N -> inf`` at
  ``p = 1``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, InvalidParameterError

__all__ = [
    "slotted_output_throughput",
    "slotted_acceptance",
    "saturation_throughput",
    "simulate_slotted",
]


def _check(n1: int, n2: int, p: float) -> None:
    if n1 < 1 or n2 < 1:
        raise ConfigurationError(
            f"switch dimensions must be >= 1, got {n1}x{n2}"
        )
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"input load p must be in [0, 1], got {p}")


def slotted_output_throughput(n1: int, n2: int, p: float) -> float:
    """Expected packets delivered per output per slot.

    Each output is addressed by ``Binomial(n1, p/n2)`` packets and
    serves one when any arrive: ``q = 1 - (1 - p/n2)^n1`` (Patel).
    """
    _check(n1, n2, p)
    return 1.0 - (1.0 - p / n2) ** n1


def slotted_acceptance(n1: int, n2: int, p: float) -> float:
    """Probability an offered packet is delivered in its slot.

    Carried per slot is ``n2 q``; offered is ``n1 p``.
    """
    _check(n1, n2, p)
    if p == 0.0:
        return 1.0
    return slotted_output_throughput(n1, n2, p) * n2 / (p * n1)


def saturation_throughput(n: int) -> float:
    """Per-output throughput of a saturated (``p = 1``) ``n x n`` switch.

    ``1 - (1 - 1/n)^n``, decreasing to ``1 - 1/e ~ 0.632`` — the
    classical unbuffered-crossbar saturation limit.
    """
    return slotted_output_throughput(n, n, 1.0)


def simulate_slotted(
    n1: int,
    n2: int,
    p: float,
    slots: int = 10_000,
    seed: int | None = None,
) -> tuple[float, float]:
    """Monte-Carlo the slotted crossbar; returns (throughput, acceptance).

    Vectorized over slots; used by the tests to validate the closed
    forms (they are exact for this model, so agreement is limited only
    by sampling noise).
    """
    _check(n1, n2, p)
    if slots < 1:
        raise ConfigurationError(f"slots must be >= 1, got {slots}")
    rng = np.random.default_rng(seed)
    have_packet = rng.random((slots, n1)) < p
    destinations = rng.integers(0, n2, size=(slots, n1))
    destinations = np.where(have_packet, destinations, -1)
    delivered = 0
    offered = int(have_packet.sum())
    for s in range(slots):
        targets = destinations[s]
        delivered += len({d for d in targets.tolist() if d >= 0})
    throughput = delivered / (slots * n2)
    acceptance = delivered / offered if offered else 1.0
    return throughput, acceptance
