"""Classical teletraffic formulas: Erlang B and Engset.

The crossbar model generalizes the classical single-resource loss
systems the paper's lineage starts from (Beneš [2], Wilkinson [33]).
This module implements them both as baselines and as *limit anchors*:

* **Engset limit.**  Fix ``N1 = c`` inputs and let ``N2 -> infinity``
  with the per-input offered rate ``Lambda = lambda N2`` held constant.
  Output contention vanishes and each input behaves like one of ``c``
  finite sources: the number of busy inputs converges to the Engset
  distribution ``pi(m) ∝ C(c, m) (Lambda/mu)^m``, so the probability a
  *specific* input is busy converges to the binomial mean ``E[m]/c``
  — verified against the exact crossbar in the tests.
* **Erlang B** is provided for reference and for the Engset -> Erlang
  limit (sources ``-> infinity`` at fixed total offered load).

Both formulas are evaluated with numerically stable recursions (no
factorials).
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError, InvalidParameterError

__all__ = [
    "erlang_b",
    "engset_blocking",
    "engset_distribution",
    "engset_mean_busy",
]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking for ``servers`` servers at ``offered_load`` erlangs.

    Stable recursion ``B(0) = 1``,
    ``B(c) = A B(c-1) / (c + A B(c-1))``.
    """
    if servers < 0:
        raise ConfigurationError(f"servers must be >= 0, got {servers}")
    if offered_load < 0:
        raise InvalidParameterError(
            f"offered_load must be >= 0, got {offered_load}"
        )
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = (
            offered_load * blocking / (c + offered_load * blocking)
        )
    return blocking


def engset_distribution(
    sources: int, per_source_load: float, servers: int | None = None
) -> list[float]:
    """Engset occupancy pmf: ``pi(m) ∝ C(S, m) a^m`` for ``m <= servers``.

    ``per_source_load = Lambda/mu`` is each idle source's offered load.
    ``servers`` defaults to ``sources`` (no extra truncation, the
    infinite-server/binomial case).
    """
    if sources < 1:
        raise ConfigurationError(f"sources must be >= 1, got {sources}")
    if per_source_load < 0:
        raise InvalidParameterError(
            f"per_source_load must be >= 0, got {per_source_load}"
        )
    if servers is None:
        servers = sources
    if servers < 0:
        raise ConfigurationError(f"servers must be >= 0, got {servers}")
    cap = min(sources, servers)
    weights = []
    w = 1.0
    for m in range(cap + 1):
        if m > 0:
            w *= (sources - m + 1) * per_source_load / m
        weights.append(w)
    total = math.fsum(weights)
    return [w / total for w in weights]


def engset_mean_busy(
    sources: int, per_source_load: float, servers: int | None = None
) -> float:
    """Mean busy sources under the Engset distribution."""
    pmf = engset_distribution(sources, per_source_load, servers)
    return math.fsum(m * p for m, p in enumerate(pmf))


def engset_blocking(
    sources: int, per_source_load: float, servers: int
) -> float:
    """Engset *call* congestion: blocking seen by arriving requests.

    Arrivals in state ``m`` come at rate ``(S - m) Lambda``; only those
    in the full state ``m = servers`` are lost, so the call congestion
    weights the time congestion by the idle-source count.
    """
    pmf = engset_distribution(sources, per_source_load, servers)
    cap = len(pmf) - 1
    if cap < servers:
        return 0.0  # fewer sources than servers: never blocked
    offered = math.fsum(
        (sources - m) * p for m, p in enumerate(pmf)
    )
    if offered <= 0.0:
        return 0.0
    return (sources - servers) * pmf[servers] / offered
