"""Baseline comparator models referenced by the paper's Section 1-2."""

from .erlang import (
    engset_blocking,
    engset_distribution,
    engset_mean_busy,
    erlang_b,
)
from .synchronous import (
    saturation_throughput,
    simulate_slotted,
    slotted_acceptance,
    slotted_output_throughput,
)

__all__ = [
    "engset_blocking",
    "engset_distribution",
    "engset_mean_busy",
    "erlang_b",
    "saturation_throughput",
    "simulate_slotted",
    "slotted_acceptance",
    "slotted_output_throughput",
]
