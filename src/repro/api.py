"""The unified solve API: typed requests, typed results, one entry point.

Historically the library grew three divergent front doors —
``CrossbarModel.solve`` (returns a :class:`PerformanceSolution`),
``repro.robust.solve_robust`` (returns a :class:`RobustSolution`) and
``repro.experiments.run_sweep`` (returns CSV-ish dicts) — each with its
own spelling of the same inputs.  This module is the single typed entry
point they now all delegate to:

>>> from repro.api import SolveRequest, solve
>>> from repro import TrafficClass
>>> request = SolveRequest.square(8, [TrafficClass.poisson(0.05, name="d")])
>>> result = solve(request)
>>> 0.0 <= result.blocking[0] <= 1.0
True

* :class:`SolveRequest` — a frozen, hashable description of *what* to
  solve: dimensions, traffic mix, method.  Requests canonicalize into
  cache keys, which is what makes the batched engine
  (:mod:`repro.engine`) able to memoize and deduplicate work.
* :class:`SolveResult` — a frozen, JSON-serializable record of every
  scalar measure at the requested dimensions.  Unlike
  :class:`PerformanceSolution` it holds no grids, so it is cheap to
  cache on disk and to ship across process boundaries.
* :func:`solve` / :func:`solve_many` — evaluate requests through the
  process-wide default :class:`~repro.engine.BatchSolver`; batches get
  Q-grid sharing, memoization and optional process parallelism.

The legacy keyword form ``solve(dims, classes, method=...)`` still
works behind a :class:`DeprecationWarning` but is scheduled for
removal in version 2.0 — see ``docs/api.md`` for the migration table.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from .core.state import SwitchDimensions
from .core.traffic import TrafficClass
from .exceptions import ConfigurationError
from .methods import SolveMethod

if TYPE_CHECKING:  # pragma: no cover
    from .engine.batch import BatchSolver

__all__ = [
    "SolveMethod",
    "SolveRequest",
    "SolveResult",
    "solve",
    "solve_many",
]

#: Bumped whenever the result schema changes; persisted cache entries
#: from other versions are treated as stale.
RESULT_SCHEMA_VERSION = 1


def _coerce_dims(dims: "SwitchDimensions | tuple[int, int] | int") -> SwitchDimensions:
    if isinstance(dims, SwitchDimensions):
        return dims
    if isinstance(dims, int):
        return SwitchDimensions.square(dims)
    if isinstance(dims, tuple) and len(dims) == 2:
        return SwitchDimensions(*dims)
    raise ConfigurationError(
        f"dims must be SwitchDimensions, an int (square) or an (n1, n2) "
        f"tuple, got {dims!r}"
    )


@dataclass(frozen=True)
class SolveRequest:
    """A hashable, immutable description of one solve.

    Parameters
    ----------
    dims:
        Switch dimensions (also accepts an int for a square switch or
        an ``(n1, n2)`` tuple).
    classes:
        The traffic mix; stored as a tuple.
    method:
        A :class:`SolveMethod` (strings and the historical
        ``"convolution/log"`` aliases are coerced).
    """

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    method: SolveMethod = SolveMethod.CONVOLUTION

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", _coerce_dims(self.dims))
        object.__setattr__(self, "classes", tuple(self.classes))
        object.__setattr__(self, "method", SolveMethod.coerce(self.method))
        if not self.classes:
            raise ConfigurationError(
                "a solve request needs at least one traffic class"
            )
        for cls in self.classes:
            if not isinstance(cls, TrafficClass):
                raise ConfigurationError(
                    f"classes must be TrafficClass instances, got {cls!r}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        n1: int,
        n2: int,
        classes: Sequence[TrafficClass],
        method: SolveMethod | str = SolveMethod.CONVOLUTION,
    ) -> "SolveRequest":
        """Build from plain integers."""
        return cls(SwitchDimensions(n1, n2), tuple(classes), method)

    @classmethod
    def square(
        cls,
        n: int,
        classes: Sequence[TrafficClass],
        method: SolveMethod | str = SolveMethod.CONVOLUTION,
    ) -> "SolveRequest":
        """An ``n x n`` switch (the paper's standard configuration)."""
        return cls(SwitchDimensions.square(n), tuple(classes), method)

    # ------------------------------------------------------------------

    @property
    def cache_key(self) -> str:
        """Canonical key: dims, method, *sorted* traffic-class params.

        Class order does not affect the product-form measures, so two
        requests differing only by class permutation share one key (and
        therefore one cached solve).  Memoized on the (frozen)
        instance: the serving hot path reads it several times per
        request and the canonicalization is not free.
        """
        key = self.__dict__.get("_cache_key_memo")
        if key is None:
            from .engine.keys import request_key

            key = request_key(self.dims, self.classes, self.method)
            object.__setattr__(self, "_cache_key_memo", key)
        return key

    def with_dims(self, dims: "SwitchDimensions | int") -> "SolveRequest":
        """Same traffic and method on a different switch."""
        return replace(self, dims=_coerce_dims(dims))

    def with_method(self, method: SolveMethod | str) -> "SolveRequest":
        """Same model solved by a different method."""
        return replace(self, method=SolveMethod.coerce(method))

    def to_dict(self) -> dict:
        """Flat JSON-ready record (``repro.io`` class schema)."""
        from .io import class_to_dict

        return {
            "n1": self.dims.n1,
            "n2": self.dims.n2,
            "method": self.method.value,
            "classes": [class_to_dict(c) for c in self.classes],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SolveRequest":
        from .io import class_from_dict

        return cls(
            SwitchDimensions(int(record["n1"]), int(record["n2"])),
            tuple(class_from_dict(c) for c in record["classes"]),
            record.get("method", SolveMethod.CONVOLUTION),
        )


@dataclass(frozen=True)
class SolveResult:
    """Every scalar measure of one solved request, JSON-serializable.

    Per-class fields are tuples indexed like ``request.classes``.
    ``elapsed`` and ``from_cache`` are execution metadata and excluded
    from equality, so a cache hit compares equal to the solve that
    produced it.
    """

    request: SolveRequest
    #: Offered blocking ``1 - B_r`` per class (what the figures plot).
    blocking: tuple[float, ...]
    #: Mean concurrent connections ``E_r`` per class (paper §3).
    concurrency: tuple[float, ...]
    #: Fraction of offered requests accepted (call acceptance) per class.
    acceptance: tuple[float, ...]
    #: Completion rate ``mu_r E_r`` per class.
    throughput: tuple[float, ...]
    #: Weighted throughput ``W = sum w_r E_r`` (paper §4).
    revenue: float
    #: Mean occupied input/output pairs ``sum a_r E_r``.
    mean_occupancy: float
    #: ``mean_occupancy / min(N1, N2)``.
    utilization: float
    #: Provenance label of the algorithm that actually ran (the robust
    #: method reports the chain entry that produced the answer).
    solved_by: str = ""
    #: Wall-clock seconds of the producing solve (0 for cache hits).
    elapsed: float = field(default=0.0, compare=False)
    #: True when this result was served from a cache.
    from_cache: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.request.classes)
        for name in ("blocking", "concurrency", "acceptance", "throughput"):
            values = getattr(self, name)
            object.__setattr__(self, name, tuple(float(v) for v in values))
            if len(values) != n:
                raise ConfigurationError(
                    f"{name} has {len(values)} entries for {n} classes"
                )

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    @property
    def dims(self) -> SwitchDimensions:
        return self.request.dims

    @property
    def classes(self) -> tuple[TrafficClass, ...]:
        return self.request.classes

    @property
    def non_blocking(self) -> tuple[float, ...]:
        """``B_r`` per class — paper eq. 4."""
        return tuple(1.0 - b for b in self.blocking)

    @property
    def call_congestion(self) -> tuple[float, ...]:
        """``1 - acceptance`` per class."""
        return tuple(1.0 - a for a in self.acceptance)

    @property
    def total_throughput(self) -> float:
        """``sum_r mu_r E_r``."""
        return math.fsum(self.throughput)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_solution(
        cls,
        request: SolveRequest,
        solution: Any,
        solved_by: str = "",
        elapsed: float = 0.0,
    ) -> "SolveResult":
        """Extract the scalar measures from any solved-model object.

        ``solution`` needs per-class ``blocking(r)``, ``concurrency(r)``
        and ``call_acceptance(r)`` accessors (all the library's solvers
        provide them); the aggregate measures are recomputed here with
        the same ``fsum`` formulas as :class:`PerformanceSolution`, so
        they agree bit-for-bit.
        """
        classes = request.classes
        indices = range(len(classes))
        concurrency = tuple(solution.concurrency(r) for r in indices)
        mean_occupancy = math.fsum(
            c.a * e for c, e in zip(classes, concurrency)
        )
        capacity = request.dims.capacity
        return cls(
            request=request,
            blocking=tuple(solution.blocking(r) for r in indices),
            concurrency=concurrency,
            acceptance=tuple(solution.call_acceptance(r) for r in indices),
            throughput=tuple(
                c.mu * e for c, e in zip(classes, concurrency)
            ),
            revenue=math.fsum(
                c.weight * e for c, e in zip(classes, concurrency)
            ),
            mean_occupancy=mean_occupancy,
            utilization=(
                mean_occupancy / capacity if capacity else 0.0
            ),
            solved_by=solved_by or getattr(solution, "method", ""),
            elapsed=elapsed,
        )

    def reordered(self, permutation: Sequence[int], request: SolveRequest) -> "SolveResult":
        """This result with classes permuted to match ``request``.

        ``permutation[i]`` is the index in *this* result holding the
        measures of ``request.classes[i]``.  Used by the engine when a
        cache hit was stored under a different (equivalent) class order.
        """
        pick = lambda values: tuple(values[j] for j in permutation)  # noqa: E731
        return replace(
            self,
            request=request,
            blocking=pick(self.blocking),
            concurrency=pick(self.concurrency),
            acceptance=pick(self.acceptance),
            throughput=pick(self.throughput),
        )

    def to_dict(self) -> dict:
        """Flat JSON-ready record (round-trips via :meth:`from_dict`)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "request": self.request.to_dict(),
            "blocking": list(self.blocking),
            "concurrency": list(self.concurrency),
            "acceptance": list(self.acceptance),
            "throughput": list(self.throughput),
            "revenue": self.revenue,
            "mean_occupancy": self.mean_occupancy,
            "utilization": self.utilization,
            "solved_by": self.solved_by,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SolveResult":
        return cls(
            request=SolveRequest.from_dict(record["request"]),
            blocking=tuple(record["blocking"]),
            concurrency=tuple(record["concurrency"]),
            acceptance=tuple(record["acceptance"]),
            throughput=tuple(record["throughput"]),
            revenue=float(record["revenue"]),
            mean_occupancy=float(record["mean_occupancy"]),
            utilization=float(record["utilization"]),
            solved_by=record.get("solved_by", ""),
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def _legacy_request(
    dims: Any,
    classes: Sequence[TrafficClass],
    method: SolveMethod | str | None,
) -> SolveRequest:
    warnings.warn(
        "solve(dims, classes, method=...) is deprecated and will be "
        "removed in 2.0; pass a SolveRequest: "
        "solve(SolveRequest(dims, classes, method))",
        DeprecationWarning,
        stacklevel=3,
    )
    return SolveRequest(
        _coerce_dims(dims), tuple(classes),
        method if method is not None else SolveMethod.CONVOLUTION,
    )


def solve(
    request: "SolveRequest | SwitchDimensions | int",
    classes: Sequence[TrafficClass] | None = None,
    method: SolveMethod | str | None = None,
    *,
    engine: "BatchSolver | None" = None,
) -> SolveResult:
    """Solve one request through the (default) batched engine.

    The engine memoizes: repeated calls with an equivalent request are
    served from cache.  The legacy form ``solve(dims, classes,
    method=...)`` still works but emits a :class:`DeprecationWarning`
    and will be removed in version 2.0.
    """
    if not isinstance(request, SolveRequest):
        if classes is None:
            raise ConfigurationError(
                "solve() needs a SolveRequest (or legacy dims + classes)"
            )
        request = _legacy_request(request, classes, method)
    elif classes is not None or method is not None:
        raise ConfigurationError(
            "pass either a SolveRequest or legacy (dims, classes, "
            "method) arguments, not both"
        )
    from .engine import get_default_engine

    return (engine or get_default_engine()).solve(request)


def solve_many(
    requests: Sequence[SolveRequest],
    *,
    engine: "BatchSolver | None" = None,
    parallel: bool | None = None,
    strict: bool | None = None,
) -> list[SolveResult]:
    """Solve a batch of requests with caching, Q-grid reuse and fan-out.

    See :meth:`repro.engine.BatchSolver.evaluate_many` for the batching
    semantics; results come back in request order.  Under the default
    supervisor a request that terminally fails yields a
    :class:`repro.engine.FailedResult` in its slot (check
    ``getattr(result, "failed", False)``) while the rest of the batch
    completes; ``strict=True`` re-raises the first failure instead.
    """
    from .engine import get_default_engine

    return (engine or get_default_engine()).evaluate_many(
        requests, parallel=parallel, strict=strict
    )
