"""Topology description for multistage crossbar networks.

The paper closes by proposing to extend the analysis "to asynchronous
all-optical multi-stage networks" (Section 8).  This package implements
that extension for the simplest non-trivial topology: a **tandem** of
``S`` asynchronous crossbars, where an end-to-end circuit must hold one
input/output pair at *every* stage simultaneously for its whole
duration (all-optical circuit switching: no buffering between stages).

Stages may have different dimensions; a connection of class ``r``
occupies ``a_r`` pairs at each stage.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.state import SwitchDimensions
from ..exceptions import ConfigurationError

__all__ = ["TandemNetwork"]


@dataclass(frozen=True)
class TandemNetwork:
    """A chain of crossbar stages traversed by every connection."""

    stages: tuple[SwitchDimensions, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a network needs at least one stage")

    @classmethod
    def uniform(cls, n_stages: int, dims: SwitchDimensions) -> "TandemNetwork":
        """``n_stages`` identical crossbars in series."""
        if n_stages < 1:
            raise ConfigurationError(
                f"n_stages must be >= 1, got {n_stages}"
            )
        return cls(tuple([dims] * n_stages))

    @classmethod
    def square(cls, n_stages: int, n: int) -> "TandemNetwork":
        """``n_stages`` identical ``n x n`` crossbars in series."""
        return cls.uniform(n_stages, SwitchDimensions.square(n))

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_capacity(self) -> int:
        """Smallest per-stage capacity along the chain."""
        return min(d.capacity for d in self.stages)

    def validate_classes(self, requirements: Sequence[int]) -> None:
        """Check every class fits through every stage."""
        cap = self.bottleneck_capacity
        for a in requirements:
            if a > cap:
                raise ConfigurationError(
                    f"bandwidth requirement a={a} exceeds the bottleneck "
                    f"stage capacity {cap}"
                )
