"""Discrete-event simulation of a tandem multistage network.

The ground truth against which the reduced-load approximation of
:mod:`repro.multistage.analysis` is judged.  Semantics:

* a class-``r`` request draws ``a_r`` distinct inputs and ``a_r``
  distinct outputs *independently at every stage* (uniform pattern);
* it is accepted iff every named port at every stage is idle, in which
  case it holds **all** of them for one service time (all-optical
  circuit: the light path spans the chain, no per-stage buffering);
* blocked requests are cleared.

The offered stream is Poisson/BPP exactly as in the single-switch
simulator, with the per-tuple rate multiplied by the stage-1 tuple
count (the request's identity is its stage-1 tuple; downstream tuples
are routing outcomes).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.state import SwitchDimensions, permutation
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .topology import TandemNetwork
from ..sim.distributions import Exponential, ServiceDistribution
from ..sim.events import ARRIVAL, DEPARTURE, EventQueue
from ..sim.rng import RandomStreams
from ..sim.stats import (
    ConfidenceInterval,
    RatioEstimator,
    t_confidence_interval,
)

__all__ = ["MultistageSimulator", "simulate_tandem", "TandemSimSummary"]


@dataclass(frozen=True)
class TandemSimSummary:
    """Replicated end-to-end acceptance estimates per class."""

    network: TandemNetwork
    acceptance: tuple[ConfidenceInterval, ...]
    offered: tuple[int, ...]


class MultistageSimulator:
    """Event-driven simulation of one tandem network."""

    def __init__(
        self,
        network: TandemNetwork,
        classes: Sequence[TrafficClass],
        services: Sequence[ServiceDistribution] | None = None,
        seed: int | None = None,
    ) -> None:
        if not classes:
            raise ConfigurationError("at least one traffic class is required")
        self.network = network
        self.classes = tuple(classes)
        network.validate_classes([c.a for c in self.classes])
        if services is None:
            services = [Exponential(1.0 / c.mu) for c in self.classes]
        if len(services) != len(self.classes):
            raise ConfigurationError(
                f"{len(services)} service distributions for "
                f"{len(self.classes)} classes"
            )
        self.services = tuple(services)
        self.rng = RandomStreams(seed=seed, n_classes=len(self.classes))
        first = network.stages[0]
        self._tuples = [
            permutation(first.n1, c.a) * permutation(first.n2, c.a)
            for c in self.classes
        ]

    def run(
        self, horizon: float, warmup: float = 0.0
    ) -> tuple[list[RatioEstimator], int]:
        """Simulate; returns per-class acceptance counters and event count."""
        if horizon <= warmup:
            raise ConfigurationError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        stages = self.network.stages
        n_classes = len(self.classes)
        in_busy = [np.zeros(d.n1, dtype=bool) for d in stages]
        out_busy = [np.zeros(d.n2, dtype=bool) for d in stages]
        k = [0] * n_classes
        connections: dict[int, tuple[int, list, list]] = {}
        next_id = 0
        queue = EventQueue()
        versions = [0] * n_classes
        ratios = [RatioEstimator() for _ in range(n_classes)]
        warmed = warmup == 0.0
        events = 0

        def schedule(r: int, now: float) -> None:
            rate = self.classes[r].rate(k[r]) * self._tuples[r]
            gap = self.rng.exponential(r, rate)
            if gap != float("inf"):
                queue.push(now + gap, ARRIVAL, payload=r, version=versions[r])

        for r in range(n_classes):
            schedule(r, 0.0)

        while queue:
            event = queue.pop()
            if event.time > horizon:
                break
            if event.kind == ARRIVAL and event.version != versions[event.payload]:
                continue
            now = event.time
            events += 1
            if not warmed and now >= warmup:
                ratios = [RatioEstimator() for _ in range(n_classes)]
                warmed = True
            if event.kind == ARRIVAL:
                r = event.payload
                a = self.classes[r].a
                picks_in = [
                    self.rng.choose_ports(d.n1, a) for d in stages
                ]
                picks_out = [
                    self.rng.choose_ports(d.n2, a) for d in stages
                ]
                free = all(
                    not (in_busy[s][picks_in[s]].any()
                         or out_busy[s][picks_out[s]].any())
                    for s in range(len(stages))
                )
                ratios[r].observe(free)
                if free:
                    for s in range(len(stages)):
                        in_busy[s][picks_in[s]] = True
                        out_busy[s][picks_out[s]] = True
                    k[r] += 1
                    connections[next_id] = (r, picks_in, picks_out)
                    hold = self.services[r].sample(self.rng.services[r])
                    queue.push(now + hold, DEPARTURE, payload=next_id)
                    next_id += 1
                    versions[r] += 1
                schedule(r, now)
            else:
                r, picks_in, picks_out = connections.pop(event.payload)
                for s in range(len(stages)):
                    in_busy[s][picks_in[s]] = False
                    out_busy[s][picks_out[s]] = False
                k[r] -= 1
                versions[r] += 1
                schedule(r, now)
        return ratios, events


def simulate_tandem(
    network: TandemNetwork,
    classes: Sequence[TrafficClass],
    horizon: float,
    warmup: float = 0.0,
    replications: int = 5,
    seed: int = 0,
    level: float = 0.95,
) -> TandemSimSummary:
    """Replicated tandem simulation with per-class acceptance CIs."""
    per_class: list[list[float]] = [[] for _ in classes]
    offered = [0] * len(classes)
    for i in range(replications):
        sim = MultistageSimulator(network, classes, seed=seed + i)
        ratios, _ = sim.run(horizon=horizon, warmup=warmup)
        for r, est in enumerate(ratios):
            per_class[r].append(est.ratio)
            offered[r] += est.offered
    return TandemSimSummary(
        network=network,
        acceptance=tuple(
            t_confidence_interval(vals, level) for vals in per_class
        ),
        offered=tuple(offered),
    )
