"""Multistage (tandem) crossbar networks — the paper's Section 8 extension.

Reduced-load fixed-point analysis (:mod:`~repro.multistage.analysis`)
validated against an exact discrete-event simulator
(:mod:`~repro.multistage.simulate`).
"""

from .analysis import MultistageResult, analyze_tandem
from .simulate import MultistageSimulator, TandemSimSummary, simulate_tandem
from .topology import TandemNetwork

__all__ = [
    "MultistageResult",
    "MultistageSimulator",
    "TandemNetwork",
    "TandemSimSummary",
    "analyze_tandem",
    "simulate_tandem",
]
