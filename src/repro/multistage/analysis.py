"""Reduced-load (Erlang fixed point) analysis of tandem networks.

Extends the single-switch model of the paper to a chain of stages with
the classical reduced-load approximation (Kelly's Erlang fixed point,
the natural analytical tool given the paper's reliance on [20]):

1. assume stages block (approximately) independently;
2. the load *offered to* stage ``s`` is the external load thinned by
   the acceptance probabilities of all the other stages,
   ``alpha_r^(s) = alpha_r * prod_{t != s} (1 - B_t,r)``;
3. each stage is then a single-switch model solved exactly with
   Algorithm 1, giving new per-stage blocking ``B_s,r``;
4. iterate to a fixed point.

End-to-end acceptance is ``prod_s (1 - B_s,r)``.  The approximation is
exact for one stage and validated against the multistage discrete-event
simulator (``repro.multistage.simulate``) in the benchmarks — including
its known bias (it ignores the simultaneous-holding correlation between
stages).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from ..core.traffic import TrafficClass
from ..exceptions import ConvergenceError
from .topology import TandemNetwork


def _solve_stage(dims, thinned):
    """One stage solve through the batched engine.

    The fixed point converges geometrically, so late iterations rebuild
    nearly identical thinned classes; stages that actually stopped
    changing (their pass-through factors converged first) become exact
    cache hits instead of fresh Algorithm 1 runs.
    """
    from ..api import SolveRequest
    from ..engine import get_default_engine
    from ..methods import SolveMethod

    return get_default_engine().solution_for(
        SolveRequest(dims, tuple(thinned), SolveMethod.CONVOLUTION)
    )

__all__ = ["MultistageResult", "analyze_tandem"]


@dataclass(frozen=True)
class MultistageResult:
    """Fixed-point solution of a tandem network."""

    network: TandemNetwork
    classes: tuple[TrafficClass, ...]
    stage_blocking: tuple[tuple[float, ...], ...]  # [stage][class]
    iterations: int

    def end_to_end_blocking(self, r: int) -> float:
        """``1 - prod_s (1 - B_s,r)`` under stage independence."""
        acceptance = 1.0
        for stage in self.stage_blocking:
            acceptance *= 1.0 - stage[r]
        return 1.0 - acceptance

    def end_to_end_acceptance(self, r: int) -> float:
        return 1.0 - self.end_to_end_blocking(r)

    def worst_stage(self, r: int) -> int:
        """Index of the stage with the highest class-``r`` blocking."""
        column = [stage[r] for stage in self.stage_blocking]
        return column.index(max(column))


def analyze_tandem(
    network: TandemNetwork,
    classes: Sequence[TrafficClass],
    tol: float = 1e-12,
    max_iter: int = 10_000,
    damping: float = 1.0,
) -> MultistageResult:
    """Solve the reduced-load fixed point for a tandem network.

    ``damping`` in ``(0, 1]`` under-relaxes the blocking update, useful
    near capacity where the plain iteration can oscillate.
    """
    classes = tuple(classes)
    network.validate_classes([c.a for c in classes])
    n_stages = len(network)
    n_classes = len(classes)

    blocking = [[0.0] * n_classes for _ in range(n_stages)]
    for iteration in range(1, max_iter + 1):
        new_blocking = []
        for s, dims in enumerate(network.stages):
            thinned = []
            for r, cls in enumerate(classes):
                pass_through = 1.0
                for t in range(n_stages):
                    if t != s:
                        pass_through *= 1.0 - blocking[t][r]
                thinned.append(
                    replace(cls, alpha=cls.alpha * pass_through,
                            beta=cls.beta * pass_through)
                )
            solution = _solve_stage(dims, thinned)
            new_blocking.append(
                [solution.blocking(r) for r in range(n_classes)]
            )
        worst = 0.0
        for s in range(n_stages):
            for r in range(n_classes):
                updated = (
                    damping * new_blocking[s][r]
                    + (1.0 - damping) * blocking[s][r]
                )
                worst = max(worst, abs(updated - blocking[s][r]))
                blocking[s][r] = updated
        if worst < tol:
            return MultistageResult(
                network=network,
                classes=classes,
                stage_blocking=tuple(tuple(row) for row in blocking),
                iterations=iteration,
            )
    raise ConvergenceError(
        f"reduced-load fixed point did not converge in {max_iter} "
        f"iterations (last delta {worst:.3g})"
    )
