"""Containers for figure-style sweep results.

A paper figure is a family of curves over a shared x-axis.  The
benchmarks compute them with the analytical model and print them with
:mod:`repro.reporting.tables`; tests assert their qualitative *shape*
(orderings, monotonicity, crossovers) — the reproduction criterion.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError
from .tables import format_table

__all__ = ["Curve", "FigureSeries"]


@dataclass(frozen=True)
class Curve:
    """One labelled curve: y-values aligned with the figure's x-axis."""

    label: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"curve {self.label!r} has no points")


@dataclass
class FigureSeries:
    """A figure: shared x-axis plus any number of curves."""

    title: str
    x_label: str
    x_values: tuple[float, ...]
    y_label: str
    curves: list[Curve] = field(default_factory=list)

    def add(self, label: str, values: Sequence[float]) -> None:
        values = tuple(values)
        if len(values) != len(self.x_values):
            raise ConfigurationError(
                f"curve {label!r} has {len(values)} points for "
                f"{len(self.x_values)} x-values"
            )
        self.curves.append(Curve(label=label, values=values))

    def curve(self, label: str) -> Curve:
        for c in self.curves:
            if c.label == label:
                return c
        raise ConfigurationError(f"no curve labelled {label!r}")

    def to_rows(self) -> list[list]:
        """Rows of ``[x, curve1, curve2, ...]`` for table rendering."""
        rows = []
        for i, x in enumerate(self.x_values):
            rows.append([x] + [c.values[i] for c in self.curves])
        return rows

    def render(self, precision: int = 6) -> str:
        """The whole figure as an aligned text table."""
        headers = [self.x_label] + [c.label for c in self.curves]
        return format_table(
            headers,
            self.to_rows(),
            precision=precision,
            title=f"{self.title}  [y: {self.y_label}]",
        )
