"""Plain-text table rendering for benchmark and CLI output.

The paper's figures are reproduced as printed series (no plotting
dependency); this module renders aligned ASCII tables from rows of
heterogeneous values.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 6) -> str:
    """Render one cell: floats in ``%g`` style, everything else via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 6,
    title: str | None = None,
) -> str:
    """Aligned monospace table with a header rule.

    >>> print(format_table(["n", "x"], [[1, 0.5], [10, 0.25]]))
     n     x
    --  ----
     1   0.5
    10  0.25
    """
    rendered = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
