"""Plain-text line charts for figure series (no plotting dependency).

Renders a :class:`~repro.reporting.series.FigureSeries` as a character
grid: one marker per curve, shared y-scaling, axis annotations.  Used
by the CLI's ``--plot`` flag so the paper's figures can be *seen*, not
just tabulated, on any terminal.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError
from .series import FigureSeries

__all__ = ["render_ascii_chart"]

_MARKERS = "*o+x#@%&"


def render_ascii_chart(
    figure: FigureSeries,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render the figure as an ASCII chart.

    ``width``/``height`` size the plotting area (excluding axes).  The
    x positions are mapped by *index* (the paper's size sweeps are
    log-spaced, so index mapping keeps the points legible); y is linear
    between the data extremes.
    """
    if width < 8 or height < 4:
        raise ConfigurationError(
            f"chart area too small: {width}x{height}"
        )
    if not figure.curves:
        raise ConfigurationError("figure has no curves to plot")

    values = [v for c in figure.curves for v in c.values]
    y_min = min(values)
    y_max = max(values)
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0 if y_min == 0 else y_min * 1.01 + 1e-12

    n_points = len(figure.x_values)
    grid = [[" "] * width for _ in range(height)]

    def x_pos(i: int) -> int:
        if n_points == 1:
            return width // 2
        return round(i * (width - 1) / (n_points - 1))

    def y_pos(v: float) -> int:
        frac = (v - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    for c_index, curve in enumerate(figure.curves):
        marker = _MARKERS[c_index % len(_MARKERS)]
        previous = None
        for i, v in enumerate(curve.values):
            col, row = x_pos(i), y_pos(v)
            # light interpolation between consecutive points
            if previous is not None:
                pcol, prow = previous
                steps = max(abs(col - pcol), 1)
                for s in range(1, steps):
                    icol = pcol + round(s * (col - pcol) / steps)
                    irow = prow + round(s * (row - prow) / steps)
                    if grid[irow][icol] == " ":
                        grid[irow][icol] = "."
            grid[row][col] = marker
            previous = (col, row)

    label_width = 10
    lines = [f"{figure.title}"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.4g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_min:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    first_x = f"{figure.x_values[0]:g}"
    last_x = f"{figure.x_values[-1]:g}"
    padding = width - len(first_x) - len(last_x)
    lines.append(
        " " * (label_width + 1) + first_x + " " * max(1, padding) + last_x
    )
    lines.append(
        " " * (label_width + 1)
        + f"x: {figure.x_label}   y: {figure.y_label}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {c.label}"
        for i, c in enumerate(figure.curves)
    )
    lines.append(" " * (label_width + 1) + legend)
    return "\n".join(lines)
