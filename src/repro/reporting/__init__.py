"""Text reporting: aligned tables, figure series, and ASCII charts."""

from .ascii_plot import render_ascii_chart
from .series import Curve, FigureSeries
from .tables import format_table, format_value

__all__ = [
    "Curve",
    "FigureSeries",
    "format_table",
    "format_value",
    "render_ascii_chart",
]
