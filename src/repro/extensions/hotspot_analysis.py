"""Exact analysis of hot-spot (non-uniform) traffic on the crossbar.

The paper assumes uniform traffic and cites its companion analysis of
hot spots (Pinsky & Stirpe, ICPP 1991, ref. [28]).  This module
reproduces that setting *exactly* for a single Poisson class with
``a = 1`` on an ``N1 x N2`` crossbar where one designated output
attracts ``factor`` times the selection probability of each other
output (the same weighting the simulator's hot-spot mode uses).

Key observation: inputs remain exchangeable, and the cold outputs
remain exchangeable among themselves, so the process **lumps exactly**
onto the two-dimensional state

    ``(m, h)``:  ``m`` connections in progress, ``h in {0, 1}``
                 whether the hot output is busy,

with transition rates (per-tuple rate ``lambda``, hot-selection
probability ``w = factor / (factor + N2 - 1)``):

* arrival taking the hot output (only when ``h = 0``):
  ``lambda N1 N2 w (N1 - m)/N1``;
* arrival taking a cold output:
  ``lambda N1 N2 (1 - w) (N1 - m)/N1 (N2 - 1 - (m - h))/(N2 - 1)``;
* hot departure: ``h mu``;  cold departure: ``(m - h) mu``.

The chain is tiny (``2 (cap + 1)`` states) and solved directly; the
closed-form measures (overall, hot-pair and cold-pair blocking) are
validated against the hot-spot *simulator* in the tests, and the
``factor = 1`` case collapses to the paper's uniform model exactly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError

__all__ = ["HotSpotSolution", "solve_hot_spot"]


@dataclass(frozen=True)
class HotSpotSolution:
    """Stationary solution of the hot-spot chain."""

    dims: SwitchDimensions
    cls: TrafficClass
    factor: float
    states: tuple[tuple[int, int], ...]  # (m, h)
    probabilities: tuple[float, ...]

    @property
    def hot_weight(self) -> float:
        """Selection probability of the hot output."""
        return self.factor / (self.factor + self.dims.n2 - 1)

    def probability(self, m: int, h: int) -> float:
        for (sm, sh), p in zip(self.states, self.probabilities):
            if (sm, sh) == (m, h):
                return p
        return 0.0

    def mean_connections(self) -> float:
        return math.fsum(
            m * p for (m, _), p in zip(self.states, self.probabilities)
        )

    def hot_output_utilization(self) -> float:
        """Fraction of time the hot output is busy."""
        return math.fsum(
            p for (_, h), p in zip(self.states, self.probabilities) if h
        )

    def cold_output_utilization(self) -> float:
        """Fraction of time one particular cold output is busy."""
        if self.dims.n2 <= 1:
            return 0.0
        return math.fsum(
            (m - h) / (self.dims.n2 - 1) * p
            for (m, h), p in zip(self.states, self.probabilities)
        )

    def _rates(self, m: int, h: int) -> tuple[float, float, float]:
        """(offered, accepted-hot, accepted-cold) request rates in (m,h)."""
        dims = self.dims
        lam = self.cls.alpha
        w = self.hot_weight
        total = lam * dims.n1 * dims.n2
        free_inputs = (dims.n1 - m) / dims.n1
        hot = total * w * free_inputs * (1 if h == 0 else 0)
        if dims.n2 > 1:
            cold = (
                total
                * (1.0 - w)
                * free_inputs
                * (dims.n2 - 1 - (m - h))
                / (dims.n2 - 1)
            )
        else:
            cold = 0.0
        return total, hot, cold

    def call_acceptance(self) -> float:
        """Overall fraction of offered requests accepted."""
        offered = 0.0
        accepted = 0.0
        for (m, h), p in zip(self.states, self.probabilities):
            total, hot, cold = self._rates(m, h)
            offered += p * total
            accepted += p * (hot + cold)
        if offered == 0.0:
            return 1.0
        return accepted / offered

    def blocking(self) -> float:
        """Overall request blocking."""
        return 1.0 - self.call_acceptance()

    def hot_request_blocking(self) -> float:
        """Blocking of requests that selected the hot output."""
        offered = 0.0
        accepted = 0.0
        for (m, h), p in zip(self.states, self.probabilities):
            total, hot, _ = self._rates(m, h)
            offered += p * total * self.hot_weight
            accepted += p * hot
        if offered == 0.0:
            return 0.0
        return 1.0 - accepted / offered

    def cold_request_blocking(self) -> float:
        """Blocking of requests that selected a cold output."""
        offered = 0.0
        accepted = 0.0
        for (m, h), p in zip(self.states, self.probabilities):
            total, _, cold = self._rates(m, h)
            offered += p * total * (1.0 - self.hot_weight)
            accepted += p * cold
        if offered == 0.0:
            return 0.0
        return 1.0 - accepted / offered


def solve_hot_spot(
    dims: SwitchDimensions,
    cls: TrafficClass,
    factor: float,
) -> HotSpotSolution:
    """Solve the hot-spot chain exactly.

    Restrictions (the companion model's setting): one Poisson class
    with ``a = 1``; ``factor >= 1``.
    """
    if cls.a != 1:
        raise ConfigurationError(
            f"hot-spot analysis supports a=1 classes, got a={cls.a}"
        )
    if not cls.is_poisson:
        raise ConfigurationError(
            "hot-spot analysis supports Poisson classes (beta = 0)"
        )
    if factor < 1.0:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    if dims.n2 < 1 or dims.n1 < 1:
        raise ConfigurationError("dims must be at least 1x1")

    cap = dims.capacity
    states = [
        (m, h)
        for m in range(cap + 1)
        for h in (0, 1)
        if h <= m and (dims.n2 > 1 or h == m)
    ]
    # h = 1 requires at least one connection; with n2 == 1 every
    # connection uses the single (hot) output so h == min(m, 1).
    states = [
        (m, h)
        for (m, h) in states
        if not (dims.n2 == 1 and h != min(m, 1))
    ]
    index = {s: i for i, s in enumerate(states)}
    n = len(states)
    gen = np.zeros((n, n))
    w = factor / (factor + dims.n2 - 1)
    lam = cls.alpha
    mu = cls.mu
    total_rate = lam * dims.n1 * dims.n2

    for (m, h), i in index.items():
        free_inputs = (dims.n1 - m) / dims.n1
        if m < cap and h == 0:
            rate = total_rate * w * free_inputs
            if rate > 0:
                gen[i, index[(m + 1, 1)]] += rate
        if m < cap and dims.n2 > 1:
            rate = (
                total_rate
                * (1.0 - w)
                * free_inputs
                * (dims.n2 - 1 - (m - h))
                / (dims.n2 - 1)
            )
            if rate > 0 and (m + 1, h) in index:
                gen[i, index[(m + 1, h)]] += rate
        if h == 1:
            gen[i, index[(m - 1, 0)]] += mu
        if m - h > 0:
            gen[i, index[(m - 1, h)]] += (m - h) * mu
    np.fill_diagonal(gen, gen.diagonal() - gen.sum(axis=1))

    system = gen.T.copy()
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    pi = np.linalg.solve(system, rhs)
    pi = np.maximum(pi, 0.0)
    pi /= pi.sum()
    return HotSpotSolution(
        dims=dims,
        cls=cls,
        factor=factor,
        states=tuple(states),
        probabilities=tuple(float(p) for p in pi),
    )
