"""Policy extensions built on the CTMC and simulation substrates."""

from .admission import (
    OccupancyThresholdPolicy,
    policy_call_acceptance,
    solve_with_admission,
    sweep_threshold,
)
from .hotspot_analysis import HotSpotSolution, solve_hot_spot

__all__ = [
    "HotSpotSolution",
    "OccupancyThresholdPolicy",
    "policy_call_acceptance",
    "solve_hot_spot",
    "solve_with_admission",
    "sweep_threshold",
]
