"""Admission control (trunk reservation) on the asynchronous crossbar.

The paper's revenue analysis (Section 4) shows that cheap bursty
traffic can *reduce* total revenue by displacing valuable connections —
the shadow-cost interpretation.  The operational fix is classical
admission control: admit a class-``r`` request only while the total
occupancy (after accepting it) stays at or below a per-class threshold
``t_r``, reserving headroom for the classes with higher thresholds.

Thresholded admission **breaks reversibility and the product form**
(the tests verify this via the detailed-balance residual), so this
extension solves the modified chain with the raw CTMC substrate:

1. BFS over the policy-respecting transition graph from the empty
   state (states above a binding threshold are unreachable and are
   excluded outright);
2. build the generator on the reachable set;
3. solve ``pi Q = 0`` directly.

The discrete-event simulator supports the same policy
(``AsynchronousCrossbarSimulator(admission_thresholds=...)``), giving
an independent check, and :func:`sweep_threshold` exposes the design
question: *which reservation level maximizes W?*
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from ..core.productform import StateDistribution
from ..core.state import SwitchDimensions, permutation
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, ConvergenceError

__all__ = [
    "OccupancyThresholdPolicy",
    "policy_call_acceptance",
    "solve_with_admission",
    "sweep_threshold",
]


@dataclass(frozen=True)
class OccupancyThresholdPolicy:
    """Per-class occupancy caps: admit iff ``k.A + a_r <= t_r``.

    ``t_r = capacity`` means class ``r`` is unrestricted; lowering
    ``t_r`` reserves ``capacity - t_r`` pairs for the other classes.
    """

    thresholds: tuple[int, ...]

    @classmethod
    def unrestricted(
        cls, dims: SwitchDimensions, n_classes: int
    ) -> "OccupancyThresholdPolicy":
        return cls(tuple([dims.capacity] * n_classes))

    @classmethod
    def reserve(
        cls,
        dims: SwitchDimensions,
        n_classes: int,
        restricted: int,
        headroom: int,
    ) -> "OccupancyThresholdPolicy":
        """Reserve ``headroom`` pairs from one restricted class."""
        if headroom < 0:
            raise ConfigurationError(f"headroom must be >= 0, got {headroom}")
        thresholds = [dims.capacity] * n_classes
        thresholds[restricted] = max(0, dims.capacity - headroom)
        return cls(tuple(thresholds))

    def admits(self, occupancy_after: int, r: int) -> bool:
        return occupancy_after <= self.thresholds[r]

    def validate(self, dims: SwitchDimensions, n_classes: int) -> None:
        if len(self.thresholds) != n_classes:
            raise ConfigurationError(
                f"{len(self.thresholds)} thresholds for {n_classes} classes"
            )
        for t in self.thresholds:
            if t < 0 or t > dims.capacity:
                raise ConfigurationError(
                    f"threshold {t} outside [0, {dims.capacity}]"
                )


def _reachable_states(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    policy: OccupancyThresholdPolicy,
) -> list[tuple[int, ...]]:
    """BFS the policy-respecting transition graph from the empty state."""
    start = tuple([0] * len(classes))
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        used = sum(k * c.a for k, c in zip(state, classes))
        for r, cls in enumerate(classes):
            after = used + cls.a
            if (
                after <= dims.capacity
                and policy.admits(after, r)
                and cls.rate(state[r]) > 0.0
            ):
                up = list(state)
                up[r] += 1
                key = tuple(up)
                if key not in seen:
                    seen.add(key)
                    queue.append(key)
        # downward transitions stay inside the reachable set by
        # construction (any reachable state was built upward from 0)
    return sorted(seen)


def solve_with_admission(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    policy: OccupancyThresholdPolicy,
) -> StateDistribution:
    """Stationary distribution of the admission-controlled crossbar."""
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    policy.validate(dims, len(classes))
    states = _reachable_states(dims, classes, policy)
    index = {s: i for i, s in enumerate(states)}
    n = len(states)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i, state in enumerate(states):
        used = sum(k * c.a for k, c in zip(state, classes))
        total = 0.0
        for r, cls in enumerate(classes):
            after = used + cls.a
            if after <= dims.capacity and policy.admits(after, r):
                rate = cls.rate(state[r]) * permutation(
                    dims.n1 - used, cls.a
                ) * permutation(dims.n2 - used, cls.a)
                if rate > 0.0:
                    up = list(state)
                    up[r] += 1
                    j = index[tuple(up)]
                    rows.append(i)
                    cols.append(j)
                    vals.append(rate)
                    total += rate
            if state[r] > 0:
                down = list(state)
                down[r] -= 1
                j = index[tuple(down)]
                rate = state[r] * cls.mu
                rows.append(i)
                cols.append(j)
                vals.append(rate)
                total += rate
        rows.append(i)
        cols.append(i)
        vals.append(-total)
    gen = sparse.csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))), shape=(n, n)
    )
    system = gen.transpose().tolil()
    system[n - 1, :] = 1.0
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    pi = np.asarray(splinalg.spsolve(system.tocsr(), rhs))
    pi = np.maximum(pi, 0.0)
    total_mass = pi.sum()
    if total_mass <= 0.0:
        raise ConvergenceError("admission-controlled solve returned zero")
    pi /= total_mass

    empty = index[tuple([0] * len(classes))]
    p0 = float(pi[empty])
    log_g = -math.log(p0) if p0 > 0 else math.inf
    return StateDistribution(
        dims=dims,
        classes=classes,
        states=tuple(states),
        probabilities=tuple(float(v) for v in pi),
        log_g=log_g,
    )


def policy_call_acceptance(
    dist: StateDistribution,
    policy: OccupancyThresholdPolicy,
    r: int,
) -> float:
    """Acceptance of offered class-``r`` requests under the policy.

    Accounts for both physical blocking (ports busy) and policy
    rejections; this is what the admission-controlled simulator
    measures.
    """
    cls = dist.classes[r]
    a = cls.a
    dims = dist.dims
    full = permutation(dims.n1, a) * permutation(dims.n2, a)
    if full == 0:
        return 0.0
    offered = 0.0
    accepted = 0.0
    for state, p in zip(dist.states, dist.probabilities):
        rate = cls.rate(state[r])
        used = sum(k * c.a for k, c in zip(state, dist.classes))
        offered += p * rate * full
        if policy.admits(used + a, r):
            accepted += (
                p
                * rate
                * permutation(dims.n1 - used, a)
                * permutation(dims.n2 - used, a)
            )
    if offered == 0.0:
        return 1.0
    return accepted / offered


def sweep_threshold(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    restricted: int,
    thresholds: Sequence[int] | None = None,
) -> list[dict]:
    """Revenue and per-class measures vs the restricted class's cap.

    Returns one record per threshold with the policy revenue
    ``W = sum_r w_r E_r`` and each class's concurrency — the data a
    designer needs to pick a reservation level.
    """
    classes = tuple(classes)
    if thresholds is None:
        thresholds = range(0, dims.capacity + 1)
    out = []
    for t in thresholds:
        policy_thresholds = [dims.capacity] * len(classes)
        policy_thresholds[restricted] = t
        policy = OccupancyThresholdPolicy(tuple(policy_thresholds))
        dist = solve_with_admission(dims, classes, policy)
        out.append(
            {
                "threshold": t,
                "revenue": dist.revenue(),
                "concurrencies": dist.concurrencies(),
                "acceptance_restricted": policy_call_acceptance(
                    dist, policy, restricted
                ),
            }
        )
    return out
