"""Online statistics for simulation output analysis.

Provides the estimators the runner uses:

* :class:`TimeWeightedMean` — integrals of piecewise-constant sample
  paths (concurrency, occupancy);
* :class:`TallyStatistic` — Welford mean/variance of i.i.d.-ish tallies
  (per-replication summaries);
* :class:`RatioEstimator` — accepted/offered counters;
* :func:`t_confidence_interval` — small-sample CI across replications
  (t quantiles via scipy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as spstats

from ..exceptions import SimulationError

__all__ = [
    "BatchMeans",
    "TimeWeightedMean",
    "TallyStatistic",
    "RatioEstimator",
    "t_confidence_interval",
    "ConfidenceInterval",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric two-sided confidence interval."""

    estimate: float
    half_width: float
    level: float

    @property
    def low(self) -> float:
        return self.estimate - self.half_width

    @property
    def high(self) -> float:
        return self.estimate + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.6g} ± {self.half_width:.2g} "
            f"({self.level:.0%})"
        )


class TimeWeightedMean:
    """Time average of a piecewise-constant process.

    Call :meth:`update` with the current value *before* each change and
    the time of the change; :meth:`reset` discards the warm-up period.
    """

    def __init__(self) -> None:
        self._integral = 0.0
        self._last_time = 0.0
        self._start_time = 0.0

    def update(self, value: float, now: float) -> None:
        """Account for ``value`` having held since the previous update."""
        if now < self._last_time:
            raise SimulationError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._integral += value * (now - self._last_time)
        self._last_time = now

    def reset(self, now: float) -> None:
        """Forget everything before ``now`` (end of warm-up)."""
        self._integral = 0.0
        self._last_time = now
        self._start_time = now

    def mean(self, now: float | None = None) -> float:
        """The time average over the observed window."""
        end = self._last_time if now is None else now
        span = end - self._start_time
        if span <= 0.0:
            return 0.0
        return self._integral / span


class TallyStatistic:
    """Welford online mean/variance of scalar observations."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


@dataclass
class RatioEstimator:
    """Accepted-over-offered counters with a plug-in ratio estimate."""

    offered: int = 0
    accepted: int = 0

    def observe(self, accepted: bool) -> None:
        self.offered += 1
        if accepted:
            self.accepted += 1

    @property
    def ratio(self) -> float:
        """Acceptance fraction (1.0 when nothing was offered)."""
        if self.offered == 0:
            return 1.0
        return self.accepted / self.offered

    def merge(self, other: "RatioEstimator") -> None:
        self.offered += other.offered
        self.accepted += other.accepted


def t_confidence_interval(
    values: list[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t CI of the mean of independent replications."""
    n = len(values)
    if n == 0:
        raise SimulationError("no replications to summarize")
    mean = math.fsum(values) / n
    if n == 1:
        return ConfidenceInterval(mean, math.inf, level)
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    quantile = float(spstats.t.ppf(0.5 + level / 2.0, df=n - 1))
    half = quantile * math.sqrt(var / n)
    return ConfidenceInterval(mean, half, level)


class BatchMeans:
    """Single-run output analysis by the method of batch means.

    Alternative to independent replications: one long run is cut into
    ``batches`` contiguous batches whose means are treated as
    approximately i.i.d. (valid when the batch length far exceeds the
    autocorrelation time).  Feed observations one at a time; call
    :meth:`interval` at the end.
    """

    def __init__(self, batches: int = 20) -> None:
        if batches < 2:
            raise SimulationError(
                f"batch means needs >= 2 batches, got {batches}"
            )
        self.batches = batches
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def batch_means(self) -> list[float]:
        """The per-batch means (drops the remainder observations)."""
        size = len(self._values) // self.batches
        if size < 1:
            raise SimulationError(
                f"{len(self._values)} observations cannot fill "
                f"{self.batches} batches"
            )
        return [
            math.fsum(self._values[i * size : (i + 1) * size]) / size
            for i in range(self.batches)
        ]

    def interval(self, level: float = 0.95) -> ConfidenceInterval:
        """CI of the long-run mean from the batch means."""
        return t_confidence_interval(self.batch_means(), level)

    def lag1_autocorrelation(self) -> float:
        """Lag-1 autocorrelation of the batch means.

        A diagnostic: values near zero indicate the batches are long
        enough to be treated as independent; large positive values mean
        the CI below is optimistic — use more/longer batches.
        """
        means = self.batch_means()
        n = len(means)
        center = math.fsum(means) / n
        var = math.fsum((m - center) ** 2 for m in means)
        if var == 0.0:
            return 0.0
        cov = math.fsum(
            (means[i] - center) * (means[i + 1] - center)
            for i in range(n - 1)
        )
        return cov / var
