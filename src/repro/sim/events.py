"""Event queue for the discrete-event engine.

A thin wrapper over :mod:`heapq` with **lazy invalidation**: events
carry a version token, and stale events (whose token no longer matches
the source's current version) are skipped on pop.  This is how the
simulator handles state-dependent (BPP) arrival rates — when ``k_r``
changes, the pending class-``r`` arrival is invalidated and a fresh one
drawn at the new rate, which is statistically exact because the
conditional inter-request time is exponential (memoryless) given the
state.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue", "ARRIVAL", "DEPARTURE", "FAILURE", "REPAIR"]

#: Event kinds used by the crossbar simulator.
ARRIVAL = "arrival"
DEPARTURE = "departure"
#: Fault-injection kinds (see :mod:`repro.robust.faults`): a port dies,
#: clearing its in-flight connections, or comes back from repair.
FAILURE = "failure"
REPAIR = "repair"


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled occurrence.

    Ordering is by time, then by insertion sequence (FIFO tie-break) —
    the payload never participates in comparisons.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    version: int = field(compare=False, default=0)


class EventQueue:
    """Min-heap of :class:`Event` with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self, time: float, kind: str, payload: Any = None, version: int = 0
    ) -> Event:
        """Schedule an event; returns it (useful for cancellation tokens)."""
        event = Event(
            time=time, seq=next(self._counter), kind=kind,
            payload=payload, version=version,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest event (``inf`` when empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0].time
