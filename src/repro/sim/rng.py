"""Reproducible random-number streams for the simulator.

Each stochastic purpose (class-``r`` arrivals, class-``r`` service
times, port selection) gets its own :class:`numpy.random.Generator`
spawned from one root :class:`numpy.random.SeedSequence`.  Separate
streams keep experiments reproducible under common random numbers:
changing, say, the service distribution of one class does not perturb
the arrival pattern of another.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, reproducible random generators."""

    def __init__(self, seed: int | None = None, n_classes: int = 1) -> None:
        self._root = np.random.SeedSequence(seed)
        # Spawning is prefix-stable: asking for one extra child (the
        # fault stream) leaves the arrival/service/port streams of
        # existing experiments byte-identical.
        children = self._root.spawn(2 * n_classes + 2)
        self.arrivals = [
            np.random.default_rng(children[i]) for i in range(n_classes)
        ]
        self.services = [
            np.random.default_rng(children[n_classes + i])
            for i in range(n_classes)
        ]
        self.ports = np.random.default_rng(children[2 * n_classes])
        #: Stream for port failure/repair processes (fault injection).
        self.faults = np.random.default_rng(children[2 * n_classes + 1])

    def exponential(self, r: int, rate: float) -> float:
        """Exponential inter-arrival sample for class ``r``.

        ``rate <= 0`` means "never": returns ``inf``.
        """
        if rate <= 0.0:
            return float("inf")
        return float(self.arrivals[r].exponential(1.0 / rate))

    def choose_ports(self, n: int, a: int) -> np.ndarray:
        """``a`` distinct port indices uniformly from ``0..n-1``."""
        if a == 1:
            return np.array([self.ports.integers(0, n)])
        return self.ports.choice(n, size=a, replace=False)

    def choose_from(self, pool: np.ndarray, a: int) -> np.ndarray:
        """``a`` distinct indices uniformly from an explicit pool.

        Used when some ports are failed: the pool holds the live port
        indices.  The caller guarantees ``len(pool) >= a``.
        """
        if a == 1:
            return pool[[self.ports.integers(0, len(pool))]]
        return self.ports.choice(pool, size=a, replace=False)

    def fault_time(self, mean: float) -> float:
        """Exponential up/down duration from the fault stream."""
        return float(self.faults.exponential(mean))
