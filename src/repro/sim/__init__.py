"""Discrete-event simulation of the asynchronous crossbar.

Implements the paper's future-work item "comparing our analytical
results with simulation" (Section 8): a faithful event-driven simulator
of the unbuffered asynchronous crossbar with state-dependent (BPP)
arrivals, pluggable holding-time distributions (to exercise the
insensitivity property), replication-based confidence intervals, and a
hot-spot extension.
"""

from .crossbar import (
    AsynchronousCrossbarSimulator,
    ClassRecord,
    SimulationRecord,
)
from .distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormalService,
    ParetoService,
    ServiceDistribution,
    UniformService,
    from_name,
)
from .hotspot import hot_spot_weights, run_hot_spot
from .mmpp import (
    Mmpp2,
    MmppCrossbarSimulator,
    bpp_surrogate_class,
    fit_bpp_to_mmpp,
    infinite_server_moments,
)
from .rng import RandomStreams
from .runner import (
    ClassSummary,
    SimulationSummary,
    compare_with_analysis,
    relative_error,
    run_replications,
    run_until_precision,
)
from .stats import (
    BatchMeans,
    ConfidenceInterval,
    RatioEstimator,
    TallyStatistic,
    TimeWeightedMean,
    t_confidence_interval,
)

__all__ = [
    "AsynchronousCrossbarSimulator",
    "BatchMeans",
    "ClassRecord",
    "ClassSummary",
    "ConfidenceInterval",
    "Deterministic",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "LogNormalService",
    "Mmpp2",
    "MmppCrossbarSimulator",
    "ParetoService",
    "RandomStreams",
    "RatioEstimator",
    "ServiceDistribution",
    "SimulationRecord",
    "SimulationSummary",
    "TallyStatistic",
    "TimeWeightedMean",
    "UniformService",
    "bpp_surrogate_class",
    "compare_with_analysis",
    "fit_bpp_to_mmpp",
    "infinite_server_moments",
    "from_name",
    "hot_spot_weights",
    "relative_error",
    "run_hot_spot",
    "run_replications",
    "run_until_precision",
    "t_confidence_interval",
]
