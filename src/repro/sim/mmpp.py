"""MMPP traffic and the quality of the paper's BPP approximation.

The paper's modeling premise (Section 1, citing Delbrouck and
Wilkinson) is that *real* bursty traffic is well-approximated by the
BPP family through its first two moments.  This module tests that
premise end to end:

1. :class:`Mmpp2` — a two-phase Markov-modulated Poisson process, the
   standard model of genuinely bursty arrivals (the process the BPP
   family is supposed to stand in for);
2. :func:`infinite_server_moments` — the exact mean and peakedness of
   an M/M/inf queue fed by the MMPP (computed from the phase-occupancy
   CTMC, no approximation);
3. :func:`fit_bpp_to_mmpp` — the moment-matched BPP surrogate
   (Wilkinson/Delbrouck style);
4. :class:`MmppCrossbarSimulator` — the crossbar driven by *actual*
   MMPP arrivals;

so the benchmark can ask: *does the analytical BPP crossbar predict
the blocking of the MMPP-driven crossbar better than a Poisson model
with the same mean?*  (It does — see ``benchmarks/bench_mmpp.py``.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass, fit_bpp_from_moments
from ..exceptions import ConfigurationError, SimulationError
from .events import DEPARTURE, EventQueue
from .rng import RandomStreams
from .stats import RatioEstimator, TimeWeightedMean

__all__ = [
    "Mmpp2",
    "infinite_server_moments",
    "fit_bpp_to_mmpp",
    "MmppCrossbarSimulator",
]

_ARRIVAL = "arrival"
_SWITCH = "switch"


@dataclass(frozen=True)
class Mmpp2:
    """Two-phase MMPP: Poisson rate ``rate1`` or ``rate2``, switching
    ``1 -> 2`` at rate ``r12`` and ``2 -> 1`` at rate ``r21``."""

    rate1: float
    rate2: float
    r12: float
    r21: float

    def __post_init__(self) -> None:
        if self.rate1 < 0 or self.rate2 < 0:
            raise ConfigurationError("MMPP rates must be >= 0")
        if self.r12 <= 0 or self.r21 <= 0:
            raise ConfigurationError("MMPP switching rates must be > 0")

    @property
    def p1(self) -> float:
        """Stationary probability of phase 1."""
        return self.r21 / (self.r12 + self.r21)

    @property
    def mean_rate(self) -> float:
        """Long-run arrival intensity."""
        return self.p1 * self.rate1 + (1.0 - self.p1) * self.rate2

    def scaled(self, factor: float) -> "Mmpp2":
        """Same burstiness structure, arrival rates scaled."""
        return Mmpp2(
            self.rate1 * factor, self.rate2 * factor, self.r12, self.r21
        )


def infinite_server_moments(
    mmpp: Mmpp2, mu: float = 1.0, truncation: int | None = None
) -> tuple[float, float]:
    """Exact ``(mean, peakedness)`` of M(MPP)/M/inf occupancy.

    Solves the (phase x occupancy) CTMC with the occupancy truncated
    far into the tail (``mean + 12 sqrt(mean) + 30`` by default); the
    truncation error is negligible for every parameterization the
    tests use, and is verifiable by raising ``truncation``.
    """
    if mu <= 0:
        raise ConfigurationError(f"mu must be > 0, got {mu}")
    mean_load = mmpp.mean_rate / mu
    if truncation is None:
        truncation = int(mean_load + 12.0 * math.sqrt(mean_load + 1.0)) + 30
    k_max = truncation
    n = 2 * (k_max + 1)

    def idx(phase: int, k: int) -> int:
        return phase * (k_max + 1) + k

    gen = np.zeros((n, n))
    rates = (mmpp.rate1, mmpp.rate2)
    switch = (mmpp.r12, mmpp.r21)
    for phase in (0, 1):
        for k in range(k_max + 1):
            i = idx(phase, k)
            if k < k_max:
                gen[i, idx(phase, k + 1)] += rates[phase]
            if k > 0:
                gen[i, idx(phase, k - 1)] += k * mu
            gen[i, idx(1 - phase, k)] += switch[phase]
    np.fill_diagonal(gen, gen.diagonal() - gen.sum(axis=1))
    system = gen.T.copy()
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    pi = np.linalg.solve(system, rhs)
    pi = np.maximum(pi, 0.0)
    pi /= pi.sum()

    occupancy = np.tile(np.arange(k_max + 1), 2)
    mean = float(occupancy @ pi)
    second = float((occupancy.astype(float) ** 2) @ pi)
    variance = max(0.0, second - mean * mean)
    if mean <= 0.0:
        return 0.0, 1.0
    return mean, variance / mean


def fit_bpp_to_mmpp(
    mmpp: Mmpp2, mu: float = 1.0
) -> tuple[float, float]:
    """Moment-matched BPP ``(alpha, beta)`` for an MMPP arrival stream.

    Matches the exact infinite-server mean and peakedness of the MMPP
    — the Wilkinson/Delbrouck program the paper's Section 1 invokes.
    """
    mean, peakedness = infinite_server_moments(mmpp, mu)
    return fit_bpp_from_moments(mean, peakedness, mu)


class MmppCrossbarSimulator:
    """The asynchronous crossbar driven by genuine MMPP arrivals.

    Single class, ``a = 1``, uniform port selection, exponential
    holding times with rate ``mu`` — the setting of the paper's
    Figures 1-2, but with the *real* bursty process instead of its BPP
    surrogate.  ``mmpp`` gives the total offered request intensity
    (fabric-wide) in each phase.
    """

    def __init__(
        self,
        dims: SwitchDimensions,
        mmpp: Mmpp2,
        mu: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if dims.capacity < 1:
            raise ConfigurationError("switch must be at least 1x1")
        if mu <= 0:
            raise ConfigurationError(f"mu must be > 0, got {mu}")
        self.dims = dims
        self.mmpp = mmpp
        self.mu = mu
        self.rng = RandomStreams(seed=seed, n_classes=2)

    def run(
        self, horizon: float, warmup: float = 0.0
    ) -> tuple[RatioEstimator, float]:
        """Returns (acceptance counters, time-averaged concurrency)."""
        if horizon <= warmup:
            raise ConfigurationError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        dims = self.dims
        in_busy = np.zeros(dims.n1, dtype=bool)
        out_busy = np.zeros(dims.n2, dtype=bool)
        k = 0
        phase = 0 if self.rng.arrivals[1].random() < self.mmpp.p1 else 1
        rates = (self.mmpp.rate1, self.mmpp.rate2)
        switches = (self.mmpp.r12, self.mmpp.r21)

        queue = EventQueue()
        arrival_version = 0
        ratio = RatioEstimator()
        conc = TimeWeightedMean()
        connections: dict[int, tuple[int, int]] = {}
        next_id = 0
        warmed = warmup == 0.0

        def schedule_arrival(now: float) -> None:
            rate = rates[phase]
            if rate > 0.0:
                queue.push(
                    now + self.rng.exponential(0, rate), _ARRIVAL,
                    version=arrival_version,
                )

        def schedule_switch(now: float) -> None:
            queue.push(
                now + self.rng.exponential(1, switches[phase]), _SWITCH,
                payload=phase,
            )

        schedule_arrival(0.0)
        schedule_switch(0.0)

        while queue:
            event = queue.pop()
            if event.time > horizon:
                break
            now = event.time
            if not warmed and now >= warmup:
                conc.update(k, warmup)
                conc.reset(warmup)
                ratio = RatioEstimator()
                warmed = True
            if event.kind == _SWITCH:
                if event.payload != phase:
                    continue  # stale switch from a previous phase
                phase = 1 - phase
                arrival_version += 1
                schedule_arrival(now)
                schedule_switch(now)
            elif event.kind == _ARRIVAL:
                if event.version != arrival_version:
                    continue
                inp = int(self.rng.ports.integers(0, dims.n1))
                outp = int(self.rng.ports.integers(0, dims.n2))
                free = not (in_busy[inp] or out_busy[outp])
                ratio.observe(free)
                if free:
                    conc.update(k, now)
                    in_busy[inp] = True
                    out_busy[outp] = True
                    k += 1
                    connections[next_id] = (inp, outp)
                    hold = float(
                        self.rng.services[0].exponential(1.0 / self.mu)
                    )
                    queue.push(now + hold, DEPARTURE, payload=next_id)
                    next_id += 1
                schedule_arrival(now)
            elif event.kind == DEPARTURE:
                pair = connections.pop(event.payload, None)
                if pair is None:
                    raise SimulationError("departure for unknown connection")
                conc.update(k, now)
                in_busy[pair[0]] = False
                out_busy[pair[1]] = False
                k -= 1
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event {event.kind!r}")

        conc.update(k, horizon if warmed else max(warmup, 0.0))
        return ratio, conc.mean(horizon)


def bpp_surrogate_class(
    dims: SwitchDimensions, mmpp: Mmpp2, mu: float = 1.0
) -> TrafficClass:
    """The analytical stand-in for an MMPP-driven crossbar.

    The MMPP drives the fabric with total intensity ``Lambda_phase``;
    the BPP crossbar's offered stream in the empty state is
    ``alpha N1 N2``.  We match the *infinite-server* occupancy moments
    of the total stream, then spread ``alpha`` (and ``beta``) per pair.
    """
    alpha_total, beta = fit_bpp_to_mmpp(mmpp, mu)
    pairs = dims.n1 * dims.n2
    return TrafficClass(
        alpha=alpha_total / pairs, beta=beta / pairs, mu=mu, name="bpp-fit"
    )
