"""Hot-spot (non-uniform output) traffic studies — simulation only.

The paper assumes a uniform traffic pattern; its companion work
(Pinsky & Stirpe, ICPP 1991, ref. [28]) analyzes *hot spots*, where one
output attracts a disproportionate share of requests.  This module
reproduces that setting on top of the simulator: output selection uses
a weighted distribution in which a designated hot output is ``factor``
times more likely than each of the other outputs.

The main empirical facts this exposes (exercised in tests and the
``examples/peakedness_study.py`` script):

* blocking rises with the hot-spot factor at fixed total load, because
  contention concentrates on one output column;
* the uniform case (``factor = 1``) recovers the paper's analytical
  model exactly — a built-in regression anchor.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError
from .distributions import ServiceDistribution
from .runner import SimulationSummary, run_replications

__all__ = ["hot_spot_weights", "run_hot_spot"]


def hot_spot_weights(n2: int, hot_output: int, factor: float) -> np.ndarray:
    """Selection weights with one output ``factor`` x more popular.

    ``factor = 1`` is the uniform pattern; ``factor = n2`` means the hot
    output draws as much traffic as all others combined (for large
    ``n2`` roughly).
    """
    if not 0 <= hot_output < n2:
        raise ConfigurationError(
            f"hot_output {hot_output} outside [0, {n2})"
        )
    if factor < 1.0:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    weights = np.ones(n2)
    weights[hot_output] = factor
    return weights / weights.sum()


def run_hot_spot(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    factor: float,
    hot_output: int = 0,
    horizon: float = 5_000.0,
    warmup: float = 500.0,
    replications: int = 5,
    seed: int = 0,
    services: Sequence[ServiceDistribution] | None = None,
) -> SimulationSummary:
    """Replicated hot-spot simulation at the given skew factor."""
    weights = hot_spot_weights(dims.n2, hot_output, factor)
    return run_replications(
        dims,
        classes,
        horizon=horizon,
        warmup=warmup,
        replications=replications,
        seed=seed,
        services=services,
        output_weights=weights,
    )
