"""Service-time (holding-time) distributions.

The paper's model is *insensitive*: the stationary distribution depends
on the holding-time law only through its mean (Section 2, citing
Burman, Lehoczky & Lim).  The simulator therefore supports a family of
distributions, all parameterized by their mean, so the insensitivity
claim can be tested empirically — exponential, deterministic, Erlang,
hyperexponential, uniform, lognormal and (truncated-mean) Pareto cover
squared coefficients of variation from 0 to well above 1.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "ServiceDistribution",
    "Exponential",
    "Deterministic",
    "Erlang",
    "HyperExponential",
    "UniformService",
    "LogNormalService",
    "ParetoService",
    "from_name",
]


class ServiceDistribution(ABC):
    """A positive service-time law with a prescribed mean."""

    mean: float

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one holding time."""

    @property
    @abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation ``Var/Mean^2``."""

    def _check_mean(self, mean: float) -> None:
        if mean <= 0:
            raise InvalidParameterError(f"mean must be > 0, got {mean}")


@dataclass
class Exponential(ServiceDistribution):
    """The paper's baseline: ``Exp(1/mean)``, SCV = 1."""

    mean: float

    def __post_init__(self) -> None:
        self._check_mean(self.mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    @property
    def scv(self) -> float:
        return 1.0


@dataclass
class Deterministic(ServiceDistribution):
    """Constant holding time, SCV = 0 (e.g. fixed-length bursts)."""

    mean: float

    def __post_init__(self) -> None:
        self._check_mean(self.mean)

    def sample(self, rng: np.random.Generator) -> float:
        return self.mean

    @property
    def scv(self) -> float:
        return 0.0


@dataclass
class Erlang(ServiceDistribution):
    """Erlang-``k``: sum of ``k`` exponentials, SCV = 1/k."""

    mean: float
    k: int = 2

    def __post_init__(self) -> None:
        self._check_mean(self.mean)
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self.mean / self.k))

    @property
    def scv(self) -> float:
        return 1.0 / self.k


@dataclass
class HyperExponential(ServiceDistribution):
    """Two-phase hyperexponential with balanced means, SCV > 1.

    Phase 1 (prob ``p``) has mean ``mean/(2p)``, phase 2 mean
    ``mean/(2(1-p))`` — the classic "balanced" H2 fit.
    """

    mean: float
    p: float = 0.1

    def __post_init__(self) -> None:
        self._check_mean(self.mean)
        if not 0.0 < self.p < 1.0:
            raise InvalidParameterError(f"p must be in (0, 1), got {self.p}")

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.p:
            return float(rng.exponential(self.mean / (2.0 * self.p)))
        return float(rng.exponential(self.mean / (2.0 * (1.0 - self.p))))

    @property
    def scv(self) -> float:
        # E[X^2] = p*2*(m/2p)^2 + (1-p)*2*(m/2(1-p))^2
        m = self.mean
        second = (
            self.p * 2.0 * (m / (2.0 * self.p)) ** 2
            + (1.0 - self.p) * 2.0 * (m / (2.0 * (1.0 - self.p))) ** 2
        )
        return second / m**2 - 1.0


@dataclass
class UniformService(ServiceDistribution):
    """Uniform on ``(0, 2*mean)``, SCV = 1/3."""

    mean: float

    def __post_init__(self) -> None:
        self._check_mean(self.mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(0.0, 2.0 * self.mean))

    @property
    def scv(self) -> float:
        return 1.0 / 3.0


@dataclass
class LogNormalService(ServiceDistribution):
    """Lognormal with the given mean and SCV."""

    mean: float
    target_scv: float = 2.0

    def __post_init__(self) -> None:
        self._check_mean(self.mean)
        if self.target_scv <= 0:
            raise InvalidParameterError(
                f"target_scv must be > 0, got {self.target_scv}"
            )
        self._sigma2 = math.log(1.0 + self.target_scv)
        self._mu = math.log(self.mean) - 0.5 * self._sigma2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, math.sqrt(self._sigma2)))

    @property
    def scv(self) -> float:
        return self.target_scv


@dataclass
class ParetoService(ServiceDistribution):
    """Pareto (Lomax) with shape ``alpha > 2`` scaled to the mean.

    Heavy-tailed: stresses the insensitivity claim hardest.
    """

    mean: float
    alpha: float = 2.5

    def __post_init__(self) -> None:
        self._check_mean(self.mean)
        if self.alpha <= 2.0:
            raise InvalidParameterError(
                f"alpha must be > 2 for finite variance, got {self.alpha}"
            )
        self._scale = self.mean * (self.alpha - 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        # Lomax: scale * (U^(-1/alpha) - 1) has mean scale/(alpha-1)
        u = rng.random()
        return float(self._scale * (u ** (-1.0 / self.alpha) - 1.0))

    @property
    def scv(self) -> float:
        a = self.alpha
        return a / (a - 2.0)


_REGISTRY = {
    "exponential": Exponential,
    "deterministic": Deterministic,
    "erlang": Erlang,
    "hyperexponential": HyperExponential,
    "uniform": UniformService,
    "lognormal": LogNormalService,
    "pareto": ParetoService,
}


def from_name(name: str, mean: float, **kwargs) -> ServiceDistribution:
    """Build a distribution by name (see module registry)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown service distribution {name!r}; "
            f"expected one of {sorted(_REGISTRY)}"
        ) from None
    return factory(mean, **kwargs)
