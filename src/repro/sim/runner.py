"""Replicated simulation experiments with confidence intervals.

Runs independent replications of
:class:`~repro.sim.crossbar.AsynchronousCrossbarSimulator`, summarizes
each measure with a Student-t confidence interval, and compares against
the analytical solution — the "compare with simulation" item of the
paper's future work (Section 8).

Long experiments are hardened two ways: a replication that dies with
:class:`~repro.exceptions.SimulationError` is retried with a fresh
deterministic seed (up to ``max_retries`` times), and an optional
JSONL ``checkpoint`` file records every finished replication so an
interrupted sweep resumes where it stopped instead of starting over.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.convolution import solve_convolution
from ..core.measures import PerformanceSolution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, SimulationError
from ..logging import get_logger, kv
from ..robust.faults import FailureMask, FaultModel
from .crossbar import AsynchronousCrossbarSimulator, ClassRecord, SimulationRecord
from .distributions import ServiceDistribution
from .stats import ConfidenceInterval, t_confidence_interval

logger = get_logger("sim.runner")

#: Seed stride between retry attempts of one replication — far larger
#: than any realistic replication count, so retry seeds never collide
#: with the base seeds ``seed + i`` of other replications.
_RETRY_SEED_STRIDE = 1_000_003

__all__ = [
    "ClassSummary",
    "SimulationSummary",
    "compare_with_analysis",
    "relative_error",
    "run_replications",
    "run_until_precision",
]


@dataclass(frozen=True)
class ClassSummary:
    """Replication-level summary for one traffic class."""

    name: str
    acceptance: ConfidenceInterval
    concurrency: ConfidenceInterval
    total_offered: int
    total_accepted: int


@dataclass(frozen=True)
class SimulationSummary:
    """Replication-level summary of a whole experiment."""

    dims: SwitchDimensions
    classes: tuple[ClassSummary, ...]
    occupancy: ConfidenceInterval
    replications: int
    records: tuple[SimulationRecord, ...]


def _record_to_json(record: SimulationRecord) -> dict:
    """JSON-serializable form of one replication's record."""
    payload = asdict(record)
    payload["dims"] = {"n1": record.dims.n1, "n2": record.dims.n2}
    return payload


def _record_from_json(payload: dict) -> SimulationRecord:
    """Inverse of :func:`_record_to_json`."""
    data = dict(payload)
    data["dims"] = SwitchDimensions(**data["dims"])
    data["classes"] = tuple(ClassRecord(**c) for c in data["classes"])
    return SimulationRecord(**data)


def _load_checkpoint(
    path: Path, dims: SwitchDimensions, horizon: float, warmup: float
) -> dict[int, SimulationRecord]:
    """Completed replications from a JSONL checkpoint file."""
    completed: dict[int, SimulationRecord] = {}
    if not path.exists():
        return completed
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        record = _record_from_json(entry["record"])
        if (
            record.dims != dims
            or record.horizon != horizon
            or record.warmup != warmup
        ):
            raise ConfigurationError(
                f"checkpoint {path} was written by a different experiment "
                f"({record.dims}, horizon={record.horizon}, "
                f"warmup={record.warmup})"
            )
        completed[int(entry["replication"])] = record
    return completed


def run_replications(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    horizon: float,
    warmup: float = 0.0,
    replications: int = 10,
    seed: int = 0,
    services: Sequence[ServiceDistribution] | None = None,
    level: float = 0.95,
    output_weights: Sequence[float] | None = None,
    admission_thresholds: Sequence[int] | None = None,
    faults: FaultModel | FailureMask | None = None,
    routing: str = "reroute",
    max_retries: int = 2,
    checkpoint: str | Path | None = None,
) -> SimulationSummary:
    """Run ``replications`` independent simulations and summarize.

    Each replication gets seed ``seed + i`` so the whole experiment is
    reproducible from one integer.  A replication that raises
    :class:`SimulationError` is retried up to ``max_retries`` times
    with a fresh deterministic seed (``seed + i + j * 1_000_003`` on
    attempt ``j``); only when every attempt fails does the error
    propagate.  With ``checkpoint`` set, each finished replication is
    appended to that JSONL file and already-recorded replications are
    skipped on re-run, so an interrupted experiment resumes cheaply.
    """
    if replications < 1:
        raise ConfigurationError(
            f"replications must be >= 1, got {replications}"
        )
    if max_retries < 0:
        raise ConfigurationError(
            f"max_retries must be >= 0, got {max_retries}"
        )
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed = (
        _load_checkpoint(checkpoint_path, dims, horizon, warmup)
        if checkpoint_path is not None
        else {}
    )
    records = []
    for i in range(replications):
        if i in completed:
            records.append(completed[i])
            continue
        record = None
        for attempt in range(max_retries + 1):
            run_seed = seed + i + attempt * _RETRY_SEED_STRIDE
            sim = AsynchronousCrossbarSimulator(
                dims,
                classes,
                services=services,
                seed=run_seed,
                output_weights=output_weights,
                admission_thresholds=admission_thresholds,
                faults=faults,
                routing=routing,
            )
            try:
                record = sim.run(horizon=horizon, warmup=warmup)
                break
            except SimulationError as exc:
                logger.warning(
                    "replication failed %s",
                    kv(replication=i, attempt=attempt, seed=run_seed,
                       error=str(exc)[:120]),
                )
                if attempt == max_retries:
                    raise
        records.append(record)
        if checkpoint_path is not None:
            with checkpoint_path.open("a") as fh:
                fh.write(
                    json.dumps(
                        {"replication": i, "record": _record_to_json(record)}
                    )
                    + "\n"
                )

    summaries = []
    for r, cls in enumerate(classes):
        acceptance = t_confidence_interval(
            [rec.classes[r].acceptance_ratio for rec in records], level
        )
        concurrency = t_confidence_interval(
            [rec.classes[r].mean_concurrency for rec in records], level
        )
        summaries.append(
            ClassSummary(
                name=cls.name or f"class-{r}",
                acceptance=acceptance,
                concurrency=concurrency,
                total_offered=sum(rec.classes[r].offered for rec in records),
                total_accepted=sum(
                    rec.classes[r].accepted for rec in records
                ),
            )
        )
    occupancy = t_confidence_interval(
        [rec.mean_occupancy for rec in records], level
    )
    return SimulationSummary(
        dims=dims,
        classes=tuple(summaries),
        occupancy=occupancy,
        replications=replications,
        records=tuple(records),
    )


def run_until_precision(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    target_half_width: float,
    horizon: float,
    warmup: float = 0.0,
    min_replications: int = 4,
    max_replications: int = 200,
    seed: int = 0,
    services: Sequence[ServiceDistribution] | None = None,
    level: float = 0.95,
    measure: str = "acceptance",
    r: int = 0,
) -> SimulationSummary:
    """Replicate until a measure's CI half-width meets the target.

    Sequential procedure: run ``min_replications``, then add one
    replication at a time until the class-``r`` ``measure``
    (``"acceptance"`` or ``"concurrency"``) has a CI half-width at or
    below ``target_half_width``, or ``max_replications`` is reached
    (then raises, so silent under-precision cannot escape).
    """
    if measure not in ("acceptance", "concurrency"):
        raise ConfigurationError(
            f"measure must be 'acceptance' or 'concurrency', got {measure!r}"
        )
    if target_half_width <= 0:
        raise ConfigurationError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if min_replications < 2 or max_replications < min_replications:
        raise ConfigurationError(
            f"need max_replications >= min_replications >= 2, got "
            f"{min_replications}/{max_replications}"
        )
    values: list[float] = []
    records = []
    n = 0
    while n < max_replications:
        sim = AsynchronousCrossbarSimulator(
            dims, classes, services=services, seed=seed + n
        )
        record = sim.run(horizon=horizon, warmup=warmup)
        records.append(record)
        if measure == "acceptance":
            values.append(record.classes[r].acceptance_ratio)
        else:
            values.append(record.classes[r].mean_concurrency)
        n += 1
        if n >= min_replications:
            ci = t_confidence_interval(values, level)
            if ci.half_width <= target_half_width:
                break
    else:
        ci = t_confidence_interval(values, level)
        raise ConfigurationError(
            f"{max_replications} replications reached with half-width "
            f"{ci.half_width:.3g} > target {target_half_width:.3g}; "
            f"raise the horizon or the budget"
        )

    summaries = []
    for idx, cls in enumerate(classes):
        acceptance = t_confidence_interval(
            [rec.classes[idx].acceptance_ratio for rec in records], level
        )
        concurrency = t_confidence_interval(
            [rec.classes[idx].mean_concurrency for rec in records], level
        )
        summaries.append(
            ClassSummary(
                name=cls.name or f"class-{idx}",
                acceptance=acceptance,
                concurrency=concurrency,
                total_offered=sum(
                    rec.classes[idx].offered for rec in records
                ),
                total_accepted=sum(
                    rec.classes[idx].accepted for rec in records
                ),
            )
        )
    occupancy = t_confidence_interval(
        [rec.mean_occupancy for rec in records], level
    )
    return SimulationSummary(
        dims=dims,
        classes=tuple(summaries),
        occupancy=occupancy,
        replications=n,
        records=tuple(records),
    )


def compare_with_analysis(
    summary: SimulationSummary,
    classes: Sequence[TrafficClass],
    solution: PerformanceSolution | None = None,
) -> dict:
    """Side-by-side simulated vs analytical measures.

    Simulated acceptance ratios are compared with the analytical *call*
    acceptance (what arrivals see — equals ``B_r`` for Poisson classes,
    the rate-weighted form for BPP classes); concurrencies with
    ``E_r``.  Each entry reports whether the analytical value lies in
    the simulation CI.
    """
    if solution is None:
        solution = solve_convolution(summary.dims, classes)
    per_class = []
    for r, cls in enumerate(classes):
        analytical_acc = solution.call_acceptance(r)
        analytical_e = solution.concurrency(r)
        cs = summary.classes[r]
        per_class.append(
            {
                "name": cs.name,
                "acceptance_sim": cs.acceptance,
                "acceptance_analytical": analytical_acc,
                "acceptance_covered": cs.acceptance.contains(analytical_acc),
                "concurrency_sim": cs.concurrency,
                "concurrency_analytical": analytical_e,
                "concurrency_covered": cs.concurrency.contains(analytical_e),
            }
        )
    analytical_occ = solution.mean_occupancy()
    return {
        "classes": per_class,
        "occupancy_sim": summary.occupancy,
        "occupancy_analytical": analytical_occ,
        "occupancy_covered": summary.occupancy.contains(analytical_occ),
    }


def relative_error(
    summary: SimulationSummary,
    classes: Sequence[TrafficClass],
    solution: PerformanceSolution | None = None,
) -> float:
    """Worst relative error of simulated point estimates vs analysis.

    A convenience for tests and quick convergence checks: ignores the
    CIs and just compares point estimates (acceptance, concurrency,
    occupancy).
    """
    if solution is None:
        solution = solve_convolution(summary.dims, classes)
    worst = 0.0
    for r in range(len(classes)):
        ana = solution.call_acceptance(r)
        sim = summary.classes[r].acceptance.estimate
        worst = max(worst, abs(sim - ana) / max(abs(ana), 1e-12))
        ana = solution.concurrency(r)
        sim = summary.classes[r].concurrency.estimate
        if not math.isclose(ana, 0.0, abs_tol=1e-12):
            worst = max(worst, abs(sim - ana) / abs(ana))
    return worst
