"""Discrete-event simulator of the asynchronous, unbuffered crossbar.

This is the paper's stated future work ("comparing our analytical
results with simulation", Section 8), implemented faithfully to the
model semantics of Section 2:

* class-``r`` requests arrive as a Poisson stream whose intensity in
  state ``k`` is ``lambda_r(k_r) * P(N1, a_r) * P(N2, a_r)`` — the BPP
  per-tuple rate times the number of ordered (inputs, outputs) tuples;
* each request addresses ``a_r`` distinct inputs and ``a_r`` distinct
  outputs drawn uniformly (or non-uniformly, for hot-spot studies);
* the request is accepted iff every named port is idle — the crossbar
  is unbuffered, so **blocked requests are cleared**;
* an accepted connection holds its ports for a service time drawn from
  any distribution with mean ``1/mu_r`` (insensitivity test hook).

State-dependent rates are handled by lazy invalidation: when ``k_r``
changes, the pending class-``r`` arrival event is abandoned and a fresh
exponential drawn at the new rate — exact because the conditional
inter-arrival time is memoryless given the state.

Fault injection (see :mod:`repro.robust.faults`): ports can fail and
be repaired, statically (a :class:`~repro.robust.faults.FailureMask`),
stochastically (exponential MTBF/MTTR per port) or on a deterministic
schedule.  A failing port **clears every connection holding it** — the
optical analogue of blocked-calls-cleared — and carries nothing until
repaired.  Offered demand is conserved (the per-class request
intensity keeps its healthy-switch tuple multiplier); the ``routing``
parameter picks where that demand aims:

* ``"reroute"`` (default): sources address live ports only — requests
  are blocked outright when fewer than ``a_r`` live ports remain on
  either side;
* ``"oblivious"``: sources keep addressing all ports uniformly and any
  request naming a dead port is cleared.

Both semantics match :mod:`repro.robust.degraded` analytically, which
is what the degraded-mode cross-validation tests rely on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.state import SwitchDimensions, permutation
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, SimulationError
from ..logging import get_logger, kv
from ..robust.faults import FAIL, INPUT, OUTPUT, FailureMask, FaultModel
from .distributions import Exponential, ServiceDistribution
from .events import ARRIVAL, DEPARTURE, FAILURE, REPAIR, EventQueue
from .rng import RandomStreams
from .stats import RatioEstimator, TimeWeightedMean

logger = get_logger("sim.crossbar")

_ROUTINGS = ("reroute", "oblivious")

__all__ = ["AsynchronousCrossbarSimulator", "ClassRecord", "SimulationRecord"]


@dataclass(frozen=True)
class ClassRecord:
    """Per-class output of one simulation run."""

    name: str
    offered: int
    accepted: int
    acceptance_ratio: float
    mean_concurrency: float
    #: Accepted connections torn down mid-service by a port failure
    #: (counted over the whole run, not just the measurement window).
    interrupted: int = 0

    @property
    def blocking_ratio(self) -> float:
        """Fraction of offered requests cleared."""
        return 1.0 - self.acceptance_ratio


@dataclass(frozen=True)
class SimulationRecord:
    """Output of one simulation run (post-warm-up window)."""

    dims: SwitchDimensions
    classes: tuple[ClassRecord, ...]
    mean_occupancy: float
    utilization: float
    horizon: float
    warmup: float
    events: int
    #: Fault-injection diagnostics: failure/repair events applied over
    #: the whole run, and time-weighted mean live port counts over the
    #: measurement window (equal to N1/N2 in a healthy run).
    failures: int = 0
    repairs: int = 0
    mean_live_inputs: float = float("nan")
    mean_live_outputs: float = float("nan")

    def class_record(self, r: int) -> ClassRecord:
        return self.classes[r]


class AsynchronousCrossbarSimulator:
    """One simulated ``N1 x N2`` crossbar with a fixed traffic mix.

    Parameters
    ----------
    dims, classes:
        Switch and traffic mix — same objects the analytical model
        uses, so simulated and analytical experiments share configs.
    services:
        Optional per-class holding-time distributions.  Default:
        ``Exponential(1/mu_r)`` (the paper's baseline).  Any
        :class:`~repro.sim.distributions.ServiceDistribution` with the
        same mean should leave stationary measures unchanged
        (insensitivity).
    seed:
        Root seed for all random streams.
    output_weights:
        Optional non-uniform output-selection probabilities (length
        ``N2``) for hot-spot studies; inputs stay uniform.  The uniform
        default matches the paper's traffic assumption.
    admission_thresholds:
        Optional per-class occupancy caps (see
        :mod:`repro.extensions.admission`): a class-``r`` request is
        rejected — even if its ports are free — when accepting it would
        push the total occupancy above ``admission_thresholds[r]``.
    faults:
        Optional :class:`~repro.robust.faults.FaultModel` (a bare
        :class:`~repro.robust.faults.FailureMask` is promoted to a
        static model).  Ports named by the model fail and are repaired
        during the run; failing ports clear their in-flight
        connections.
    routing:
        How sources react to failures: ``"reroute"`` (they address
        live ports only) or ``"oblivious"`` (they keep addressing all
        ports; requests naming a dead port are cleared).  Irrelevant
        without ``faults``.
    """

    def __init__(
        self,
        dims: SwitchDimensions,
        classes: Sequence[TrafficClass],
        services: Sequence[ServiceDistribution] | None = None,
        seed: int | None = None,
        output_weights: Sequence[float] | None = None,
        admission_thresholds: Sequence[int] | None = None,
        faults: FaultModel | FailureMask | None = None,
        routing: str = "reroute",
    ) -> None:
        if not classes:
            raise ConfigurationError("at least one traffic class is required")
        self.dims = dims
        self.classes = tuple(classes)
        for cls in self.classes:
            if cls.a <= dims.capacity:
                cls.validate_for(dims.n1, dims.n2)
        if services is None:
            services = [Exponential(1.0 / c.mu) for c in self.classes]
        if len(services) != len(self.classes):
            raise ConfigurationError(
                f"{len(services)} service distributions for "
                f"{len(self.classes)} classes"
            )
        for cls, svc in zip(self.classes, services):
            if abs(svc.mean - 1.0 / cls.mu) > 1e-9 * svc.mean:
                raise ConfigurationError(
                    f"service mean {svc.mean} != 1/mu = {1.0 / cls.mu} for "
                    f"class {cls.name or '?'}"
                )
        self.services = tuple(services)
        self.rng = RandomStreams(seed=seed, n_classes=len(self.classes))
        if output_weights is not None:
            weights = np.asarray(output_weights, dtype=float)
            if weights.shape != (dims.n2,):
                raise ConfigurationError(
                    f"output_weights must have length N2={dims.n2}"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ConfigurationError(
                    "output_weights must be non-negative and sum > 0"
                )
            self._output_weights = weights / weights.sum()
        else:
            self._output_weights = None
        if admission_thresholds is not None:
            thresholds = list(admission_thresholds)
            if len(thresholds) != len(self.classes):
                raise ConfigurationError(
                    f"{len(thresholds)} admission thresholds for "
                    f"{len(self.classes)} classes"
                )
            for t in thresholds:
                if t < 0 or t > dims.capacity:
                    raise ConfigurationError(
                        f"admission threshold {t} outside "
                        f"[0, {dims.capacity}]"
                    )
            self._admission = tuple(thresholds)
        else:
            self._admission = None
        if routing not in _ROUTINGS:
            raise ConfigurationError(
                f"routing must be one of {_ROUTINGS}, got {routing!r}"
            )
        self.routing = routing
        if isinstance(faults, FailureMask):
            faults = FaultModel.static(faults)
        if faults is not None:
            faults.validate_for(dims)
        self.faults = faults
        # Number of ordered (inputs, outputs) tuples per class — the
        # arrival-rate multiplier of the model semantics.  Deliberately
        # computed on the FULL switch even under faults: offered demand
        # is conserved, failures move acceptance, not intensity.
        self._tuples = [
            permutation(dims.n1, c.a) * permutation(dims.n2, c.a)
            for c in self.classes
        ]

    # ------------------------------------------------------------------

    def _offered_rate(self, r: int, k_r: int) -> float:
        """Total class-``r`` request intensity in the current state."""
        return self.classes[r].rate(k_r) * self._tuples[r]

    def run(
        self,
        horizon: float,
        warmup: float = 0.0,
        max_events: int | None = None,
        check_invariants: bool = False,
    ) -> SimulationRecord:
        """Simulate ``[0, horizon]``; statistics collected after ``warmup``.

        ``check_invariants=True`` validates the fabric state after
        every event (busy-port counts consistent with per-class
        concurrencies and the live-connection table) — O(N) per event,
        intended for tests and debugging.
        """
        if horizon <= warmup:
            raise ConfigurationError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        dims = self.dims
        n_classes = len(self.classes)

        input_busy = np.zeros(dims.n1, dtype=bool)
        output_busy = np.zeros(dims.n2, dtype=bool)
        k = [0] * n_classes
        connections: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}
        next_conn_id = 0

        queue = EventQueue()
        arrival_version = [0] * n_classes
        ratios = [RatioEstimator() for _ in range(n_classes)]
        conc = [TimeWeightedMean() for _ in range(n_classes)]
        occupancy = TimeWeightedMean()
        warmed_up = warmup == 0.0
        events_processed = 0

        faults = self.faults
        input_failed = np.zeros(dims.n1, dtype=bool)
        output_failed = np.zeros(dims.n2, dtype=bool)
        cleared: set[int] = set()  # connections torn down by failures
        interrupted = [0] * n_classes
        failures = repairs = 0
        live_in_tw = TimeWeightedMean()
        live_out_tw = TimeWeightedMean()

        def advance_live(now: float) -> None:
            live_in_tw.update(dims.n1 - int(input_failed.sum()), now)
            live_out_tw.update(dims.n2 - int(output_failed.sum()), now)

        def schedule_arrival(r: int, now: float) -> None:
            rate = self._offered_rate(r, k[r])
            gap = self.rng.exponential(r, rate)
            if gap != float("inf"):
                queue.push(
                    now + gap, ARRIVAL, payload=r,
                    version=arrival_version[r],
                )

        def advance_stats(now: float) -> None:
            for r in range(n_classes):
                conc[r].update(k[r], now)
            used = sum(k[r] * self.classes[r].a for r in range(n_classes))
            occupancy.update(used, now)

        def verify_state() -> None:
            used = sum(k[r] * self.classes[r].a for r in range(n_classes))
            if int(input_busy.sum()) != used:
                raise SimulationError(
                    f"busy-input count {int(input_busy.sum())} != "
                    f"occupied pairs {used}"
                )
            if int(output_busy.sum()) != used:
                raise SimulationError(
                    f"busy-output count {int(output_busy.sum())} != "
                    f"occupied pairs {used}"
                )
            if len(connections) != sum(k):
                raise SimulationError(
                    f"{len(connections)} live connections but "
                    f"concurrencies sum to {sum(k)}"
                )
            if input_busy[input_failed].any():
                raise SimulationError("failed input port marked busy")
            if output_busy[output_failed].any():
                raise SimulationError("failed output port marked busy")

        if faults is not None:
            for p in faults.initial_mask.inputs:
                input_failed[p] = True
            for p in faults.initial_mask.outputs:
                output_failed[p] = True
            for side, n_ports, failed, process in (
                (INPUT, dims.n1, input_failed, faults.input_process),
                (OUTPUT, dims.n2, output_failed, faults.output_process),
            ):
                if process is None:
                    continue
                for p in range(n_ports):
                    # Initially-dead ports start mid-repair.
                    if failed[p]:
                        delay, kind = process.mttr, REPAIR
                    else:
                        delay, kind = process.mtbf, FAILURE
                    queue.push(
                        self.rng.fault_time(delay), kind, payload=(side, p)
                    )
            for fault in faults.schedule:
                queue.push(
                    fault.time,
                    FAILURE if fault.kind == FAIL else REPAIR,
                    payload=(fault.side, fault.port),
                )

        for r in range(n_classes):
            schedule_arrival(r, 0.0)

        now = 0.0
        while queue:
            event = queue.pop()
            if event.time > horizon:
                break
            if (
                event.kind == ARRIVAL
                and event.version != arrival_version[event.payload]
            ):
                continue  # stale: k_r changed since this was drawn
            if event.kind == DEPARTURE and event.payload in cleared:
                cleared.discard(event.payload)
                continue  # connection already torn down by a failure
            now = event.time
            events_processed += 1
            if max_events is not None and events_processed > max_events:
                break
            if not warmed_up and now >= warmup:
                for r in range(n_classes):
                    conc[r].update(k[r], warmup)
                    conc[r].reset(warmup)
                used = sum(
                    k[r] * self.classes[r].a for r in range(n_classes)
                )
                occupancy.update(used, warmup)
                occupancy.reset(warmup)
                advance_live(warmup)
                live_in_tw.reset(warmup)
                live_out_tw.reset(warmup)
                ratios = [RatioEstimator() for _ in range(n_classes)]
                warmed_up = True

            if event.kind == ARRIVAL:
                r = event.payload
                cls = self.classes[r]
                degraded = bool(input_failed.any() or output_failed.any())
                inputs: np.ndarray | None = None
                outputs: np.ndarray | None = None
                if not degraded:
                    # Healthy fast path: byte-identical RNG consumption
                    # to the pre-fault-injection simulator.
                    inputs = self.rng.choose_ports(dims.n1, cls.a)
                    if self._output_weights is None:
                        outputs = self.rng.choose_ports(dims.n2, cls.a)
                    else:
                        outputs = self.rng.ports.choice(
                            dims.n2, size=cls.a, replace=False,
                            p=self._output_weights,
                        )
                elif self.routing == "reroute":
                    live_in = np.flatnonzero(~input_failed)
                    live_out = np.flatnonzero(~output_failed)
                    if len(live_in) >= cls.a and len(live_out) >= cls.a:
                        inputs = self.rng.choose_from(live_in, cls.a)
                        if self._output_weights is None:
                            outputs = self.rng.choose_from(live_out, cls.a)
                        else:
                            w = self._output_weights[live_out]
                            total = w.sum()
                            if total > 0.0:
                                outputs = self.rng.ports.choice(
                                    live_out, size=cls.a, replace=False,
                                    p=w / total,
                                )
                else:  # oblivious: sources have not learned of failures
                    inputs = self.rng.choose_ports(dims.n1, cls.a)
                    if self._output_weights is None:
                        outputs = self.rng.choose_ports(dims.n2, cls.a)
                    else:
                        outputs = self.rng.ports.choice(
                            dims.n2, size=cls.a, replace=False,
                            p=self._output_weights,
                        )
                free = (
                    inputs is not None
                    and outputs is not None
                    and not (
                        input_busy[inputs].any()
                        or output_busy[outputs].any()
                        or input_failed[inputs].any()
                        or output_failed[outputs].any()
                    )
                )
                if free and self._admission is not None:
                    used_now = sum(
                        k[s] * self.classes[s].a for s in range(n_classes)
                    )
                    free = used_now + cls.a <= self._admission[r]
                ratios[r].observe(free)
                if free:
                    advance_stats(now)
                    input_busy[inputs] = True
                    output_busy[outputs] = True
                    k[r] += 1
                    connections[next_conn_id] = (r, inputs, outputs)
                    hold = self.services[r].sample(self.rng.services[r])
                    queue.push(now + hold, DEPARTURE, payload=next_conn_id)
                    next_conn_id += 1
                    arrival_version[r] += 1  # rate changed with k_r
                schedule_arrival(r, now)
            elif event.kind == DEPARTURE:
                conn = connections.pop(event.payload, None)
                if conn is None:
                    raise SimulationError(
                        f"departure for unknown connection {event.payload}"
                    )
                r, inputs, outputs = conn
                advance_stats(now)
                input_busy[inputs] = False
                output_busy[outputs] = False
                k[r] -= 1
                if k[r] < 0:
                    raise SimulationError(f"negative concurrency for class {r}")
                arrival_version[r] += 1
                schedule_arrival(r, now)
            elif event.kind == FAILURE:
                side, port = event.payload
                failed = input_failed if side == INPUT else output_failed
                if not failed[port]:
                    advance_stats(now)
                    advance_live(now)
                    failed[port] = True
                    failures += 1
                    # Blocked-calls-cleared: every connection holding
                    # the dead port is torn down immediately.
                    doomed = [
                        cid
                        for cid, (cr, ins, outs) in connections.items()
                        if port in (ins if side == INPUT else outs)
                    ]
                    for cid in doomed:
                        cr, ins, outs = connections.pop(cid)
                        input_busy[ins] = False
                        output_busy[outs] = False
                        k[cr] -= 1
                        interrupted[cr] += 1
                        cleared.add(cid)
                        arrival_version[cr] += 1
                        schedule_arrival(cr, now)
                    logger.debug(
                        "port failure %s",
                        kv(side=side, port=port, time=now,
                           cleared=len(doomed)),
                    )
                    process = (
                        faults.input_process
                        if side == INPUT
                        else faults.output_process
                    )
                    if process is not None:
                        queue.push(
                            now + self.rng.fault_time(process.mttr),
                            REPAIR, payload=(side, port),
                        )
            elif event.kind == REPAIR:
                side, port = event.payload
                failed = input_failed if side == INPUT else output_failed
                if failed[port]:
                    advance_live(now)
                    failed[port] = False
                    repairs += 1
                    logger.debug(
                        "port repair %s", kv(side=side, port=port, time=now)
                    )
                    process = (
                        faults.input_process
                        if side == INPUT
                        else faults.output_process
                    )
                    if process is not None:
                        queue.push(
                            now + self.rng.fault_time(process.mtbf),
                            FAILURE, payload=(side, port),
                        )
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")
            if check_invariants:
                verify_state()

        # Close the observation window at the horizon.
        end = min(max(now, warmup), horizon)
        close = horizon if warmed_up else end
        for r in range(n_classes):
            conc[r].update(k[r], close)
        used = sum(k[r] * self.classes[r].a for r in range(n_classes))
        occupancy.update(used, close)
        advance_live(close)

        records = tuple(
            ClassRecord(
                name=cls.name or f"class-{r}",
                offered=ratios[r].offered,
                accepted=ratios[r].accepted,
                acceptance_ratio=ratios[r].ratio,
                mean_concurrency=conc[r].mean(horizon),
                interrupted=interrupted[r],
            )
            for r, cls in enumerate(self.classes)
        )
        mean_occ = occupancy.mean(horizon)
        return SimulationRecord(
            dims=dims,
            classes=records,
            mean_occupancy=mean_occ,
            utilization=mean_occ / dims.capacity if dims.capacity else 0.0,
            horizon=horizon,
            warmup=warmup,
            events=events_processed,
            failures=failures,
            repairs=repairs,
            mean_live_inputs=live_in_tw.mean(horizon),
            mean_live_outputs=live_out_tw.mean(horizon),
        )
