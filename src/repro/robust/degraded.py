"""Degraded-mode analysis: product-form measures under port failures.

Because ports are exchangeable in the model, a failure mask only
matters through the *count* of surviving ports: the live sub-switch is
again an ``N1' x N2'`` crossbar and the reversibility argument of the
paper carries over unchanged.  Degraded-mode measures are therefore
recomputed with the same Algorithm 1 machinery on the reduced switch.

Two demand semantics are supported (and implemented identically in the
fault-injected simulator, so the two can be cross-validated):

``"reroute"`` (default)
    Demand is conserved: users re-aim their requests at the surviving
    ports, so the *aggregate* state-dependent intensity
    ``lambda_r(k) P(N1,a_r) P(N2,a_r)`` is unchanged and the per-pair
    parameters scale up by the tuple-count ratio
    ``P(N1,a) P(N2,a) / (P(N1',a) P(N2',a))``.  This is the "same
    users, fewer ports" scenario; per-class blocking can only get
    worse as ports fail (for non-peaky unit-bandwidth traffic — see
    ``docs/robustness.md`` for the exact scope and the counterexamples
    outside it).

``"oblivious"``
    Sources do not learn the failure state: requests still address all
    ``N1 x N2`` ports with the original per-pair rates, and a request
    naming a dead port is cleared on the spot.  The live sub-switch
    then behaves exactly like a reduced crossbar with *unscaled*
    parameters (cleared requests never change the state), and offered
    acceptance picks up the routable-tuple factor
    ``P(N1',a) P(N2',a) / (P(N1,a) P(N2,a))``.

A class that cannot be carried at all on the reduced switch
(``a_r > min(N1', N2')``), or whose rerouted Pascal parameters leave
the admissible BPP region (``beta' >= mu``), is reported *saturated*:
blocking 1, concurrency 0.

:func:`availability_weighted_measures` averages the degraded measures
over the stationary up/down distribution of ports failing
independently with given availabilities (binomial mixture over live
port counts) — the long-run measure a maintained switch delivers.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.state import SwitchDimensions, permutation
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, InvalidParameterError
from ..logging import get_logger, kv
from .faults import FailureMask, PortFailureProcess

__all__ = [
    "AvailabilityWeightedMeasures",
    "DegradedSolution",
    "availability_weighted_measures",
    "rerouted_classes",
    "solve_degraded",
    "validate_degraded_against_simulation",
]

_ROUTINGS = ("reroute", "oblivious")

logger = get_logger("robust.degraded")


def _check_routing(routing: str) -> None:
    if routing not in _ROUTINGS:
        raise ConfigurationError(
            f"routing must be one of {_ROUTINGS}, got {routing!r}"
        )


def _engine_solver(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> object:
    """Default cell solver: Algorithm 1 (log) through the batched engine.

    Availability-weighted analysis evaluates one reduced switch per
    binomial mask cell; many cells (and repeated scenarios, e.g. the
    mask sweep after an availability pass) share degraded dimensions
    and rerouted classes, so memoizing here converts the quadratic cell
    grid into mostly cache hits.
    """
    from ..api import SolveRequest
    from ..engine import get_default_engine
    from ..methods import SolveMethod

    return get_default_engine().solution_for(
        SolveRequest(dims, tuple(classes), SolveMethod.CONVOLUTION)
    )


def tuple_scale(
    dims: SwitchDimensions, degraded: SwitchDimensions, a: int
) -> float:
    """``P(N1,a) P(N2,a) / (P(N1',a) P(N2',a))`` — the reroute factor.

    ``inf`` when the class does not fit the degraded switch at all.
    """
    reduced = permutation(degraded.n1, a) * permutation(degraded.n2, a)
    if reduced == 0:
        return math.inf
    return permutation(dims.n1, a) * permutation(dims.n2, a) / reduced


def rerouted_classes(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    degraded: SwitchDimensions,
) -> list[TrafficClass | None]:
    """Per-pair parameters for conserved demand on the reduced switch.

    Entry ``r`` is ``None`` when class ``r`` is saturated: it cannot fit
    (``a_r`` exceeds the degraded capacity) or its scaled Pascal
    parameters leave the admissible region (``beta' >= mu`` — the
    rerouted burst feedback has no BPP representation).
    """
    scaled: list[TrafficClass | None] = []
    for cls in classes:
        factor = tuple_scale(dims, degraded, cls.a)
        if not math.isfinite(factor):
            scaled.append(None)
            continue
        try:
            scaled.append(
                TrafficClass(
                    alpha=cls.alpha * factor,
                    beta=cls.beta * factor,
                    mu=cls.mu,
                    a=cls.a,
                    weight=cls.weight,
                    name=cls.name,
                )
            )
        except InvalidParameterError:
            # Rerouted Pascal feedback beta*factor >= mu: the scaled
            # class has no stationary BPP representation.  Treat as
            # saturated (conservative: blocking 1).
            scaled.append(None)
    return scaled


@dataclass(frozen=True)
class DegradedSolution:
    """Product-form measures of a switch with a given failure mask."""

    dims: SwitchDimensions
    mask: FailureMask
    degraded_dims: SwitchDimensions
    routing: str
    classes: tuple[TrafficClass, ...]
    #: Per-class True when the class cannot be carried on the reduced
    #: switch (blocking reported as 1, concurrency 0).
    saturated: tuple[bool, ...]
    #: Per-class offered blocking (arrival's view; includes requests
    #: cleared at dead ports under ``"oblivious"`` routing).
    blocking_values: tuple[float, ...]
    concurrency_values: tuple[float, ...]
    acceptance_values: tuple[float, ...]

    def blocking(self, r: int) -> float:
        """Probability an offered class-``r`` request is cleared."""
        return self.blocking_values[r]

    def concurrency(self, r: int) -> float:
        """Mean concurrent class-``r`` connections on the live fabric."""
        return self.concurrency_values[r]

    def call_acceptance(self, r: int) -> float:
        """Fraction of *offered* class-``r`` requests accepted.

        This is what the fault-injected simulator's acceptance ratio
        estimates, in both routing semantics.
        """
        return self.acceptance_values[r]

    def call_congestion(self, r: int) -> float:
        """``1 - call_acceptance``."""
        return 1.0 - self.acceptance_values[r]

    def render(self) -> str:
        """Human-readable healthy-vs-degraded summary."""
        lines = [
            f"degraded-mode analysis on {self.dims} with "
            f"{self.mask.n_failed} failed ports -> {self.degraded_dims} "
            f"({self.routing}):"
        ]
        for r, cls in enumerate(self.classes):
            tag = "  SATURATED" if self.saturated[r] else ""
            lines.append(
                f"  [{r}] {cls.name or cls.kind:>10s}: "
                f"blocking={self.blocking(r):.6g}  "
                f"E={self.concurrency(r):.6g}  "
                f"acceptance={self.call_acceptance(r):.6g}{tag}"
            )
        return "\n".join(lines)


def _degraded_measures(
    dims: SwitchDimensions,
    classes: tuple[TrafficClass, ...],
    degraded: SwitchDimensions,
    routing: str,
    solver: Callable[..., object],
) -> tuple[tuple[bool, ...], tuple[float, ...], tuple[float, ...], tuple[float, ...]]:
    """Core computation shared by mask-based and availability-weighted paths.

    Returns ``(saturated, blocking, concurrency, acceptance)`` tuples,
    one entry per class.
    """
    n = len(classes)
    if routing == "reroute":
        effective = rerouted_classes(dims, classes, degraded)
    else:
        effective = [
            cls if cls.a <= degraded.capacity else None for cls in classes
        ]
    live = [(r, cls) for r, cls in enumerate(effective) if cls is not None]
    saturated = tuple(cls is None for cls in effective)
    blocking = [1.0] * n
    concurrency = [0.0] * n
    acceptance = [0.0] * n
    if live:
        solution = solver(degraded, [cls for _, cls in live])
        for j, (r, _) in enumerate(live):
            concurrency[r] = solution.concurrency(j)
            if routing == "reroute":
                blocking[r] = solution.blocking(j)
                acceptance[r] = solution.call_acceptance(j)
            else:
                routable = 1.0 / tuple_scale(dims, degraded, classes[r].a)
                blocking[r] = 1.0 - routable * solution.non_blocking(j)
                acceptance[r] = routable * solution.call_acceptance(j)
    return saturated, tuple(blocking), tuple(concurrency), tuple(acceptance)


def solve_degraded(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    mask: FailureMask,
    routing: str = "reroute",
    solver: Callable[..., object] | None = None,
) -> DegradedSolution:
    """Product-form measures of the switch under a failure mask.

    ``solver`` must accept ``(dims, classes)`` and return an object
    with ``blocking / non_blocking / concurrency / call_acceptance``
    per-class accessors (any of the library's analytical solvers, or
    :func:`repro.robust.facade.solve_robust` wrapped appropriately).
    The default routes through the batched engine, so masks sharing a
    degraded shape are solved once.
    """
    _check_routing(routing)
    if solver is None:
        solver = _engine_solver
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    degraded = mask.degraded_dims(dims)
    saturated, blocking, concurrency, acceptance = _degraded_measures(
        dims, classes, degraded, routing, solver
    )
    logger.debug(
        "degraded solve %s",
        kv(
            dims=str(dims),
            degraded=str(degraded),
            routing=routing,
            saturated=sum(saturated),
        ),
    )
    return DegradedSolution(
        dims=dims,
        mask=mask,
        degraded_dims=degraded,
        routing=routing,
        classes=classes,
        saturated=saturated,
        blocking_values=blocking,
        concurrency_values=concurrency,
        acceptance_values=acceptance,
    )


def _binomial_pmf(n: int, p: float) -> list[float]:
    """``P(Binomial(n, p) = k)`` for ``k = 0..n``."""
    return [
        math.comb(n, k) * p**k * (1.0 - p) ** (n - k) for k in range(n + 1)
    ]


@dataclass(frozen=True)
class AvailabilityWeightedMeasures:
    """Measures averaged over the stationary port up/down distribution."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    availability_in: float
    availability_out: float
    routing: str
    blocking: tuple[float, ...]
    concurrency: tuple[float, ...]
    acceptance: tuple[float, ...]
    #: Probability mass of the (live-inputs, live-outputs) cells that
    #: were actually evaluated (1 minus the truncated tail).
    coverage: float

    def render(self) -> str:
        lines = [
            f"availability-weighted measures on {self.dims} "
            f"(A_in={self.availability_in:.4g}, "
            f"A_out={self.availability_out:.4g}, {self.routing}, "
            f"coverage {self.coverage:.6g}):"
        ]
        for r, cls in enumerate(self.classes):
            lines.append(
                f"  [{r}] {cls.name or cls.kind:>10s}: "
                f"blocking={self.blocking[r]:.6g}  "
                f"E={self.concurrency[r]:.6g}  "
                f"acceptance={self.acceptance[r]:.6g}"
            )
        return "\n".join(lines)


def availability_weighted_measures(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    availability_in: float | PortFailureProcess,
    availability_out: float | PortFailureProcess | None = None,
    routing: str = "reroute",
    tail: float = 1e-12,
) -> AvailabilityWeightedMeasures:
    """Average Algorithm 1 measures over the stationary failure masks.

    Ports fail independently; an input is up with probability
    ``availability_in`` (a float, or a :class:`PortFailureProcess`
    whose ``availability`` is used), outputs with
    ``availability_out`` (defaults to the input value).  By port
    exchangeability the mask distribution collapses to the product of
    two binomials over live-port *counts*; cells with probability below
    ``tail`` are skipped (their mass is reported via ``coverage``).
    """
    _check_routing(routing)
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    if isinstance(availability_in, PortFailureProcess):
        availability_in = availability_in.availability
    if availability_out is None:
        availability_out = availability_in
    elif isinstance(availability_out, PortFailureProcess):
        availability_out = availability_out.availability
    for label, value in (
        ("availability_in", availability_in),
        ("availability_out", availability_out),
    ):
        if not 0.0 <= value <= 1.0:
            raise InvalidParameterError(
                f"{label} must be in [0, 1], got {value}"
            )

    w1 = _binomial_pmf(dims.n1, availability_in)
    w2 = _binomial_pmf(dims.n2, availability_out)
    n = len(classes)
    blocking = [0.0] * n
    concurrency = [0.0] * n
    acceptance = [0.0] * n
    coverage = 0.0

    # Under oblivious routing every cell uses the *unscaled* classes, so
    # one full-grid solve answers every sub-switch query.
    full = _engine_solver(dims, classes) if routing == "oblivious" else None

    for m1, p1 in enumerate(w1):
        for m2, p2 in enumerate(w2):
            weight = p1 * p2
            if weight < tail:
                continue
            coverage += weight
            degraded = SwitchDimensions(m1, m2)
            if routing == "oblivious":
                for r, cls in enumerate(classes):
                    if cls.a > degraded.capacity:
                        blocking[r] += weight
                        continue
                    routable = 1.0 / tuple_scale(dims, degraded, cls.a)
                    blocking[r] += weight * (
                        1.0 - routable * full.non_blocking(r, degraded)
                    )
                    concurrency[r] += weight * full.concurrency(r, degraded)
                    acceptance[r] += weight * (
                        routable * full.call_acceptance(r, degraded)
                    )
            else:
                sat, blk, conc, acc = _degraded_measures(
                    dims, classes, degraded, routing, _engine_solver
                )
                for r in range(n):
                    blocking[r] += weight * blk[r]
                    concurrency[r] += weight * conc[r]
                    acceptance[r] += weight * acc[r]

    if coverage <= 0.0:
        raise ConfigurationError(
            f"tail threshold {tail} discarded the entire mask distribution"
        )
    norm = 1.0 / coverage
    logger.debug(
        "availability-weighted solve %s",
        kv(dims=str(dims), routing=routing, coverage=coverage),
    )
    return AvailabilityWeightedMeasures(
        dims=dims,
        classes=classes,
        availability_in=availability_in,
        availability_out=availability_out,
        routing=routing,
        blocking=tuple(b * norm for b in blocking),
        concurrency=tuple(c * norm for c in concurrency),
        acceptance=tuple(a * norm for a in acceptance),
        coverage=coverage,
    )


def validate_degraded_against_simulation(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    mask: FailureMask,
    horizon: float = 2000.0,
    warmup: float = 200.0,
    replications: int = 8,
    seed: int = 0,
    routing: str = "reroute",
    level: float = 0.95,
) -> dict:
    """Cross-validate degraded analysis against the fault-injected simulator.

    Runs the discrete-event simulator with ``mask`` statically injected
    and compares each class's simulated acceptance ratio (CI at
    ``level``) against the analytical :meth:`DegradedSolution.call_acceptance`.
    Returns a dict with per-class entries and a top-level ``covered``
    flag (True when every analytical value lies inside its CI).
    """
    # Imported lazily: repro.sim.crossbar imports repro.robust.faults,
    # so a module-level import here would create a cycle.
    from ..sim.runner import run_replications

    analysis = solve_degraded(dims, classes, mask, routing=routing)
    from .faults import FaultModel

    summary = run_replications(
        dims,
        classes,
        horizon=horizon,
        warmup=warmup,
        replications=replications,
        seed=seed,
        level=level,
        faults=FaultModel.static(mask),
        routing=routing,
    )
    per_class = []
    covered = True
    for r, cls in enumerate(classes):
        ci = summary.classes[r].acceptance
        analytical = analysis.call_acceptance(r)
        inside = ci.contains(analytical)
        covered = covered and inside
        per_class.append(
            {
                "name": cls.name or f"class-{r}",
                "acceptance_sim": ci,
                "acceptance_analytical": analytical,
                "covered": inside,
            }
        )
    return {
        "classes": per_class,
        "covered": covered,
        "analysis": analysis,
        "summary": summary,
    }
