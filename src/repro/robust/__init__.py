"""Resilience layer: fault models, degraded-mode analysis, robust solving.

The paper's unbuffered optical crossbar motivates treating component
failure as a first-class modeling concern.  This package adds three
layers on top of the analytical core:

* :mod:`repro.robust.faults` — deterministic failure masks and
  exponential MTBF/MTTR port-failure processes (consumed by the
  fault-injected discrete-event simulator);
* :mod:`repro.robust.degraded` — product-form measures on the
  surviving sub-switch, and availability-weighted long-run measures;
* :mod:`repro.robust.facade` — :func:`solve_robust`, an ordered
  solver fallback chain with wall-clock budgets, numerical-health
  checks, and complete per-attempt diagnostics.

Exposed on the CLI as ``crossbar-repro robust ...``.
"""

from .degraded import (
    AvailabilityWeightedMeasures,
    DegradedSolution,
    availability_weighted_measures,
    rerouted_classes,
    solve_degraded,
    validate_degraded_against_simulation,
)
from .facade import (
    NoHealthySolutionError,
    RobustSolution,
    SolverAttempt,
    SolverDiagnostics,
    SolverSpec,
    check_solution_health,
    default_chain,
    solve_robust,
)
from .faults import (
    FailureMask,
    FaultModel,
    PortFailureProcess,
    ScheduledFault,
)

__all__ = [
    "AvailabilityWeightedMeasures",
    "DegradedSolution",
    "FailureMask",
    "FaultModel",
    "NoHealthySolutionError",
    "PortFailureProcess",
    "RobustSolution",
    "ScheduledFault",
    "SolverAttempt",
    "SolverDiagnostics",
    "SolverSpec",
    "availability_weighted_measures",
    "check_solution_health",
    "default_chain",
    "rerouted_classes",
    "solve_degraded",
    "solve_robust",
    "validate_degraded_against_simulation",
]
