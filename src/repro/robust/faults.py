"""Port-failure models for the unbuffered optical crossbar.

The paper models blocked-calls-cleared precisely because the hardware
is unforgiving: a free-space optical crosspoint cannot buffer light,
and a misaligned or dead port cannot carry it at all.  This module
gives the library a first-class notion of component failure:

* :class:`FailureMask` — a deterministic set of dead input/output
  ports (the "snapshot" view used by degraded-mode analysis);
* :class:`PortFailureProcess` — an exponential MTBF/MTTR alternating
  renewal process per port, whose stationary availability
  ``MTBF / (MTBF + MTTR)`` drives the availability-weighted measures
  of :mod:`repro.robust.degraded`;
* :class:`ScheduledFault` — one deterministic failure or repair at a
  known time (for reproducible what-if experiments);
* :class:`FaultModel` — the bundle handed to the discrete-event
  simulator (:class:`repro.sim.crossbar.AsynchronousCrossbarSimulator`):
  an initial mask, optional stochastic processes per side, and an
  optional deterministic schedule.

Failure semantics (shared with the simulator and the analysis):
a failing port **clears every connection holding it** — the optical
analogue of blocked-calls-cleared — and accepts no new connections
until repaired.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core.state import SwitchDimensions
from ..exceptions import ConfigurationError, InvalidParameterError

__all__ = [
    "FAIL",
    "REPAIR",
    "INPUT",
    "OUTPUT",
    "FailureMask",
    "FaultModel",
    "PortFailureProcess",
    "ScheduledFault",
]

#: Kinds of a :class:`ScheduledFault`.
FAIL = "fail"
REPAIR = "repair"

#: Sides of the fabric a fault can hit.
INPUT = "input"
OUTPUT = "output"


@dataclass(frozen=True)
class FailureMask:
    """A snapshot of which ports are dead.

    ``inputs`` and ``outputs`` are sets of port indices.  The mask is
    switch-size agnostic until validated with :meth:`validate_for`.
    """

    inputs: frozenset[int] = field(default_factory=frozenset)
    outputs: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        for port in self.inputs | self.outputs:
            if not isinstance(port, int) or isinstance(port, bool) or port < 0:
                raise ConfigurationError(
                    f"port indices must be non-negative integers, got {port!r}"
                )

    @classmethod
    def none(cls) -> "FailureMask":
        """The healthy mask (no dead ports)."""
        return cls()

    @classmethod
    def from_ports(
        cls, inputs: Iterable[int] = (), outputs: Iterable[int] = ()
    ) -> "FailureMask":
        """Build a mask from any iterables of port indices."""
        return cls(frozenset(inputs), frozenset(outputs))

    @property
    def is_healthy(self) -> bool:
        """True when no port is failed."""
        return not self.inputs and not self.outputs

    @property
    def n_failed(self) -> int:
        """Total number of dead ports (both sides)."""
        return len(self.inputs) + len(self.outputs)

    def validate_for(self, dims: SwitchDimensions) -> None:
        """Raise :class:`ConfigurationError` if a port index is out of range."""
        bad_in = [p for p in self.inputs if p >= dims.n1]
        bad_out = [p for p in self.outputs if p >= dims.n2]
        if bad_in or bad_out:
            raise ConfigurationError(
                f"failure mask addresses ports outside the {dims} switch "
                f"(inputs {sorted(bad_in)}, outputs {sorted(bad_out)})"
            )

    def degraded_dims(self, dims: SwitchDimensions) -> SwitchDimensions:
        """Dimensions of the surviving sub-switch ``N1' x N2'``.

        By symmetry of the model (ports are exchangeable), only the
        *count* of live ports matters for the stationary law — which is
        why degraded-mode analysis can recompute the product form on
        the reduced switch.
        """
        self.validate_for(dims)
        return SwitchDimensions(
            dims.n1 - len(self.inputs), dims.n2 - len(self.outputs)
        )

    def union(self, other: "FailureMask") -> "FailureMask":
        """Mask with every port failed in either operand."""
        return FailureMask(
            self.inputs | other.inputs, self.outputs | other.outputs
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureMask(in={sorted(self.inputs)}, "
            f"out={sorted(self.outputs)})"
        )


@dataclass(frozen=True)
class PortFailureProcess:
    """Exponential alternating up/down process for one port.

    Up times are ``Exponential(mean=mtbf)``, down times
    ``Exponential(mean=mttr)``; both in the same time unit as the
    traffic model (mean holding times ``1/mu_r``).
    """

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not (self.mtbf > 0 and math.isfinite(self.mtbf)):
            raise InvalidParameterError(
                f"mtbf must be finite and > 0, got {self.mtbf}"
            )
        if not (self.mttr > 0 and math.isfinite(self.mttr)):
            raise InvalidParameterError(
                f"mttr must be finite and > 0, got {self.mttr}"
            )

    @property
    def availability(self) -> float:
        """Stationary probability the port is up: ``MTBF/(MTBF+MTTR)``."""
        return self.mtbf / (self.mtbf + self.mttr)

    @property
    def unavailability(self) -> float:
        """``1 - availability``."""
        return self.mttr / (self.mtbf + self.mttr)


@dataclass(frozen=True)
class ScheduledFault:
    """One deterministic failure or repair event."""

    time: float
    side: str  # INPUT or OUTPUT
    port: int
    kind: str = FAIL  # FAIL or REPAIR

    def __post_init__(self) -> None:
        if self.time < 0 or not math.isfinite(self.time):
            raise ConfigurationError(
                f"fault time must be finite and >= 0, got {self.time}"
            )
        if self.side not in (INPUT, OUTPUT):
            raise ConfigurationError(
                f"fault side must be {INPUT!r} or {OUTPUT!r}, got {self.side!r}"
            )
        if self.kind not in (FAIL, REPAIR):
            raise ConfigurationError(
                f"fault kind must be {FAIL!r} or {REPAIR!r}, got {self.kind!r}"
            )
        if self.port < 0:
            raise ConfigurationError(
                f"fault port must be >= 0, got {self.port}"
            )


@dataclass(frozen=True)
class FaultModel:
    """Everything the simulator needs to inject faults.

    Parameters
    ----------
    initial_mask:
        Ports dead at time zero.  With no processes and no schedule
        this is a *static* fault experiment — the configuration the
        degraded-mode analysis is cross-validated against.
    input_process, output_process:
        Optional stochastic MTBF/MTTR processes applied independently
        to every port of that side.
    schedule:
        Deterministic failures/repairs at fixed times (applied on top
        of the stochastic processes; a scheduled event for a port that
        is already in the target state is a no-op).
    """

    initial_mask: FailureMask = field(default_factory=FailureMask)
    input_process: PortFailureProcess | None = None
    output_process: PortFailureProcess | None = None
    schedule: tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", tuple(self.schedule))

    @classmethod
    def static(cls, mask: FailureMask) -> "FaultModel":
        """Ports in ``mask`` are dead for the whole run."""
        return cls(initial_mask=mask)

    @classmethod
    def exponential(
        cls,
        mtbf: float,
        mttr: float,
        inputs: bool = True,
        outputs: bool = True,
    ) -> "FaultModel":
        """Same MTBF/MTTR process on every port of the chosen sides."""
        process = PortFailureProcess(mtbf, mttr)
        return cls(
            input_process=process if inputs else None,
            output_process=process if outputs else None,
        )

    @property
    def is_static(self) -> bool:
        """True when the fault state never changes after time zero."""
        return (
            self.input_process is None
            and self.output_process is None
            and not self.schedule
        )

    def validate_for(self, dims: SwitchDimensions) -> None:
        """Check every referenced port exists on the switch."""
        self.initial_mask.validate_for(dims)
        for fault in self.schedule:
            limit = dims.n1 if fault.side == INPUT else dims.n2
            if fault.port >= limit:
                raise ConfigurationError(
                    f"scheduled {fault.kind} for {fault.side} port "
                    f"{fault.port} outside the {dims} switch"
                )
