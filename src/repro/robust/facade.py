"""Resilient solver facade: an ordered fallback chain with diagnostics.

A single numerical hiccup should not kill a whole parameter sweep.
:func:`solve_robust` runs an ordered chain of solution methods —
by default

    MVA -> convolution/log -> convolution/scaled -> series -> exact

— under a wall-clock budget, applies numerical-health checks to each
result (finite, blocking within ``[0, 1]``, non-negative
concurrency), and returns the **first healthy solution** together
with a :class:`SolverDiagnostics` record of every attempt: what ran,
what failed, why, and how long it took.  Callers that want a solution
"no matter which algorithm produced it" call this instead of a
specific solver; callers that want forensics read the diagnostics.

The chain is data: tests (and adventurous users) can pass their own
``chain`` of :class:`SolverSpec` entries to inject failures, reorder
methods, or add new ones.

Budget semantics
----------------
``total_budget`` caps the whole chain: once spent, remaining solvers
are recorded as ``skipped`` (reason ``"time budget exhausted"``).
``solver_budget`` caps each individual attempt; an attempt that
exceeds it is recorded as ``timeout`` and the chain moves on.  Timed
attempts run on a worker thread so the facade can abandon them — the
abandoned thread finishes (or not) in the background, which is the
best pure-Python can do without killing the interpreter; budget users
should treat budgets as scheduling hints, not hard real-time bounds.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import NamedTuple

from ..core.convolution import solve_convolution
from ..core.exact import solve_exact
from ..core.mva import solve_mva
from ..core.series_solver import solve_series
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ComputationError, CrossbarError
from ..logging import get_logger, kv
from ..validation import EXACT_CAPACITY_LIMIT

__all__ = [
    "NoHealthySolutionError",
    "RobustSolution",
    "SolverAttempt",
    "SolverDiagnostics",
    "SolverSpec",
    "cheap_chain",
    "check_solution_health",
    "default_chain",
    "solve_robust",
]

logger = get_logger("robust.facade")

#: Attempt outcomes recorded in :class:`SolverAttempt.status`.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_UNHEALTHY = "unhealthy"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"


class NoHealthySolutionError(ComputationError):
    """Every solver in the chain failed, timed out, or was rejected.

    Carries the full :class:`SolverDiagnostics` as ``diagnostics`` so
    callers can inspect (or log) exactly what was tried.
    """

    def __init__(self, diagnostics: "SolverDiagnostics") -> None:
        self.diagnostics = diagnostics
        super().__init__(
            "no solver produced a healthy solution:\n"
            + diagnostics.render()
        )


class SolverSpec(NamedTuple):
    """One entry of the fallback chain."""

    name: str
    solve: Callable[[SwitchDimensions, Sequence[TrafficClass]], object]
    #: Optional applicability guard; returns a skip reason or None.
    guard: Callable[[SwitchDimensions, Sequence[TrafficClass]], str | None] | None = None


@dataclass(frozen=True)
class SolverAttempt:
    """Outcome of one solver in the chain."""

    solver: str
    status: str  # one of the STATUS_* constants
    elapsed: float
    detail: str = ""


@dataclass(frozen=True)
class SolverDiagnostics:
    """Every attempt the facade made, in chain order."""

    attempts: tuple[SolverAttempt, ...]
    chosen: str | None
    elapsed: float

    @property
    def attempted(self) -> tuple[str, ...]:
        """Names of solvers that actually ran (not skipped)."""
        return tuple(
            a.solver for a in self.attempts if a.status != STATUS_SKIPPED
        )

    def attempt(self, solver: str) -> SolverAttempt:
        """The recorded attempt for ``solver`` (raises KeyError if absent)."""
        for a in self.attempts:
            if a.solver == solver:
                return a
        raise KeyError(solver)

    def render(self) -> str:
        lines = [
            f"solver chain ({len(self.attempts)} attempts, "
            f"{self.elapsed:.3g}s total):"
        ]
        for a in self.attempts:
            detail = f"  [{a.detail}]" if a.detail else ""
            marker = "*" if a.solver == self.chosen else " "
            lines.append(
                f" {marker} {a.solver:>18}: {a.status:<9} "
                f"{a.elapsed:8.3g}s{detail}"
            )
        lines.append(f"chosen: {self.chosen or 'NONE'}")
        return "\n".join(lines)


def _exact_guard(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> str | None:
    if dims.capacity > EXACT_CAPACITY_LIMIT:
        return f"capacity {dims.capacity} > {EXACT_CAPACITY_LIMIT}"
    return None


def default_chain() -> tuple[SolverSpec, ...]:
    """The standard fallback order.

    Fastest-but-fussiest first: Algorithm 2 (MVA) is cheapest but has a
    smooth-class stability guard; Algorithm 1 in log then scaled mode
    covers virtually everything; the diagonal series solver is an
    independent formulation; exact rationals are the slow last resort
    (guarded by capacity).
    """
    return (
        SolverSpec("mva", solve_mva),
        SolverSpec(
            "convolution/log",
            lambda dims, classes: solve_convolution(dims, classes, mode="log"),
        ),
        SolverSpec(
            "convolution/scaled",
            lambda dims, classes: solve_convolution(
                dims, classes, mode="scaled"
            ),
        ),
        SolverSpec("series", solve_series),
        SolverSpec("exact", solve_exact, _exact_guard),
    )


def cheap_chain() -> tuple[SolverSpec, ...]:
    """The cheap prefix of :func:`default_chain`.

    The serving daemon's brownout ladder ("cheap-method" stage, see
    :mod:`repro.service.brownout`) rewrites overload-time solves onto
    the robust path precisely because this prefix leads it: MVA is the
    cheapest solver in the repertoire and the log-mode convolution is
    the cheapest broadly-stable one.  Exposed separately so capacity
    planning (and tests) can measure the degraded path's cost floor
    without the expensive tail of the chain.
    """
    return default_chain()[:2]


def check_solution_health(solution: object, n_classes: int) -> str | None:
    """Numerical-health verdict for a solved model.

    Returns a rejection reason, or None when the solution is healthy:
    every per-class blocking is finite and within ``[0, 1]`` (small
    float fuzz tolerated) and every concurrency is finite and
    non-negative.
    """
    tol = 1e-9
    for r in range(n_classes):
        try:
            blocking = solution.blocking(r)
            concurrency = solution.concurrency(r)
        except CrossbarError as exc:
            return f"measure evaluation failed for class {r}: {exc}"
        if not math.isfinite(blocking):
            return f"blocking[{r}] = {blocking} is not finite"
        if blocking < -tol or blocking > 1.0 + tol:
            return f"blocking[{r}] = {blocking:.6g} outside [0, 1]"
        if not math.isfinite(concurrency):
            return f"concurrency[{r}] = {concurrency} is not finite"
        if concurrency < -tol:
            return f"concurrency[{r}] = {concurrency:.6g} is negative"
    return None


@dataclass(frozen=True)
class RobustSolution:
    """A healthy solution plus the forensic trail that produced it."""

    solution: object
    diagnostics: SolverDiagnostics

    @property
    def method(self) -> str:
        """Name of the chain entry that produced the solution."""
        return self.diagnostics.chosen or ""


def _run_with_timeout(
    spec: SolverSpec,
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    timeout: float | None,
) -> object:
    """Run one solver, abandoning it after ``timeout`` seconds.

    A timed-out solver cannot be killed, only abandoned: the worker
    thread is marked *daemonic* so an abandoned long-running solve can
    never stall interpreter exit (a ``ThreadPoolExecutor`` worker is
    non-daemon and would be joined at shutdown — exactly the hang this
    function exists to prevent).
    """
    if timeout is None or not math.isfinite(timeout):
        return spec.solve(dims, classes)
    box: list[tuple[bool, object]] = []

    def runner() -> None:
        try:
            box.append((True, spec.solve(dims, classes)))
        except BaseException as exc:  # noqa: BLE001 - relayed below
            box.append((False, exc))

    thread = threading.Thread(
        target=runner, daemon=True, name=f"robust-{spec.name}"
    )
    thread.start()
    thread.join(timeout)
    if not box:
        raise FutureTimeoutError(
            f"solver {spec.name!r} exceeded its {timeout:.3g}s budget"
        )
    ok, value = box[0]
    if not ok:
        raise value
    return value


def solve_robust(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    chain: Sequence[SolverSpec] | None = None,
    total_budget: float | None = None,
    solver_budget: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> RobustSolution:
    """Solve with the fallback chain; never return an unhealthy answer.

    With every knob at its default the call is *pure* (a deterministic
    function of ``dims`` and ``classes``), so it is memoized through the
    process-wide batched engine (:mod:`repro.engine`) — repeated robust
    solves of the same model, e.g. across availability-weighted degraded
    scenarios, cost one chain run.  Custom chains, budgets, or clocks
    bypass the cache and run directly.

    Parameters
    ----------
    dims, classes:
        The model, exactly as for any individual solver.
    chain:
        Fallback order; defaults to :func:`default_chain`.
    total_budget:
        Wall-clock seconds for the whole chain.  Solvers that would
        start after the budget is spent are recorded as skipped.
    solver_budget:
        Wall-clock seconds for each individual attempt.
    clock:
        Injectable monotonic clock (tests use a fake to exercise the
        budget paths deterministically).

    Raises
    ------
    NoHealthySolutionError
        When no solver returns a healthy solution; its ``diagnostics``
        attribute records every attempt.
    """
    pure = (
        chain is None
        and total_budget is None
        and solver_budget is None
        and clock is time.perf_counter
    )
    if pure and classes:
        from ..api import SolveRequest
        from ..engine import get_default_engine
        from ..methods import SolveMethod

        request = SolveRequest(dims, tuple(classes), SolveMethod.ROBUST)
        return get_default_engine().solution_for(request)
    return _solve_robust_impl(
        dims, classes, chain, total_budget, solver_budget, clock
    )


def _solve_robust_direct(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> RobustSolution:
    """Uncached default-chain run (the engine's dispatch target)."""
    return _solve_robust_impl(dims, classes, None, None, None,
                              time.perf_counter)


def _solve_robust_impl(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    chain: Sequence[SolverSpec] | None,
    total_budget: float | None,
    solver_budget: float | None,
    clock: Callable[[], float],
) -> RobustSolution:
    classes = tuple(classes)
    specs = tuple(chain) if chain is not None else default_chain()
    if not specs:
        raise ComputationError("solver chain is empty")
    start = clock()
    attempts: list[SolverAttempt] = []

    def record(spec_name: str, status: str, began: float, detail: str) -> None:
        elapsed = max(0.0, clock() - began)
        attempts.append(
            SolverAttempt(
                solver=spec_name, status=status, elapsed=elapsed,
                detail=detail,
            )
        )
        logger.log(
            20 if status == STATUS_OK else 30,  # INFO / WARNING
            "solver attempt %s",
            kv(solver=spec_name, status=status, elapsed=elapsed,
               detail=detail or "-"),
        )

    for spec in specs:
        began = clock()
        if total_budget is not None:
            remaining = total_budget - (began - start)
            if remaining <= 0.0:
                record(spec.name, STATUS_SKIPPED, began,
                       "time budget exhausted")
                continue
        else:
            remaining = None
        if spec.guard is not None:
            reason = spec.guard(dims, classes)
            if reason:
                record(spec.name, STATUS_SKIPPED, began, reason)
                continue
        timeout = solver_budget
        if remaining is not None:
            timeout = remaining if timeout is None else min(timeout, remaining)
        try:
            solution = _run_with_timeout(spec, dims, classes, timeout)
        except FutureTimeoutError:
            record(spec.name, STATUS_TIMEOUT, began,
                   f"exceeded {timeout:.3g}s")
            continue
        except CrossbarError as exc:
            record(spec.name, STATUS_ERROR, began,
                   f"{type(exc).__name__}: {str(exc)[:120]}")
            continue
        reason = check_solution_health(solution, len(classes))
        if reason is not None:
            record(spec.name, STATUS_UNHEALTHY, began, reason)
            continue
        record(spec.name, STATUS_OK, began, "")
        diagnostics = SolverDiagnostics(
            attempts=tuple(attempts),
            chosen=spec.name,
            elapsed=max(0.0, clock() - start),
        )
        return RobustSolution(solution=solution, diagnostics=diagnostics)

    diagnostics = SolverDiagnostics(
        attempts=tuple(attempts), chosen=None,
        elapsed=max(0.0, clock() - start),
    )
    raise NoHealthySolutionError(diagnostics)
