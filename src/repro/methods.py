"""The shared :class:`SolveMethod` enum: one name per solution method.

Before this module existed the method names were stringly typed and
duplicated across :mod:`repro.core.model` (``METHODS``), the CLI
(``--method`` choices) and the robust facade (chain entry names), with
nothing keeping them in sync.  ``SolveMethod`` is the single source of
truth.  It is **str-valued**, so every place that round-trips method
names through JSON, argparse or log lines keeps working unchanged:

>>> SolveMethod.MVA == "mva"
True
>>> SolveMethod("convolution-scaled") is SolveMethod.CONVOLUTION_SCALED
True

:meth:`SolveMethod.coerce` additionally accepts the historical
slash-spelled aliases used by the robust facade's diagnostics
(``"convolution/log"``, ``"convolution/scaled"``, ``"convolution/float"``).
"""

from __future__ import annotations

from enum import Enum

from .exceptions import ConfigurationError

__all__ = ["SolveMethod"]


class SolveMethod(str, Enum):
    """Every solution method the library can dispatch to by name."""

    #: Algorithm 1 (paper §5) in the log domain — the default.
    CONVOLUTION = "convolution"
    #: Algorithm 1 with §6 dynamic scaling (mantissa/exponent pairs).
    CONVOLUTION_SCALED = "convolution-scaled"
    #: Algorithm 1 unscaled (raises when it over/underflows).
    CONVOLUTION_FLOAT = "convolution-float"
    #: Algorithm 1 (log domain) on the vectorized NumPy kernel
    #: (:mod:`repro.core.kernels`) — bitwise-identical to CONVOLUTION.
    CONVOLUTION_NUMPY = "convolution-numpy"
    #: Dynamic-scaling Algorithm 1 on the fast renormalizing kernel
    #: (tolerance-equivalent; falls back to the reference sweep when a
    #: column's dynamic range exceeds float64).
    CONVOLUTION_SCALED_NUMPY = "convolution-scaled-numpy"
    #: Unscaled Algorithm 1 on the NumPy kernel — bitwise-identical to
    #: CONVOLUTION_FLOAT, including its overflow boundaries.
    CONVOLUTION_FLOAT_NUMPY = "convolution-float-numpy"
    #: Algorithm 2 (paper §5.1), ratio domain.
    MVA = "mva"
    #: Algorithm 2 with the ``m1`` axis vectorized (tolerance-equivalent).
    MVA_NUMPY = "mva-numpy"
    #: Algorithm 1 in exact rational arithmetic.
    EXACT = "exact"
    #: Direct summation over the state space (eq. 2-3).
    BRUTE_FORCE = "brute-force"
    #: Diagonal occupancy-series solver (measures at full dims only).
    SERIES = "series"
    #: The resilient fallback chain (:func:`repro.robust.solve_robust`).
    ROBUST = "robust"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def convolution_mode(self) -> str | None:
        """The ``solve_convolution`` mode for Algorithm 1 members, else None."""
        return _CONVOLUTION_MODES.get(self)

    @property
    def kernel_family(self) -> str | None:
        """The kernel family this method pins, if any.

        The ``*-numpy`` members always run the vectorized kernels; the
        classic members return ``None``, meaning "follow the process
        default" (:func:`repro.core.kernels.default_kernel`, i.e. the
        ``REPRO_KERNELS`` knob, defaulting to the pure-python reference
        sweeps).  Solvers receive this as their ``kernel=`` argument.
        """
        return _KERNEL_FAMILIES.get(self)

    @property
    def rel_tolerance(self) -> float:
        """Relative accuracy this method is trusted to on its measures.

        Used by the differential verifier (:mod:`repro.verify`) to set
        pairwise comparison tolerances: two methods must agree to
        ``max(rel_tolerance_a, rel_tolerance_b)`` (plus a small ULP
        floor).  The figures are empirical — tight enough to catch a
        real defect (an off-by-one in a recursion shifts measures by
        orders of magnitude more), loose enough that legitimate
        round-off across numeric domains never fires.
        """
        return _REL_TOLERANCES[self]

    @property
    def is_grid(self) -> bool:
        """True when the method produces a full sub-dimension ratio grid.

        Grid methods answer every measure at every sub-switch
        ``(m1, m2) <= (N1, N2)`` from one solve — the property the
        batched engine exploits to serve whole size sweeps from a
        single Algorithm 1 pass.
        """
        return self in _GRID_METHODS

    @classmethod
    def coerce(cls, value: "SolveMethod | str") -> "SolveMethod":
        """Normalize a method name (enum member, value, or alias).

        Raises :class:`~repro.exceptions.ConfigurationError` on unknown
        names, listing the accepted values.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            pass
        alias = _ALIASES.get(value)
        if alias is not None:
            return alias
        raise ConfigurationError(
            f"unknown method {value!r}; expected one of "
            f"{tuple(m.value for m in cls)}"
        )


_CONVOLUTION_MODES = {
    SolveMethod.CONVOLUTION: "log",
    SolveMethod.CONVOLUTION_SCALED: "scaled",
    SolveMethod.CONVOLUTION_FLOAT: "float",
    SolveMethod.CONVOLUTION_NUMPY: "log",
    SolveMethod.CONVOLUTION_SCALED_NUMPY: "scaled",
    SolveMethod.CONVOLUTION_FLOAT_NUMPY: "float",
}

#: Methods that pin a kernel family (absent -> follow the process knob).
_KERNEL_FAMILIES = {
    SolveMethod.CONVOLUTION_NUMPY: "numpy",
    SolveMethod.CONVOLUTION_SCALED_NUMPY: "numpy",
    SolveMethod.CONVOLUTION_FLOAT_NUMPY: "numpy",
    SolveMethod.MVA_NUMPY: "numpy",
}

#: Methods whose solution exposes measures at every sub-dimension.
#: ``convolution-float`` is excluded on purpose: enlarging the grid can
#: push the unscaled recurrence into the very under/overflow it exists
#: to demonstrate, so batching must not change the dims it runs at.
_GRID_METHODS = frozenset(
    {
        SolveMethod.CONVOLUTION,
        SolveMethod.CONVOLUTION_SCALED,
        SolveMethod.CONVOLUTION_NUMPY,
        SolveMethod.CONVOLUTION_SCALED_NUMPY,
    }
)

#: Per-method relative tolerances for differential comparison.  The
#: exact solver evaluates in rational arithmetic and only rounds once
#: at the end; brute force and the convolution modes accumulate
#: float64 round-off over the state space / grid sweep; MVA and the
#: series solver work in ratio/series domains with somewhat larger
#: constants; the CTMC goes through a sparse linear solve.
_REL_TOLERANCES = {
    SolveMethod.CONVOLUTION: 1e-9,
    SolveMethod.CONVOLUTION_SCALED: 1e-9,
    SolveMethod.CONVOLUTION_FLOAT: 1e-9,
    SolveMethod.CONVOLUTION_NUMPY: 1e-9,
    SolveMethod.CONVOLUTION_SCALED_NUMPY: 1e-9,
    SolveMethod.CONVOLUTION_FLOAT_NUMPY: 1e-9,
    SolveMethod.MVA: 1e-8,
    SolveMethod.MVA_NUMPY: 1e-8,
    SolveMethod.EXACT: 1e-12,
    SolveMethod.BRUTE_FORCE: 1e-9,
    SolveMethod.SERIES: 1e-8,
    SolveMethod.ROBUST: 1e-8,
}

#: Historical spellings (robust-facade chain names) still accepted.
_ALIASES = {
    "convolution/log": SolveMethod.CONVOLUTION,
    "convolution/scaled": SolveMethod.CONVOLUTION_SCALED,
    "convolution/float": SolveMethod.CONVOLUTION_FLOAT,
    "convolution-numpy/log": SolveMethod.CONVOLUTION_NUMPY,
    "convolution-numpy/scaled": SolveMethod.CONVOLUTION_SCALED_NUMPY,
    "convolution-numpy/float": SolveMethod.CONVOLUTION_FLOAT_NUMPY,
}
