"""Kernel-boundary golden cases for the equivalence suite.

The vectorized kernels (:mod:`repro.core.kernels`) promise bitwise
identity (``log``/``float`` modes) or tolerance equivalence with
reference fallback (``scaled``) against the pure-python sweeps.  The
places where that promise is most at risk are the numeric *edges*:

* the ``Q(n1, 0) = 1/n1!`` base row (byte-exact in every mode),
* the float-mode :class:`~repro.exceptions.OverflowInRecursionError`
  boundary (``1/n1!`` leaves float64 around ``n1 ~ 178``),
* the scaled kernel's fall-back region (a renormalized column
  underflowing to exact zero — same factorial cliff),
* zero-burstiness (Poisson-only) and bursty mixes, max-grid sizes,
  and the empty class set (rejected identically by both families).

:func:`kernel_edges_record` probes all of these along one shared size
grid and returns a corpus-schema record (``{"x": ..., "curves": ...}``)
that :mod:`tools.refresh_golden` stamps into
``tests/golden/kernel_edges.json``.  The record is built with an
explicit ``kernel=`` argument (no engine, no cache), so rebuilding it
under each kernel family is a genuine end-to-end regression check:
``log`` curves must match the snapshot bitwise, ``scaled`` curves
within the corpus drift tolerance.
"""

from __future__ import annotations

import math

from ..core.convolution import log_q_grid, solve_convolution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, OverflowInRecursionError

__all__ = ["PROBE_SIZES", "kernel_edges_record"]

#: Sizes spanning tiny grids, the benchmark range, and the factorial
#: cliff where ``1/n!`` leaves float64 (between 171 and 200).
PROBE_SIZES = (1, 2, 8, 32, 64, 171, 178, 200)

#: Blocking-curve solves are capped at this side length — the curves
#: probe kernel agreement, not large-grid latency.
_SOLVE_CAP = 48

#: One Poisson class (zero burstiness) and one bursty Pascal class.
_POISSON = (TrafficClass.poisson(0.05, name="poisson"),)
_MIXED = (
    TrafficClass.poisson(0.05, name="poisson"),
    TrafficClass(alpha=0.02, beta=0.01, mu=1.0, a=2, name="pascal"),
)


def _float_mode_raises(n: int, kernel: str | None) -> float:
    try:
        log_q_grid(
            SwitchDimensions(n, 2), _POISSON, mode="float", kernel=kernel
        )
        return 0.0
    except OverflowInRecursionError:
        return 1.0


def _empty_classes_rejected(n: int, kernel: str | None) -> float:
    for mode in ("log", "scaled", "float"):
        try:
            log_q_grid(SwitchDimensions(n, 2), (), mode=mode, kernel=kernel)
            return 0.0  # pragma: no cover - would be a regression
        except ConfigurationError:
            continue
    return 1.0


def kernel_edges_record(kernel: str | None = None) -> dict:
    """The kernel-boundary corpus record, built with ``kernel=`` pinned.

    ``kernel=None`` follows the process default (how the stored golden
    snapshot is generated); passing ``"python"`` / ``"numpy"``
    re-derives the same record through that family for the
    both-families regression test.
    """
    curves: dict[str, list[float]] = {
        "base_row_logq": [],
        "float_mode_raises": [],
        "scaled_fallback_boundary": [],
        "empty_classes_rejected": [],
        "log_blocking_poisson": [],
        "log_blocking_mixed": [],
        "scaled_blocking_mixed": [],
    }
    for n in PROBE_SIZES:
        # Q(n1, 0) = 1/n1! base row, read from the solved log grid.
        lq = log_q_grid(
            SwitchDimensions(n, 1), _POISSON, mode="log", kernel=kernel
        )
        curves["base_row_logq"].append(float(lq[n, 0]))
        curves["float_mode_raises"].append(_float_mode_raises(n, kernel))
        # Where the scaled fast path must hand back to the reference:
        # the unit-max renormalized base row holds exp(-lgamma(n+1)),
        # which underflows to exact zero past the factorial cliff.
        curves["scaled_fallback_boundary"].append(
            1.0 if math.exp(-math.lgamma(n + 1)) == 0.0 else 0.0
        )
        curves["empty_classes_rejected"].append(
            _empty_classes_rejected(n, kernel)
        )
        m = min(n, _SOLVE_CAP)
        dims = SwitchDimensions(m, m)
        poisson = solve_convolution(dims, _POISSON, mode="log", kernel=kernel)
        curves["log_blocking_poisson"].append(float(poisson.blocking(0)))
        mixed = solve_convolution(dims, _MIXED, mode="log", kernel=kernel)
        curves["log_blocking_mixed"].append(float(mixed.blocking(1)))
        # Uncapped scaled solve: sizes past the cliff exercise the
        # numpy family's reference fallback end to end.
        scaled = solve_convolution(
            SwitchDimensions(n, n), _MIXED, mode="scaled", kernel=kernel
        )
        curves["scaled_blocking_mixed"].append(float(scaled.blocking(1)))
    record = {
        "x": [float(n) for n in PROBE_SIZES],
        "curves": curves,
    }
    for values in record["curves"].values():
        for v in values:
            if not math.isfinite(v):
                raise ValueError(
                    f"non-finite value {v!r} in kernel_edges record"
                )
    return record
