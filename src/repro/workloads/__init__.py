"""The paper's experiment scenarios and generic sweep helpers."""

from .scenarios import (
    FIGURE_SIZES,
    TABLE1_PAPER,
    TABLE2_PAPER,
    TABLE2_PARAMETER_SETS,
    TABLE2_SIZES,
    figure1,
    figure2,
    figure3,
    figure4,
    table1_rows,
    table2_classes,
    table2_rows,
)
from .sweeps import (
    find_load_for_blocking,
    find_size_for_blocking,
    sweep_parameter,
    sweep_sizes,
)

__all__ = [
    "FIGURE_SIZES",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "TABLE2_PARAMETER_SETS",
    "TABLE2_SIZES",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "find_load_for_blocking",
    "find_size_for_blocking",
    "sweep_parameter",
    "sweep_sizes",
    "table1_rows",
    "table2_classes",
    "table2_rows",
]
