"""The paper's experiment scenarios: Figures 1-4, Tables 1-2.

Every numerical result in the paper's Section 7 is encoded here as a
parameterized, runnable scenario.  The benchmark scripts under
``benchmarks/`` call these functions and print the regenerated
series/tables; the printed values from the paper (where given) are
embedded as constants for side-by-side comparison.

Conventions
-----------
The paper specifies traffic with *aggregate* ("tilde") parameters —
the rate for a particular set of inputs and any set of outputs — and
sweeps the system size ``N`` holding the tilde parameters fixed.  The
per-pair parameters that enter the model therefore rescale with ``N``:
``alpha = alpha~ / C(N2, a)`` (paper, Section 2).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.convolution import solve_convolution
from ..core.revenue import gradient_burstiness, gradient_rho
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..reporting.series import FigureSeries

__all__ = [
    "FIGURE_SIZES",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "TABLE2_SIZES",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "table1_rows",
    "table2_rows",
]

#: System sizes used when sweeping the figures (the paper plots
#: ``1 <= N <= 128`` continuously; these sample that range densely
#: enough to show every qualitative feature).
FIGURE_SIZES = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)

#: The paper's baseline operating point: ``alpha~ = .0024`` drives the
#: non-blocking probability to ~99.5% (Section 7).
ALPHA_TILDE = 0.0024

#: Smooth (Bernoulli) beta~ sweep of Figure 1.
FIGURE1_BETAS = (0.0, -1e-6, -2e-6, -3e-6, -4e-6)

#: Peaky (Pascal) beta~ sweep of Figure 2.  The paper does not print
#: the figure's parameter values; these match Table 2's range.
FIGURE2_BETAS = (0.0, 0.0006, 0.0012, 0.0024, 0.0036)


def _single_class_blocking(
    n: int, alpha_tilde: float, beta_tilde: float, a: int = 1
) -> float:
    """Blocking of one BPP class alone on an ``n x n`` switch."""
    dims = SwitchDimensions.square(n)
    cls = TrafficClass.from_aggregate(
        alpha_tilde, beta_tilde, n2=n, mu=1.0, a=a
    )
    if cls.a > dims.capacity:
        return 1.0
    return solve_convolution(dims, [cls]).blocking(0)


def figure1(sizes: Sequence[int] = FIGURE_SIZES) -> FigureSeries:
    """Figure 1: smooth (Bernoulli) arrivals vs system size.

    One class, ``R1 = 0, R2 = 1``, ``a = 1``, ``alpha~ = .0024``,
    ``beta~`` from 0 down to ``-4e-6``.  The paper's observation: the
    Poisson curve (``beta~ = 0``) upper-bounds all smooth curves, with
    a spread of ~0.1% at ``N = 128``.
    """
    fig = FigureSeries(
        title="Figure 1: smooth arrival traffic (Bernoulli)",
        x_label="N",
        x_values=tuple(float(n) for n in sizes),
        y_label="blocking probability",
    )
    for beta_tilde in FIGURE1_BETAS:
        label = "poisson" if beta_tilde == 0.0 else f"beta~={beta_tilde:g}"
        fig.add(
            label,
            [
                _single_class_blocking(n, ALPHA_TILDE, beta_tilde)
                for n in sizes
            ],
        )
    return fig


def figure2(sizes: Sequence[int] = FIGURE_SIZES) -> FigureSeries:
    """Figure 2: peaky (Pascal) arrivals vs system size.

    Same setup as Figure 1 with ``beta~ > 0``.  The paper's
    observation: peaky traffic has a dramatic impact on blocking,
    increasingly so for larger systems.
    """
    fig = FigureSeries(
        title="Figure 2: peaky arrival traffic (Pascal)",
        x_label="N",
        x_values=tuple(float(n) for n in sizes),
        y_label="blocking probability",
    )
    for beta_tilde in FIGURE2_BETAS:
        label = "poisson" if beta_tilde == 0.0 else f"beta~={beta_tilde:g}"
        fig.add(
            label,
            [
                _single_class_blocking(n, ALPHA_TILDE, beta_tilde)
                for n in sizes
            ],
        )
    return fig


def figure3(sizes: Sequence[int] = FIGURE_SIZES) -> FigureSeries:
    """Figure 3: mixing a Poisson class with a peaky class.

    Compares ``R1 = 1, R2 = 1`` against ``R1 = 0, R2 = 1`` at two
    peakedness levels.  The paper's observations: the Poisson class
    shifts the operating point, and a given ``beta~`` causes the same
    *percentage* change in blocking regardless of the operating point.
    """
    fig = FigureSeries(
        title="Figure 3: Poisson + peaky mix vs peaky alone",
        x_label="N",
        x_values=tuple(float(n) for n in sizes),
        y_label="blocking probability",
    )

    def mixed_blocking(n: int, beta_tilde: float, with_poisson: bool) -> float:
        dims = SwitchDimensions.square(n)
        classes = []
        if with_poisson:
            classes.append(
                TrafficClass.from_aggregate(
                    ALPHA_TILDE, 0.0, n2=n, mu=1.0, name="poisson"
                )
            )
        classes.append(
            TrafficClass.from_aggregate(
                ALPHA_TILDE, beta_tilde, n2=n, mu=1.0, name="peaky"
            )
        )
        return solve_convolution(dims, classes).blocking(0)

    for beta_tilde in (0.0012, 0.0024):
        fig.add(
            f"R2 only, beta~={beta_tilde:g}",
            [mixed_blocking(n, beta_tilde, False) for n in sizes],
        )
        fig.add(
            f"R1+R2, beta~={beta_tilde:g}",
            [mixed_blocking(n, beta_tilde, True) for n in sizes],
        )
    return fig


# ----------------------------------------------------------------------
# Figure 4 / Table 1 (multi-rate comparison)
# ----------------------------------------------------------------------

#: Table 1 exactly as printed: input loads for the two traffic types of
#: Figure 4 (``a_1 = 1``, ``a_2 = 2``).
TABLE1_PAPER: dict[int, tuple[float, float]] = {
    4: (0.000600, 0.000800),
    8: (0.000300, 0.000171),
    16: (0.000150, 0.0000400),
    32: (0.0000750, 0.00000967),
    64: (0.0000375, 0.00000238),
}

#: Total load the paper says it holds constant in Figure 4.  Note:
#: Table 1's printed numbers correspond to ``tau = .0024`` for the
#: ``a=1`` class and ``tau = .0048`` for the ``a=2`` class with
#: ``rho~ = tau / C(N, a)`` — the text's single ``tau_r = .0048`` is a
#: factor-2 inconsistency for the first class (see DESIGN.md §2).
TABLE1_TAUS = (0.0024, 0.0048)


def table1_rows() -> list[list]:
    """Table 1 printed vs formula-reconstructed loads."""
    rows = []
    for n, (rho1, rho2) in TABLE1_PAPER.items():
        formula1 = TABLE1_TAUS[0] / math.comb(n, 1)
        formula2 = TABLE1_TAUS[1] / math.comb(n, 2)
        rows.append([n, rho1, formula1, rho2, formula2])
    return rows


def figure4(use_paper_values: bool = True) -> FigureSeries:
    """Figure 4: multi-rate traffic — ``a=1`` vs ``a=2`` at equal load.

    Each traffic type is analyzed *separately* (as the paper states).
    The expected shape: the ``a=2`` class suffers dramatically higher
    blocking than the ``a=1`` class at matched total load, because each
    arrival must find two idle inputs and two idle outputs at once.
    """
    sizes = tuple(sorted(TABLE1_PAPER))
    fig = FigureSeries(
        title="Figure 4: bandwidth requirement a=1 vs a=2",
        x_label="N",
        x_values=tuple(float(n) for n in sizes),
        y_label="blocking probability",
    )
    b1 = []
    b2 = []
    for n in sizes:
        if use_paper_values:
            rho1, rho2 = TABLE1_PAPER[n]
        else:
            rho1 = TABLE1_TAUS[0] / math.comb(n, 1)
            rho2 = TABLE1_TAUS[1] / math.comb(n, 2)
        b1.append(_blocking_from_rho_tilde(n, rho1, a=1))
        b2.append(_blocking_from_rho_tilde(n, rho2, a=2))
    fig.add("a=1 (rho~ from Table 1)", b1)
    fig.add("a=2 (rho~ from Table 1)", b2)
    return fig


def _blocking_from_rho_tilde(n: int, rho_tilde: float, a: int) -> float:
    """Blocking for a single Poisson class given its tilde load."""
    dims = SwitchDimensions.square(n)
    cls = TrafficClass.from_aggregate(rho_tilde, 0.0, n2=n, mu=1.0, a=a)
    return solve_convolution(dims, [cls]).blocking(0)


# ----------------------------------------------------------------------
# Table 2 (revenue analysis)
# ----------------------------------------------------------------------

TABLE2_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: The three parameter sets of Table 2:
#: ``(rho~1, rho~2, beta~2, w1, w2)``.
TABLE2_PARAMETER_SETS = (
    (0.0012, 0.0012, 0.0012, 1.0, 0.0001),
    (0.0012, 0.0012, 0.0036, 1.0, 0.0001),
    (0.0012, 0.0036, 0.0012, 1.0, 0.0001),
)

#: Table 2 exactly as printed:
#: ``{set_index: {N: (dW/drho1, dW/d(beta2/mu2), B_r, W)}}``
#: (``None`` where the paper prints "-").
TABLE2_PAPER: dict[int, dict[int, tuple[float | None, ...]]] = {
    0: {
        1: (0.99, None, 0.00239425, 0.00119725),
        2: (3.97, +2.38871e-07, 0.00358566, 0.00239163),
        4: (15.89, -2.12995e-05, 0.00418083, 0.00478041),
        8: (63.57, -0.000370081, 0.0044820, 0.00955794),
        16: (254.22, -0.00402453, 0.00464093, 0.0191128),
        32: (1016.76, -0.0369292, 0.00473733, 0.0382221),
        64: (4066.62, -0.313413, 0.0048195, 0.0764381),
        128: (16264.50, -2.53805, 0.00492849, 0.152861),
        256: (65045.30, -19.3138, 0.00511868, 0.305671),
    },
    1: {
        1: (0.99, None, 0.00239425, 0.00119725),
        2: (3.97, +2.38871e-07, 0.00358566, 0.00239163),
        4: (15.89, -2.12788e-05, 0.00418403, 0.0047804),
        8: (63.56, -0.00036904, 0.00449504, 0.00955782),
        16: (254.21, -0.00399684, 0.00467581, 0.0191122),
        32: (1016.68, -0.0363166, 0.00481708, 0.0382193),
        64: (4065.93, -0.299452, 0.00498953, 0.0764266),
        128: (16258.80, -2.09857, 0.00527912, 0.152817),
        256: (64998.30, -68.6054, 0.00582948, 0.305646),
    },
    2: {
        1: (0.99, None, 0.00477707, 0.00119463),
        2: (3.96, +7.13145e-07, 0.00714287, 0.00238357),
        4: (15.83, -6.30503e-05, 0.0083221, 0.00476149),
        8: (63.28, -0.00109351, 0.0089218, 0.00951723),
        16: (253.05, -0.0118788, 0.00924611, 0.0190283),
        32: (1011.95, -0.108917, 0.00945823, 0.0380486),
        64: (4046.89, -0.923616, 0.0096644, 0.0760824),
        128: (16182.50, -7.47015, 0.0099675, 0.152123),
        256: (64693.50, -56.7188, 0.010518, 0.304099),
    },
}


def table2_classes(
    set_index: int, n: int
) -> tuple[TrafficClass, TrafficClass]:
    """The two traffic classes of one Table 2 row."""
    rho1, rho2, beta2, w1, w2 = TABLE2_PARAMETER_SETS[set_index]
    c1 = TrafficClass.from_aggregate(
        rho1, 0.0, n2=n, mu=1.0, weight=w1, name="poisson"
    )
    c2 = TrafficClass.from_aggregate(
        rho2, beta2, n2=n, mu=1.0, weight=w2, name="bursty"
    )
    return c1, c2


def table2_rows(
    set_index: int, sizes: Sequence[int] = TABLE2_SIZES
) -> list[dict]:
    """Recompute one parameter set of Table 2.

    Returns one dict per system size with the computed measures and the
    paper's printed values (``paper_*`` keys) for comparison.  The
    gradients are forward differences, as in the paper.
    """
    rows = []
    for n in sizes:
        dims = SwitchDimensions.square(n)
        classes = list(table2_classes(set_index, n))
        solution = solve_convolution(dims, classes)
        rho1 = classes[0].rho
        step = max(1e-9, 1e-3 * rho1)
        grad_rho1 = gradient_rho(dims, classes, 0, step=step)
        if n >= 2:
            grad_beta2 = gradient_burstiness(dims, classes, 1, step=step)
        else:
            grad_beta2 = None
        paper = TABLE2_PAPER[set_index].get(n)
        rows.append(
            {
                "N": n,
                "dW_drho1": grad_rho1,
                "dW_dburstiness2": grad_beta2,
                "blocking": solution.blocking(0),
                "revenue": solution.revenue(),
                "paper_dW_drho1": paper[0] if paper else None,
                "paper_dW_dburstiness2": paper[1] if paper else None,
                "paper_blocking": paper[2] if paper else None,
                "paper_revenue": paper[3] if paper else None,
            }
        )
    return rows
