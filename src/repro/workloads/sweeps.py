"""Generic parameter-sweep helpers used by examples and benchmarks.

All helpers route their solves through the process-wide batched engine
(:mod:`repro.engine`).  Two structural savings follow:

* repeated probes of the same model (bisection revisiting a size, a
  load appearing in two sweeps) are cache hits;
* sweeps whose traffic mix does not depend on the size share **one**
  Algorithm 1 Q-grid solved at the largest size — every smaller point
  is a ratio read, bit-for-bit identical to solving it directly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..api import SolveRequest
from ..core.measures import PerformanceSolution
from ..core.state import SwitchDimensions
from ..core.traffic import TrafficClass
from ..exceptions import ConfigurationError, CrossbarError
from ..methods import SolveMethod

__all__ = [
    "sweep_sizes",
    "sweep_parameter",
    "find_size_for_blocking",
    "find_load_for_blocking",
]


def _engine():
    from ..engine import get_default_engine

    return get_default_engine()


def _solution(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> PerformanceSolution:
    return _engine().solution_for(
        SolveRequest(dims, tuple(classes), SolveMethod.CONVOLUTION)
    )


def sweep_sizes(
    sizes: Iterable[int],
    classes_for: Callable[[int], Sequence[TrafficClass]],
    measure: Callable[[PerformanceSolution], float],
) -> list[tuple[int, float]]:
    """Evaluate ``measure`` on square switches of the given sizes.

    ``classes_for(n)`` builds the (size-dependent) traffic mix — the
    natural hook for the paper's constant-tilde-parameter sweeps.  When
    the mix turns out *not* to depend on the size, the whole sweep is
    served from one Q-grid solved at the largest size.
    """
    sizes = list(sizes)
    mixes = [tuple(classes_for(n)) for n in sizes]
    constant = len(sizes) > 1 and all(mix == mixes[0] for mix in mixes)
    if constant:
        try:
            base = _solution(
                SwitchDimensions.square(max(sizes)), mixes[0]
            )
        except CrossbarError:
            constant = False  # e.g. admissibility fails at the top size
    out = []
    for n, mix in zip(sizes, mixes):
        dims = SwitchDimensions.square(n)
        if constant:
            from ..engine import sliced_solution

            solution = sliced_solution(base, dims)
        else:
            solution = _solution(dims, mix)
        out.append((n, measure(solution)))
    return out


def sweep_parameter(
    values: Iterable[float],
    model_for: Callable[[float], tuple[SwitchDimensions, Sequence[TrafficClass]]],
    measure: Callable[[PerformanceSolution], float],
) -> list[tuple[float, float]]:
    """Evaluate ``measure`` while sweeping an arbitrary scalar parameter."""
    out = []
    for value in values:
        dims, classes = model_for(value)
        solution = _solution(dims, classes)
        out.append((value, measure(solution)))
    return out


def find_size_for_blocking(
    classes_for: Callable[[int], Sequence[TrafficClass]],
    target_blocking: float,
    r: int = 0,
    n_min: int = 1,
    n_max: int = 4096,
) -> int:
    """Smallest square switch whose class-``r`` blocking <= target.

    Binary search assuming blocking decreases with size for the given
    (size-dependent) traffic builder — the standard dimensioning
    question for switch designers.  Raises when even ``n_max`` cannot
    meet the target.

    The feasibility check already solves the full ``n_max`` Q-grid;
    when ``classes_for`` does not actually depend on the size, every
    bisection probe is answered from that grid (an O(1) ratio read)
    instead of re-running Algorithm 1 per probe.  Size-dependent mixes
    (the paper's constant-tilde sweeps) fall back to engine-cached
    per-probe solves.
    """
    if not 0.0 < target_blocking < 1.0:
        raise ConfigurationError(
            f"target_blocking must be in (0, 1), got {target_blocking}"
        )

    top_classes = tuple(classes_for(n_max))
    top = _solution(SwitchDimensions.square(n_max), top_classes)

    def blocking(n: int) -> float:
        dims = SwitchDimensions.square(n)
        if n == n_max:
            return top.blocking(r)
        classes = tuple(classes_for(n))
        if classes == top_classes:
            return top.blocking(r, at=dims)
        return _solution(dims, classes).blocking(r)

    if blocking(n_max) > target_blocking:
        raise ConfigurationError(
            f"even N={n_max} exceeds the blocking target "
            f"{target_blocking:g}"
        )
    lo, hi = n_min, n_max
    while lo < hi:
        mid = (lo + hi) // 2
        if blocking(mid) <= target_blocking:
            hi = mid
        else:
            lo = mid + 1
    return lo


def find_load_for_blocking(
    dims: SwitchDimensions,
    classes_for_load: Callable[[float], Sequence[TrafficClass]],
    target_blocking: float,
    r: int = 0,
    load_max: float = 1e6,
    tol: float = 1e-10,
) -> float:
    """Largest load parameter keeping class-``r`` blocking <= target.

    The dimensioning dual of :func:`find_size_for_blocking`: given the
    fabric, how much traffic can it carry at the blocking objective?
    ``classes_for_load(x)`` builds the traffic mix at load parameter
    ``x`` (any scalar parameterization — per-pair rho, aggregate rho~,
    ...); blocking must be non-decreasing in ``x``.
    """
    if not 0.0 < target_blocking < 1.0:
        raise ConfigurationError(
            f"target_blocking must be in (0, 1), got {target_blocking}"
        )

    def blocking(load: float) -> float:
        return _solution(dims, classes_for_load(load)).blocking(r)

    if blocking(0.0) > target_blocking:
        raise ConfigurationError(
            "blocking exceeds the target even at zero load"
        )
    if blocking(load_max) <= target_blocking:
        return load_max
    lo, hi = 0.0, load_max
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if blocking(mid) <= target_blocking:
            lo = mid
        else:
            hi = mid
    return lo
