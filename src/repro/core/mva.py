"""Algorithm 2: mean-value analysis in the ratio domain.

The paper's Section 5.1 recasts the recurrence of Algorithm 1 purely in
terms of the ratios

    ``F_i(n) = Q(n - 1_i) / Q(n)``        (eq. 12)
    ``H_r(n) = Q(n - a_r I) / Q(n)``      (eq. 13)
    ``D(r, n) = sum_m (beta_r/mu_r)^m Q(n - m a_r I)/Q(n)``  (eq. 17)

so that no quantity ever leaves a moderate numeric range — the
numerical-stability advantage the paper highlights.  The printed
Algorithm 2 (Step 1/2) suffers from typesetting damage, so we re-derive
the recursion from the Algorithm-1 recurrence; the mathematical content
(the ``F/H/L/D`` system of eqs. 14, 18-20) is identical.

Derivation
----------
Divide eq. 10 (written at the point ``n``, entered along axis ``i``) by
``Q(n)``:

    ``n_i = F_i(n) + sum_{r in R1} a_r rho_r H_r(n)
                   + sum_{r in R2} a_r rho_r Dhat(r, n)``

where ``Dhat(r, n) = V(n, r)/Q(n) = H_r(n) (1 + b_r Dhat(r, n - a_r I))``
with ``b_r = beta_r/mu_r`` (this is eq. 19 in the paper's ``D``
normalization).  ``H_r(n)`` telescopes into a product of ``F`` factors
along any monotone lattice path from ``n - a_r I`` to ``n`` (eq. 13);
choosing the path that *ends* with a step along axis ``i`` factors out
the unknown:

    ``H_r(n) = F_i(n) * K_{ri}(n)``       (the paper's ``L`` of eq. 14/20)

with ``K_{ri}(n)`` a product of previously computed ``F`` values.
Substituting back and solving for ``F_i(n)``:

    ``F_i(n) = n_i / (1 + sum_r a_r rho_r K_{ri}(n) c_r(n))``

with ``c_r(n) = 1`` for Poisson classes and
``c_r(n) = 1 + b_r Dhat(r, n - a_r I)`` for BPP classes.  Boundary
values follow from ``Q(n1, 0) = 1/n1!``: ``F_1(n1, 0) = n1`` and
``F_2(0, n2) = n2`` (Step 1 of the paper, after fixing the typos).

Both ``F_1`` and ``F_2`` are filled for every grid point; the identity
``F_1(n) K_{r1}(n) == F_2(n) K_{r2}(n)`` (two paths, one ``H``) is a
built-in consistency check exercised by the test suite.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ComputationError, ConfigurationError
from .measures import PerformanceSolution
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = ["solve_mva", "MvaGrids"]


class MvaGrids:
    """Raw MVA grids (``F_1``, ``F_2``, ``H_r``, ``Dhat_r``) for inspection.

    Grid cells that are never defined (e.g. ``F_1(0, n2)``) hold NaN.
    """

    def __init__(
        self, dims: SwitchDimensions, classes: tuple[TrafficClass, ...]
    ) -> None:
        shape = (dims.n1 + 1, dims.n2 + 1)
        self.dims = dims
        self.classes = classes
        self.f1 = np.full(shape, np.nan)
        self.f2 = np.full(shape, np.nan)
        self.h = [np.zeros(shape) for _ in classes]
        self.dhat = [np.zeros(shape) for _ in classes]

    def consistency_residual(self) -> float:
        """Max relative disagreement between the two ``H`` factorizations.

        ``H_r(n)`` can be built from a path ending along axis 1 or along
        axis 2; both must give the same value.  Returns the worst
        relative difference over the grid (0 for a perfect solve).
        """
        worst = 0.0
        n1, n2 = self.dims.n1, self.dims.n2
        for r, cls in enumerate(self.classes):
            a = cls.a
            for m1 in range(a, n1 + 1):
                for m2 in range(a, n2 + 1):
                    via1 = self.f1[m1, m2] * _k_product(self, r, m1, m2, axis=1)
                    via2 = self.f2[m1, m2] * _k_product(self, r, m1, m2, axis=2)
                    scale = max(abs(via1), abs(via2), 1e-300)
                    worst = max(worst, abs(via1 - via2) / scale)
        return worst


def _f1(grids: MvaGrids, m1: int, m2: int) -> float:
    """``F_1`` with the ``Q(n1, 0) = 1/n1!`` boundary built in."""
    if m2 == 0:
        return float(m1)
    return float(grids.f1[m1, m2])


def _f2(grids: MvaGrids, m1: int, m2: int) -> float:
    """``F_2`` with the ``Q(0, n2) = 1/n2!`` boundary built in."""
    if m1 == 0:
        return float(m2)
    return float(grids.f2[m1, m2])


def _k_product(grids: MvaGrids, r: int, n1: int, n2: int, axis: int) -> float:
    """The known part ``K_{r,axis}(n)`` of ``H_r(n) = F_axis(n) K``.

    ``axis == 1``: path runs ``(n1-a, n2-a) -> (n1-a, n2) -> (n1, n2)``;
    the final step contributes ``F_1(n1, n2)`` which is excluded here.
    ``axis == 2``: the transposed path, excluding ``F_2(n1, n2)``.
    """
    a = grids.classes[r].a
    prod = 1.0
    if axis == 1:
        for m in range(1, a + 1):  # up axis 2 at column n1-a
            prod *= _f2(grids, n1 - a, n2 - a + m)
        for m in range(1, a):  # up axis 1 at row n2, stop before (n1, n2)
            prod *= _f1(grids, n1 - a + m, n2)
    else:
        for m in range(1, a + 1):  # up axis 1 at row n2-a
            prod *= _f1(grids, n1 - a + m, n2 - a)
        for m in range(1, a):  # up axis 2 at column n1
            prod *= _f2(grids, n1, n2 - a + m)
    return prod


def _check_smooth_stability(
    dims: SwitchDimensions, cls: TrafficClass
) -> None:
    """Reject configurations where the ``D`` chain loses all precision.

    For smooth (Bernoulli) classes the paper's ``D`` recursion (eq. 19
    territory; our ``Dhat``) amplifies floating-point error by roughly
    ``|beta/mu| * N1 * N2`` per chain step.  When the accumulated
    amplification over the ``capacity/a`` chain steps exceeds float64
    precision, Algorithm 2 silently produces garbage — so we refuse and
    point at Algorithm 1, whose smooth-class *fold* is unconditionally
    stable (see :mod:`repro.core.convolution`).  This is a documented
    limitation of the paper's ratio-domain algorithm, not of the model.
    """
    if cls.beta >= 0:
        return
    amplification = abs(cls.b) * dims.n1 * dims.n2
    if amplification <= 1.0:
        return
    depth = dims.capacity // cls.a
    if depth * math.log(amplification) > 25.0:
        raise ComputationError(
            f"Algorithm 2 (MVA) is numerically unstable for smooth "
            f"class {cls.name or '?'} on a {dims.n1}x{dims.n2} switch "
            f"(error amplification ~ {amplification:.3g} per chain "
            f"step over {depth} steps); use solve_convolution(), whose "
            f"smooth-class fold is stable"
        )


def solve_mva(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    kernel: str | None = None,
) -> PerformanceSolution:
    """Solve the model with Algorithm 2 (mean value analysis).

    Complexity ``O(N1 N2 R a_max)`` time, ``O(N1 N2 R)`` space — the
    space overhead relative to Algorithm 1 is what the paper trades for
    numerical stability.  Returns the same
    :class:`~repro.core.measures.PerformanceSolution` interface as
    Algorithm 1 (without ``log Q``, which ratios cannot reconstruct).

    ``kernel="numpy"`` (or a process-wide default of ``numpy``, see
    :mod:`repro.core.kernels`) dispatches to the column-vectorized
    implementation; ``"python"`` runs the scalar reference loop below.
    The two are tolerance-equivalent (1e-8), not bitwise identical —
    the vectorized path factors ``H_r`` along the other grid axis.
    """
    from .kernels import resolve_kernel, solve_mva_numpy

    if resolve_kernel(kernel) == "numpy":
        solution = solve_mva_numpy(dims, classes)
        solution.kernel = "numpy"
        return solution
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
        _check_smooth_stability(dims, cls)

    grids = MvaGrids(dims, classes)
    n1, n2 = dims.n1, dims.n2

    # Boundaries: only the empty state fits when either side is 0.
    for m1 in range(1, n1 + 1):
        grids.f1[m1, 0] = m1
    for m2 in range(1, n2 + 1):
        grids.f2[0, m2] = m2

    for m2 in range(1, n2 + 1):
        for m1 in range(1, n1 + 1):
            denom1 = 1.0
            denom2 = 1.0
            fits = []
            for r, cls in enumerate(classes):
                if m1 < cls.a or m2 < cls.a:
                    fits.append(False)
                    continue
                fits.append(True)
                if cls.is_poisson:
                    c = 1.0
                else:
                    c = 1.0 + cls.b * grids.dhat[r][m1 - cls.a, m2 - cls.a]
                load = cls.a * cls.rho * c
                denom1 += load * _k_product(grids, r, m1, m2, axis=1)
                denom2 += load * _k_product(grids, r, m1, m2, axis=2)
            if denom1 <= 0.0 or denom2 <= 0.0:
                raise ComputationError(
                    f"MVA denominator non-positive at ({m1}, {m2}); "
                    "Bernoulli parameters admit negative arrival rates"
                )
            grids.f1[m1, m2] = m1 / denom1
            grids.f2[m1, m2] = m2 / denom2
            for r, cls in enumerate(classes):
                if not fits[r]:
                    continue
                h = grids.f1[m1, m2] * _k_product(grids, r, m1, m2, axis=1)
                grids.h[r][m1, m2] = h
                grids.dhat[r][m1, m2] = h * (
                    1.0 + cls.b * grids.dhat[r][m1 - cls.a, m2 - cls.a]
                )

    solution = PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(np.array(g) for g in grids.h),
        log_q=None,
        method="mva",
    )
    solution.grids = grids  # expose raw grids for diagnostics/tests
    solution.kernel = "python"
    return solution
