"""The generating function of the normalization function (paper eq. 5).

Section 5 derives the two-variable exponential generating function

    ``Z(t) = sum_N Q(N) t1^N1 t2^N2
           = exp( t1 + t2 + sum_{r in R1} rho_r (t1 t2)^{a_r} )
             * prod_{r in R2} (1 - b_r (t1 t2)^{a_r})^(-alpha_r/beta_r)``

with ``b_r = beta_r/mu_r``.  Because every class enters only through
``u = t1 t2``, the coefficients factor as

    ``Q(N1, N2) = sum_m f_m / ((N1 - m)! (N2 - m)!)``

where ``f_m = [u^m] F(u)`` and ``F(u) = prod_r S_r(u)`` with the
per-class occupancy series ``S_r(u) = sum_k Phi_r(k) u^{a_r k}``.

This module evaluates eq. 5 both ways:

* :func:`class_series` builds ``S_r`` from the *definition* of
  ``Phi_r`` (products of arrival/service rates), and
  :func:`closed_form_class_series` from eq. 5's closed forms
  (``exp`` / negative-binomial); their agreement verifies the paper's
  algebra.
* :func:`q_from_series` reconstructs ``Q(N)`` from the series — a third
  computation path, fully independent of the recursions, used by the
  test suite.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..exceptions import ConfigurationError
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = [
    "class_series",
    "closed_form_class_series",
    "normalization_series",
    "q_from_series",
    "evaluate_z",
]


def class_series(cls: TrafficClass, order: int) -> list[float]:
    """``S_r(u) = sum_k Phi_r(k) u^{a_r k}`` truncated after ``u^order``.

    Built directly from ``Phi_r(k) = prod_l lambda_r(l-1)/(l mu_r)``.
    """
    coeffs = [0.0] * (order + 1)
    coeffs[0] = 1.0
    phi = 1.0
    k = 1
    while k * cls.a <= order:
        rate = cls.rate(k - 1)
        if rate <= 0.0:
            break
        phi *= rate / (k * cls.mu)
        coeffs[k * cls.a] = phi
        k += 1
    return coeffs


def closed_form_class_series(cls: TrafficClass, order: int) -> list[float]:
    """The same series from eq. 5's closed forms.

    Poisson: ``exp(rho u^a)``, i.e. ``Phi(k) = rho^k/k!``.
    BPP: ``(1 - b u^a)^(-alpha/beta)``, i.e.
    ``Phi(k) = b^k C(alpha/beta - 1 + k, k)`` (generalized binomial; for
    Bernoulli classes the series terminates at the source count).
    """
    coeffs = [0.0] * (order + 1)
    coeffs[0] = 1.0
    if cls.is_poisson:
        term = 1.0
        k = 1
        while k * cls.a <= order:
            term *= cls.rho / k
            coeffs[k * cls.a] = term
            k += 1
        return coeffs
    exponent = cls.alpha / cls.beta  # alpha/beta, sign matches b
    term = 1.0
    k = 1
    while k * cls.a <= order:
        # C(exponent - 1 + k, k) b^k via the ratio of consecutive terms
        term *= cls.b * (exponent - 1 + k) / k
        coeffs[k * cls.a] = term
        if term == 0.0:
            break
        k += 1
    return coeffs


def _poly_mul(a: list[float], b: list[float], order: int) -> list[float]:
    out = [0.0] * (order + 1)
    for i, av in enumerate(a):
        if av == 0.0 or i > order:
            continue
        for j, bv in enumerate(b):
            if i + j > order:
                break
            out[i + j] += av * bv
    return out


def normalization_series(
    classes: Sequence[TrafficClass], order: int, closed_form: bool = False
) -> list[float]:
    """``F(u) = prod_r S_r(u)`` truncated after ``u^order``.

    ``f_m`` is the total product-form weight of all states with
    occupancy ``k . A = m``, divided by the ``Psi`` resource factor.
    """
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    builder = closed_form_class_series if closed_form else class_series
    series = [1.0] + [0.0] * order
    for cls in classes:
        series = _poly_mul(series, builder(cls, order), order)
    return series


def q_from_series(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    closed_form: bool = False,
) -> float:
    """``Q(N) = sum_m f_m / ((N1-m)! (N2-m)!)`` from the series."""
    cap = dims.capacity
    series = normalization_series(classes, cap, closed_form=closed_form)
    return math.fsum(
        f
        / (math.factorial(dims.n1 - m) * math.factorial(dims.n2 - m))
        for m, f in enumerate(series)
    )


def evaluate_z(
    classes: Sequence[TrafficClass], t1: float, t2: float
) -> float:
    """Evaluate the closed form of ``Z(t1, t2)`` (paper eq. 5).

    Only defined where the Pascal factors converge
    (``b_r (t1 t2)^{a_r} < 1``); raises otherwise.
    """
    u = t1 * t2
    exponent_arg = t1 + t2
    product = 1.0
    for cls in classes:
        if cls.is_poisson:
            exponent_arg += cls.rho * u**cls.a
        else:
            base = 1.0 - cls.b * u**cls.a
            if base <= 0.0:
                raise ConfigurationError(
                    f"Z(t) diverges: 1 - b*u^a = {base} <= 0 for class "
                    f"{cls.name or '?'}"
                )
            product *= base ** (-cls.alpha / cls.beta)
    return math.exp(exponent_arg) * product
