"""Core analytical model: product form, fast algorithms, measures.

This package implements the paper's primary contribution:

* :mod:`~repro.core.traffic` — BPP traffic classes;
* :mod:`~repro.core.state` — dimensions and the state space;
* :mod:`~repro.core.productform` — brute-force product-form reference;
* :mod:`~repro.core.convolution` — Algorithm 1 (+ §6 dynamic scaling);
* :mod:`~repro.core.mva` — Algorithm 2 (mean value analysis);
* :mod:`~repro.core.exact` — exact rational arithmetic oracle;
* :mod:`~repro.core.generating` — the generating function (eq. 5);
* :mod:`~repro.core.measures` — the shared measure interface;
* :mod:`~repro.core.revenue` — Section 4's revenue analysis;
* :mod:`~repro.core.model` — the :class:`CrossbarModel` facade.
"""

from .asymptotic import AsymptoticSolution, solve_asymptotic
from .convolution import log_q_grid, solve_convolution
from .exact import exact_q_table, solve_exact
from .generating import evaluate_z, normalization_series, q_from_series
from .measures import PerformanceSolution
from .model import CrossbarModel
from .moments import (
    carried_peakedness,
    concurrency_covariance,
    concurrency_variance,
    factorial_moment,
    occupancy_pmf,
    occupancy_variance,
    time_congestion,
)
from .mva import solve_mva
from .series_solver import DiagonalSolution, solve_series
from .productform import StateDistribution, solve_brute_force
from .sensitivity import blocking_elasticity_matrix, blocking_gradient
from .revenue import (
    gradient_burstiness,
    gradient_rho,
    gradient_rho_closed_form,
    marginal_value,
    port_marginal_revenue,
    revenue_report,
    shadow_cost,
)
from .state import SwitchDimensions, iter_states, state_space_size
from .traffic import (
    TrafficClass,
    bpp_mean,
    bpp_peakedness,
    bpp_variance,
    classify_bpp,
    fit_bpp_from_moments,
)

__all__ = [
    "AsymptoticSolution",
    "CrossbarModel",
    "PerformanceSolution",
    "StateDistribution",
    "SwitchDimensions",
    "TrafficClass",
    "carried_peakedness",
    "concurrency_covariance",
    "concurrency_variance",
    "factorial_moment",
    "occupancy_pmf",
    "occupancy_variance",
    "DiagonalSolution",
    "solve_asymptotic",
    "solve_series",
    "blocking_elasticity_matrix",
    "blocking_gradient",
    "time_congestion",
    "bpp_mean",
    "bpp_peakedness",
    "bpp_variance",
    "classify_bpp",
    "evaluate_z",
    "exact_q_table",
    "fit_bpp_from_moments",
    "gradient_burstiness",
    "gradient_rho",
    "gradient_rho_closed_form",
    "iter_states",
    "log_q_grid",
    "marginal_value",
    "port_marginal_revenue",
    "normalization_series",
    "q_from_series",
    "revenue_report",
    "shadow_cost",
    "solve_brute_force",
    "solve_convolution",
    "solve_exact",
    "solve_mva",
    "state_space_size",
]
