"""Higher-order stationary moments and the occupancy distribution.

The paper reports means (``E_r``) only.  This module extends the same
normalization-function machinery to

* **factorial moments** ``E[(k_r)_j] = E[k_r (k_r - 1) ... (k_r - j + 1)]``
  of each class's concurrency, hence variances and the carried
  peakedness ``Var/Mean`` (interesting against the *offered* Z-factor:
  blocking shaves peaks, so carried peakedness < offered peakedness);
* **covariances** between classes (all negative: classes compete for
  the same fabric);
* the full **occupancy distribution** ``P(k.A = m)`` — and with it the
  *time congestion* (probability the fabric cannot fit one more
  class-``r`` connection), previously available only from brute-force
  enumeration.

Everything is computed from positive-term sums over the class
occupancy series (the same identity that stabilizes smooth classes in
:mod:`repro.core.convolution`):

    ``E[(k_r)_j] = sum_k (k)_j Phi_r(k) Q_rest(N - a_r k I) / Q(N)``

where ``Q_rest`` is the normalization of all *other* classes, so every
term is non-negative and there is no cancellation for any BPP branch.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .convolution import log_q_grid
from .generating import normalization_series
from .productform import log_phi
from .state import SwitchDimensions, log_permutation
from .traffic import TrafficClass

__all__ = [
    "factorial_moment",
    "concurrency_variance",
    "concurrency_covariance",
    "carried_peakedness",
    "occupancy_pmf",
    "occupancy_variance",
    "time_congestion",
]


def _falling(k: int, j: int) -> int:
    out = 1
    for i in range(j):
        out *= k - i
    return out


def _logsumexp(values: list[float]) -> float:
    top = max(values, default=-math.inf)
    if top == -math.inf:
        return -math.inf
    return top + math.log(math.fsum(math.exp(v - top) for v in values))


def _rest_grid(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    exclude: set[int],
) -> np.ndarray:
    rest = [c for i, c in enumerate(classes) if i not in exclude]
    if rest:
        return log_q_grid(dims, rest)
    base = np.add.outer(
        [-math.lgamma(m + 1) for m in range(dims.n1 + 1)],
        [-math.lgamma(m + 1) for m in range(dims.n2 + 1)],
    )
    return base


def factorial_moment(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    order: int = 1,
) -> float:
    """``E[(k_r)_order]`` — the ``order``-th factorial moment of ``k_r``."""
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    classes = tuple(classes)
    if not 0 <= r < len(classes):
        raise ConfigurationError(f"class index {r} out of range")
    cls = classes[r]
    lq = log_q_grid(dims, classes)
    lq_rest = _rest_grid(dims, classes, {r})
    terms = []
    k = order
    while k * cls.a <= dims.capacity:
        logphi = log_phi(cls, k)
        if logphi == -math.inf:
            break
        shift = k * cls.a
        terms.append(
            math.log(_falling(k, order))
            + logphi
            + float(lq_rest[dims.n1 - shift, dims.n2 - shift])
        )
        k += 1
    total = _logsumexp(terms)
    if total == -math.inf:
        return 0.0
    return math.exp(total - float(lq[dims.n1, dims.n2]))


def concurrency_variance(
    dims: SwitchDimensions, classes: Sequence[TrafficClass], r: int
) -> float:
    """``Var(k_r)`` of the stationary concurrency."""
    m1 = factorial_moment(dims, classes, r, 1)
    m2 = factorial_moment(dims, classes, r, 2)
    return max(0.0, m2 + m1 - m1 * m1)


def carried_peakedness(
    dims: SwitchDimensions, classes: Sequence[TrafficClass], r: int
) -> float:
    """``Var(k_r)/E[k_r]`` — the Z-factor of the *carried* traffic.

    Blocking clips the busy states, so carried peakedness is below the
    offered peakedness for Pascal classes (and converges to it as the
    switch grows and blocking vanishes).
    """
    mean = factorial_moment(dims, classes, r, 1)
    if mean <= 0.0:
        return 1.0
    return concurrency_variance(dims, classes, r) / mean


def concurrency_covariance(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    s: int,
) -> float:
    """``Cov(k_r, k_s)`` for two distinct classes.

    Always non-positive: the classes compete for the same input/output
    pairs (negative association of the product form under the capacity
    constraint).
    """
    classes = tuple(classes)
    if r == s:
        return concurrency_variance(dims, classes, r)
    cr, cs = classes[r], classes[s]
    lq = log_q_grid(dims, classes)
    lq_rest = _rest_grid(dims, classes, {r, s})
    terms = []
    k = 1
    while k * cr.a <= dims.capacity:
        logphi_r = log_phi(cr, k)
        if logphi_r == -math.inf:
            break
        ell = 1
        while k * cr.a + ell * cs.a <= dims.capacity:
            logphi_s = log_phi(cs, ell)
            if logphi_s == -math.inf:
                break
            shift = k * cr.a + ell * cs.a
            terms.append(
                math.log(k)
                + math.log(ell)
                + logphi_r
                + logphi_s
                + float(lq_rest[dims.n1 - shift, dims.n2 - shift])
            )
            ell += 1
        k += 1
    cross = _logsumexp(terms)
    joint = (
        math.exp(cross - float(lq[dims.n1, dims.n2]))
        if cross > -math.inf
        else 0.0
    )
    return joint - factorial_moment(dims, classes, r) * factorial_moment(
        dims, classes, s
    )


def occupancy_pmf(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> list[float]:
    """``P(k.A = m)`` for ``m = 0..capacity`` without state enumeration.

    Uses the occupancy series ``f_m`` (the ``u^m`` coefficient of the
    product of class series): ``P(m) = f_m P(N1,m) P(N2,m) / G(N)``.
    """
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    cap = dims.capacity
    series = normalization_series(classes, cap)
    logs = []
    for m, f in enumerate(series):
        if f <= 0.0:
            logs.append(-math.inf)
            continue
        logs.append(
            math.log(f)
            + log_permutation(dims.n1, m)
            + log_permutation(dims.n2, m)
        )
    log_g = _logsumexp(logs)
    return [
        math.exp(v - log_g) if v > -math.inf else 0.0 for v in logs
    ]


def occupancy_variance(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> float:
    """``Var(k.A)`` — variance of the number of occupied pairs."""
    pmf = occupancy_pmf(dims, classes)
    mean = math.fsum(m * p for m, p in enumerate(pmf))
    second = math.fsum(m * m * p for m, p in enumerate(pmf))
    return max(0.0, second - mean * mean)


def time_congestion(
    dims: SwitchDimensions, classes: Sequence[TrafficClass], r: int
) -> float:
    """Probability the fabric cannot fit one more class-``r`` connection.

    ``P(k.A > capacity - a_r)``.  Differs from both ``1 - B_r`` (which
    asks about *specific* ports) and the call congestion (which weights
    by the state-dependent arrival rate).
    """
    classes = tuple(classes)
    a = classes[r].a
    pmf = occupancy_pmf(dims, classes)
    threshold = dims.capacity - a
    return math.fsum(p for m, p in enumerate(pmf) if m > threshold)
