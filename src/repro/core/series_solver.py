"""Diagonal series solver: all standard measures without the 2D grid.

Every measure the paper reports depends on the normalization function
only through the *diagonal* values ``Q(N - j I)`` (both dimensions
reduced equally): ``B_r`` uses ``Q(N - a_r I)/Q(N)``, the concurrency
recursions walk the diagonal, and the revenue shadow costs reduce the
switch by ``a_r I``.  Since every traffic class enters the generating
function through ``u = t1 t2`` (paper eq. 5), the occupancy series

    ``f_m = [u^m] prod_r S_r(u)``     (all coefficients >= 0)

determines the whole diagonal at once:

    ``Q(N - jI) = sum_m f_m / ((N1 - j - m)! (N2 - j - m)!)``.

This gives a solver with cost ``O(cap (R + cap))`` time and ``O(cap)``
memory — no ``(N1+1) x (N2+1)`` grid — which is the cheapest exact
method for large switches, and a sixth independent implementation for
cross-validation.  Positive terms throughout, so it is unconditionally
stable for every BPP branch (including strongly smooth classes).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .generating import class_series, normalization_series
from .state import SwitchDimensions, permutation
from .traffic import TrafficClass

__all__ = ["DiagonalSolution", "solve_series"]


def _poly_mul(a: list[float], b: list[float], order: int) -> list[float]:
    out = [0.0] * (order + 1)
    for i, av in enumerate(a):
        if av == 0.0 or i > order:
            continue
        for j, bv in enumerate(b):
            if i + j > order:
                break
            out[i + j] += av * bv
    return out


def _log_q_diagonal(
    dims: SwitchDimensions, series: list[float]
) -> list[float]:
    """``log Q(N - jI)`` for ``j = 0..capacity`` from the series."""
    cap = dims.capacity
    out = []
    for j in range(cap + 1):
        n1, n2 = dims.n1 - j, dims.n2 - j
        logs = []
        for m, f in enumerate(series):
            if f <= 0.0 or m > min(n1, n2):
                continue
            logs.append(
                math.log(f)
                - math.lgamma(n1 - m + 1)
                - math.lgamma(n2 - m + 1)
            )
        top = max(logs)
        out.append(
            top + math.log(math.fsum(math.exp(v - top) for v in logs))
        )
    return out


@dataclass
class DiagonalSolution:
    """Measures of the crossbar from diagonal normalization values.

    Mirrors the measure API of
    :class:`~repro.core.measures.PerformanceSolution` for queries at
    the full dimensions and diagonal reductions (``at_depth=j`` means
    the switch ``N - jI``).
    """

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    log_q_diag: tuple[float, ...]  # index j -> log Q(N - jI)
    _e_smooth_diag: dict[int, tuple[float, ...]]

    def _h(self, r: int, depth: int) -> float:
        """``Q(N - (depth + a_r) I)/Q(N - depth I)``."""
        a = self.classes[r].a
        if depth + a >= len(self.log_q_diag):
            return 0.0
        return math.exp(
            self.log_q_diag[depth + a] - self.log_q_diag[depth]
        )

    def non_blocking(self, r: int, at_depth: int = 0) -> float:
        a = self.classes[r].a
        n1 = self.dims.n1 - at_depth
        n2 = self.dims.n2 - at_depth
        denom = permutation(n1, a) * permutation(n2, a)
        if denom == 0:
            return 0.0
        return self._h(r, at_depth) / denom

    def blocking(self, r: int, at_depth: int = 0) -> float:
        return 1.0 - self.non_blocking(r, at_depth)

    def concurrency(self, r: int, at_depth: int = 0) -> float:
        cls = self.classes[r]
        if cls.is_poisson:
            return cls.rho * self._h(r, at_depth)
        if cls.beta < 0:
            grid = self._e_smooth_diag[r]
            return grid[at_depth] if at_depth < len(grid) else 0.0
        # Pascal: diagonal recursion (positive bracket, stable)
        cap = self.dims.capacity
        depths = range(at_depth, cap + 1, cls.a)
        value = 0.0
        for depth in reversed(list(depths)):
            value = self._h(r, depth) * (cls.rho + cls.b * value)
        return value

    def revenue(self, at_depth: int = 0) -> float:
        return math.fsum(
            cls.weight * self.concurrency(r, at_depth)
            for r, cls in enumerate(self.classes)
        )

    def mean_occupancy(self, at_depth: int = 0) -> float:
        return math.fsum(
            cls.a * self.concurrency(r, at_depth)
            for r, cls in enumerate(self.classes)
        )

    def utilization(self, at_depth: int = 0) -> float:
        cap = self.dims.capacity - at_depth
        if cap <= 0:
            return 0.0
        return self.mean_occupancy(at_depth) / cap

    def call_acceptance(self, r: int, at_depth: int = 0) -> float:
        cls = self.classes[r]
        if cls.is_poisson:
            return self.non_blocking(r, at_depth)
        n1 = self.dims.n1 - at_depth
        n2 = self.dims.n2 - at_depth
        full = permutation(n1, cls.a) * permutation(n2, cls.a)
        if full == 0:
            return 0.0
        e = self.concurrency(r, at_depth)
        offered = cls.alpha + cls.beta * e
        if offered <= 0.0:
            return 1.0
        return cls.mu * e / (full * offered)


def solve_series(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> DiagonalSolution:
    """Solve the model through the occupancy series (diagonal only)."""
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
    cap = dims.capacity
    full_series = normalization_series(classes, cap)
    log_diag = _log_q_diagonal(dims, full_series)

    # Smooth-class concurrency: positive direct sums against the
    # rest-of-classes series (same stability story as convolution).
    e_smooth: dict[int, tuple[float, ...]] = {}
    for r, cls in enumerate(classes):
        if cls.beta >= 0:
            continue
        rest = [1.0] + [0.0] * cap
        for s, other in enumerate(classes):
            if s != r:
                rest = _poly_mul(rest, class_series(other, cap), cap)
        rest_diag = _log_q_diagonal(dims, rest)
        own = class_series(cls, cap)
        values = []
        for depth in range(cap + 1):
            terms = []
            k = 1
            while depth + k * cls.a <= cap:
                phi = own[k * cls.a]
                if phi <= 0.0:
                    break
                terms.append(
                    math.log(k)
                    + math.log(phi)
                    + rest_diag[depth + k * cls.a]
                )
                k += 1
            if terms:
                top = max(terms)
                total = top + math.log(
                    math.fsum(math.exp(v - top) for v in terms)
                )
                values.append(math.exp(total - log_diag[depth]))
            else:
                values.append(0.0)
        e_smooth[r] = tuple(values)

    return DiagonalSolution(
        dims=dims,
        classes=classes,
        log_q_diag=tuple(log_diag),
        _e_smooth_diag=e_smooth,
    )
