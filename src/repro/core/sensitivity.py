"""Traffic-engineering sensitivities: elasticity matrices.

The paper studies the gradient of the *revenue* (Section 4).  Network
planners also need the sensitivities of each class's **blocking** to
each class's **load** — "if video traffic grows 10%, how much worse
does voice blocking get?" — which this module provides as the
elasticity matrix

    ``E[r][s] = (d B_r / d rho_s) * (rho_s / B_r)``

(the percentage change in class-``r`` blocking per percent of class-
``s`` load growth), evaluated by central differences on the exact
model.  A burstiness column (w.r.t. ``beta_s/mu_s``) is also offered.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from ..exceptions import ConfigurationError
from .convolution import solve_convolution
from .revenue import Solver
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = ["blocking_elasticity_matrix", "blocking_gradient"]


def blocking_gradient(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    s: int,
    step: float = 1e-6,
    solver: Solver = solve_convolution,
) -> float:
    """``d B_r / d rho_s`` by central differences."""
    classes = list(classes)
    if not (0 <= r < len(classes) and 0 <= s < len(classes)):
        raise ConfigurationError("class index out of range")
    mu = classes[s].mu

    def blocking_at(delta: float) -> float:
        bumped = list(classes)
        bumped[s] = replace(
            bumped[s], alpha=max(0.0, bumped[s].alpha + mu * delta)
        )
        return solver(dims, bumped).blocking(r)

    return (blocking_at(step) - blocking_at(-step)) / (2.0 * step)


def blocking_elasticity_matrix(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    step_fraction: float = 1e-4,
    solver: Solver = solve_convolution,
) -> list[list[float]]:
    """Elasticities ``E[r][s] = dB_r/drho_s * rho_s/B_r``.

    ``step_fraction`` scales the FD step per class
    (``step = step_fraction * rho_s``, floored at 1e-9).  Off-diagonal
    entries quantify inter-class coupling; all entries are non-negative
    (more load anywhere cannot reduce anyone's blocking in this
    uncontrolled fabric).
    """
    classes = list(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    base = solver(dims, classes)
    blockings = [base.blocking(r) for r in range(len(classes))]
    matrix: list[list[float]] = []
    for r in range(len(classes)):
        row = []
        for s, cls in enumerate(classes):
            if blockings[r] <= 0.0 or cls.rho <= 0.0:
                row.append(0.0)
                continue
            step = max(1e-9, step_fraction * cls.rho)
            gradient = blocking_gradient(
                dims, classes, r, s, step=step, solver=solver
            )
            row.append(gradient * cls.rho / blockings[r])
        matrix.append(row)
    return matrix
